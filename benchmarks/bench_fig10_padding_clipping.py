"""Figure 10: average padding and clipping ratios by layer type.

Paper values (LLaMA2-13B): projection-layer clipping below 0.04%, padding
~0.7%; K-cache pads 7.11% and V-cache 2.19%.  The shape to hold: clipping
stays small everywhere, and the KV caches pad (much) more than the weights —
the Huffman coding leaves them slack to preserve outliers.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KV_CONFIG, WEIGHT_CONFIG, fit_tensor_meta, simulate_roundtrip

LAYER_TYPES = ["attn.wq", "attn.wk", "attn.wv", "attn.wo", "ffn.wg", "ffn.wu", "ffn.wd"]


@pytest.fixture(scope="module")
def ratios(proxy_medium, calib_medium):
    model = proxy_medium.model
    out = {}
    for layer_type in LAYER_TYPES:
        clips, pads = [], []
        for layer in range(proxy_medium.spec.num_layers):
            name = f"layers.{layer}.{layer_type}"
            weight = model.params[name].data
            stats = calib_medium.act_stats.get(name)
            act_weights = None
            if stats is not None:
                act_weights = np.broadcast_to(stats.mean_sq[None, :], weight.shape)
            meta = fit_tensor_meta(
                weight, act_weights=act_weights, config=WEIGHT_CONFIG,
                max_calibration_groups=384,
            )
            sim = simulate_roundtrip(meta, weight, act_weights=act_weights)
            clips.append(sim.clipping_ratio)
            pads.append(sim.padding_ratio)
        out[layer_type] = (float(np.mean(clips)), float(np.mean(pads)))

    for cache in ["k_cache", "v_cache"]:
        clips, pads = [], []
        for layer in range(proxy_medium.spec.num_layers):
            kv = calib_medium.kv_samples[f"layers.{layer}.{cache}"]
            meta = fit_tensor_meta(kv, config=KV_CONFIG, max_calibration_groups=384)
            sim = simulate_roundtrip(meta, kv)
            clips.append(sim.clipping_ratio)
            pads.append(sim.padding_ratio)
        out[cache] = (float(np.mean(clips)), float(np.mean(pads)))
    return out


def test_fig10_padding_clipping(benchmark, ratios):
    """Clipping small on projections; caches lean on padding."""
    table = benchmark.pedantic(lambda: ratios, rounds=1, iterations=1)

    lines = [f"{'layer':<10} {'clipping':>10} {'padding':>10}"]
    for layer_type, (clip, pad) in table.items():
        lines.append(f"{layer_type:<10} {clip:>9.3%} {pad:>9.3%}")
    lines.append("paper: proj clip <0.04%, pad ~0.7%; k_cache pad 7.11%, v_cache 2.19%")
    write_report(
        "fig10_padding_clipping",
        lines,
        {k: {"clip": c, "pad": p} for k, (c, p) in table.items()},
    )

    weight_clips = [table[t][0] for t in LAYER_TYPES]
    weight_pads = [table[t][1] for t in LAYER_TYPES]
    # Projection clipping stays small (a fraction of a percent).
    assert max(weight_clips) < 0.02
    # Padding happens on weights (outliers are preserved), and on average
    # projections pad at least as much as they clip.
    assert np.mean(weight_pads) > 0.002
    assert np.mean(weight_pads) > 0.5 * np.mean(weight_clips)
    # Caches stay encodable too (their padding-vs-clipping balance depends
    # on the KV index entropy; real checkpoints pad far more — deviation
    # recorded in EXPERIMENTS.md).
    assert table["k_cache"][1] > 0.001
    assert table["v_cache"][1] > 0.0005


def test_fig10_caches_within_budget(benchmark, ratios):
    """KV clipping must stay bounded: each block still fits 64 bytes."""
    table = benchmark.pedantic(lambda: ratios, rounds=1, iterations=1)
    assert table["k_cache"][0] < 0.05
    assert table["v_cache"][0] < 0.05
