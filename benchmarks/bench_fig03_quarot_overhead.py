"""Figure 3a: QuaRot's runtime de/compression overhead vs FP16.

Paper observation: on a 4-bit LLaMA2-7B (seq 1024, 512 decode steps) decoding
is ~0.6x the FP16 speed — runtime rotation/quantization overhead outweighs the
bandwidth savings and can shift the bottleneck to compute.
"""

import pytest

from _report import write_report
from repro.llm.config import get_spec
from repro.perf import decode_step_latency


def test_fig03_quarot_slower_than_fp16(benchmark):
    """QuaRot decode latency lands at ~1.4-1.8x FP16 at decode batch sizes."""
    spec = get_spec("llama2-7b")

    def sweep():
        rows = {}
        for batch in [1, 4, 16, 64]:
            fp16 = decode_step_latency(spec, "trt-fp16", batch, 1024)
            quarot = decode_step_latency(spec, "quarot", batch, 1024)
            rows[batch] = quarot.total_s / fp16.total_s
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'batch':>6} {'quarot/fp16 latency':>20}"]
    for batch, ratio in rows.items():
        lines.append(f"{batch:>6} {ratio:>20.2f}")
    lines.append("paper: decode ~0.6x FP16 speed (ratio ~1.6-1.7)")
    write_report("fig03_quarot_overhead", lines, {str(k): v for k, v in rows.items()})

    # QuaRot is slower than FP16 at every decode batch size <= 64 (Fig 3).
    assert all(ratio > 1.0 for ratio in rows.values())
    assert rows[1] == pytest.approx(1.65, rel=0.25)
