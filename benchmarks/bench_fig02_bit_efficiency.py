"""Figure 2: unique value counts and bit efficiency across quantization levels.

Paper values (LLM weights, 4-bit): entropy 0.09 / 1.58 / 2.73 / 3.15 bits and
bit efficiency 2.25% / 39.4% / 64.2% / 78.5% for tensor-wise, channel-wise,
group-wise, and Ecco's entropy-based compression.  The shape to hold: both
metrics rise monotonically with granularity and Ecco lands on top.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import WEIGHT_CONFIG, fit_tensor_meta, simulate_roundtrip, to_groups
from repro.entropy import (
    QuantizationProfile,
    group_entropy,
    profile_uniform_quantization,
    unique_counts,
)


def _ecco_profile(tensor: np.ndarray) -> QuantizationProfile:
    """Entropy/overhead of Ecco's quantized indices on the same tensor."""
    meta = fit_tensor_meta(tensor, config=WEIGHT_CONFIG, seed=0)
    sim = simulate_roundtrip(meta, tensor)
    groups, __ = to_groups(tensor, WEIGHT_CONFIG.group_size)

    # Recover the per-group symbol matrix for the entropy measurement.
    from repro.core import normalize_groups, select_patterns_mse

    norm = normalize_groups(groups, meta.tensor_exp, WEIGHT_CONFIG)
    __, indices = select_patterns_mse(
        norm.normalized, norm.absmax_pos, meta.patterns,
        scale_index=WEIGHT_CONFIG.scale_index,
    )
    overhead = WEIGHT_CONFIG.block_bits / WEIGHT_CONFIG.group_size
    # Tensor-wise metadata amortizes over the tensor it serves; the bench
    # tensor is a sample, so amortize over a production-size projection
    # (4096 x 4096), matching how the paper reports 4.01 bits.
    overhead += meta.metadata_bits() / (4096 * 4096)
    return QuantizationProfile(
        name="ecco",
        average_entropy=float(group_entropy(indices).mean()),
        real_bit_overhead=float(overhead),
        unique_value_counts=unique_counts(indices),
    )


@pytest.fixture(scope="module")
def profiles(heavy_tailed_weight):
    tensor = heavy_tailed_weight
    return [
        profile_uniform_quantization(tensor, "tensor"),
        profile_uniform_quantization(tensor, "channel"),
        profile_uniform_quantization(tensor, "group"),
        _ecco_profile(tensor),
    ]


def test_fig02_bit_efficiency(benchmark, profiles):
    """Regenerate Figure 2 and check the monotone granularity story."""
    result = benchmark.pedantic(lambda: profiles, rounds=1, iterations=1)

    lines = [
        f"{'method':<14} {'avg entropy':>12} {'bit overhead':>13} {'efficiency':>11} {'uniq(mean)':>11}",
    ]
    data = {}
    for profile in result:
        lines.append(
            f"{profile.name:<14} {profile.average_entropy:>12.2f} "
            f"{profile.real_bit_overhead:>13.2f} {profile.efficiency * 100:>10.1f}% "
            f"{profile.unique_value_counts.mean():>11.1f}"
        )
        data[profile.name] = {
            "entropy": profile.average_entropy,
            "overhead": profile.real_bit_overhead,
            "efficiency": profile.efficiency,
        }
    lines.append("paper: 0.09/2.25%  1.58/39.4%  2.73/64.2%  3.15/78.5%")
    write_report("fig02_bit_efficiency", lines, data)

    tensor, channel, group, ecco = result
    # Entropy rises with granularity (paper: 0.09 -> 1.58 -> 2.73).
    assert tensor.average_entropy < channel.average_entropy < group.average_entropy
    # Ecco has the best bit efficiency of all four.
    assert ecco.efficiency > group.efficiency > channel.efficiency > tensor.efficiency
    # Ecco's real bit overhead stays ~4 bits/value (in-block metadata only).
    assert ecco.real_bit_overhead == pytest.approx(4.0, abs=0.15)


def test_fig02_unique_counts_scatter(benchmark, profiles):
    """The per-group unique-code counts that make up the scatter plots."""
    tensor, channel, group, __ = benchmark.pedantic(
        lambda: profiles, rounds=1, iterations=1
    )
    assert tensor.unique_value_counts.mean() < channel.unique_value_counts.mean()
    assert channel.unique_value_counts.mean() <= group.unique_value_counts.mean() + 1e-9
    assert group.unique_value_counts.max() <= 16
