"""Decode-cache amortization of the streaming KV pipeline.

The paper's decode-loop argument (§6, Figs 11-13) assumes reading the KV
cache back costs O(new tokens) per step, not O(all tokens).  These checks
pin the software pipeline to that shape: across growing generation
lengths, the number of block-decoded tokens equals the number of appended
tokens (work is linear in T, where the pre-cache loop paid T(T+1)/2), and
invalidating the decoded cache trades that work back for correctness.
Writes ``results/kv_decode_cache.json`` with measured tokens/s from the
``repro.perf`` software-stream helper.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KVCacheCodec, KVCacheStream, calibrate_kv_meta
from repro.perf import sw_stream_throughput


@pytest.fixture(scope="module")
def kv_codec():
    rng = np.random.default_rng(5)
    scales = np.exp(rng.normal(0.0, 1.2, size=128))
    meta = calibrate_kv_meta(rng.standard_normal((512, 128)) * scales * 0.3, seed=0)
    return KVCacheCodec(meta)


def test_decode_work_scales_linearly(kv_codec):
    """Block-decode work must be O(T) across T-step generations."""
    rng = np.random.default_rng(9)
    work = {}
    for steps in (16, 32, 64):
        stream = KVCacheStream(key_codec=kv_codec, value_codec=kv_codec)
        tokens = rng.standard_normal((steps, 128)).astype(np.float32)
        for step in range(steps):
            stream.append(tokens[step], tokens[step])
            stream.read_keys()
            stream.read_values()
        # Every read returned the whole cache...
        assert stream.read_keys().shape == (steps, 128)
        # ...but each token was decoded exactly once, not once per read.
        assert stream.decoded_tokens == {"keys": steps, "values": steps}
        work[steps] = stream.decoded_tokens["keys"]
    assert work[64] == 4 * work[16]  # linear, not quadratic (16x)


def test_invalidation_restores_correctness(kv_codec):
    """Dropping the decoded cache re-decodes to identical values."""
    rng = np.random.default_rng(10)
    stream = KVCacheStream(key_codec=kv_codec, value_codec=kv_codec)
    tokens = rng.standard_normal((24, 128)).astype(np.float32)
    stream.append_tokens(tokens, tokens)
    before = stream.read_keys().copy()
    stream.invalidate_decoded()
    after = stream.read_keys()
    assert np.array_equal(before, after)
    # Invalidation costs exactly one full re-decode, no more.
    assert stream.decoded_tokens["keys"] == 2 * len(stream)


def test_stream_throughput_report():
    """Measured software decode-loop throughput (report + sanity floor)."""
    data = sw_stream_throughput(head_dim=128, prefill=32, decode_steps=64)
    write_report(
        "kv_decode_cache",
        [
            f"prefill:             {data['prefill_tokens']} tokens in one "
            f"batched plan ({data['prefill_tokens_per_s']:,.0f} tokens/s)",
            f"decode loop:         {data['decode_steps']} steps at "
            f"{data['decode_tokens_per_s']:,.0f} tokens/s "
            "(append + full K/V read-back per step)",
            f"tokens block-decoded: {data['decoded_tokens']['keys']} keys / "
            f"{data['decoded_tokens']['values']} values",
            f"compression:         {data['compression_ratio']:.2f}x",
        ],
        data,
    )
    total = data["prefill_tokens"] + data["decode_steps"]
    assert data["decoded_tokens"] == {"keys": total, "values": total}
    assert data["compression_ratio"] == pytest.approx(4.0, rel=0.01)
