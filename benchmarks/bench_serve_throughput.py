"""Multi-tenant serving: fp16 pool vs Ecco pool at one byte budget.

The capacity argument of the paper (§7, Figure 12) made concrete: the
same continuous-batching engine, the same request trace, the same KV
byte budget — only the pool's storage format changes.  The Ecco pool
must admit at least 2x the concurrent requests the fp16 pool sustains,
drain the trace in fewer decode steps (higher batch occupancy = higher
served-request throughput per model invocation), and move a fraction of
the modeled KV read traffic.  A recorded raw-KV audit proves every
request's decoded cache is bit-exact to a single-stream reference run,
so paging, prefix sharing, coalescing and preemption are all lossless.

Writes ``results/serve_throughput.json``.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KVCacheStream
from repro.serve import ServingEngine

SHARED_PREFIX = 8    # one full page shared by every request
UNIQUE_SUFFIX = 16
MAX_NEW_TOKENS = 16
NUM_REQUESTS = 10
PAGE_TOKENS = 8
BYTE_BUDGET = 70_000
MAX_BATCH = 10


def _trace(spec, seed=123):
    """A multi-tenant trace: common system prompt + per-user suffix."""
    rng = np.random.default_rng(seed)
    shared = rng.integers(0, spec.vocab_size, size=SHARED_PREFIX)
    prompts = [
        np.concatenate(
            [shared, rng.integers(0, spec.vocab_size, size=UNIQUE_SUFFIX)]
        )
        for _ in range(NUM_REQUESTS)
    ]
    return prompts


@pytest.fixture(scope="module")
def serve_runs(proxy_medium, calib_medium):
    """Both engines driven over the identical trace and budget."""
    model = proxy_medium.model
    prompts = _trace(proxy_medium.spec)
    runs = {}
    for storage in ("fp16", "ecco"):
        engine = ServingEngine(
            model,
            calib_medium,
            storage=storage,
            byte_budget=BYTE_BUDGET,
            page_tokens=PAGE_TOKENS,
            max_batch_size=MAX_BATCH,
            watermark=0.1,
            # This bench isolates the storage format (and its raw-KV
            # audit needs cold prefills); cross-request prefix reuse
            # has its own bench, bench_session_reuse.py.
            prefix_reuse=False,
            record_reference=True,
        )
        requests = [
            engine.submit(prompt, max_new_tokens=MAX_NEW_TOKENS)
            for prompt in prompts
        ]
        report = engine.run()
        runs[storage] = (engine, requests, report)
    return runs


def test_ecco_pool_doubles_admitted_requests(serve_runs):
    """Same byte budget => >= 2x the concurrent requests, fewer steps."""
    _, _, fp16 = serve_runs["fp16"]
    _, _, ecco = serve_runs["ecco"]
    assert fp16["finished"] == ecco["finished"] == NUM_REQUESTS

    # Capacity: the acceptance bar — and with d_model=96 the format ratio
    # alone is 3x, so 2x holds with margin even before prefix sharing.
    assert ecco["peak_concurrency"] >= 2 * fp16["peak_concurrency"]

    # Served-request throughput per model invocation: a fuller batch
    # drains the same trace in fewer decode steps.
    assert ecco["decode_steps"] < fp16["decode_steps"]
    assert ecco["mean_batch_occupancy"] > fp16["mean_batch_occupancy"]

    # Bandwidth: modeled KV read traffic shrinks by ~the format ratio.
    assert ecco["modeled_kv_read_bytes"] < 0.5 * fp16["modeled_kv_read_bytes"]

    data = {
        "trace": {
            "requests": NUM_REQUESTS,
            "shared_prefix": SHARED_PREFIX,
            "unique_suffix": UNIQUE_SUFFIX,
            "max_new_tokens": MAX_NEW_TOKENS,
            "byte_budget": BYTE_BUDGET,
            "page_tokens": PAGE_TOKENS,
        },
        "fp16": fp16,
        "ecco": ecco,
    }
    write_report(
        "serve_throughput",
        [
            f"trace: {NUM_REQUESTS} requests, prompt "
            f"{SHARED_PREFIX}+{UNIQUE_SUFFIX} tokens "
            f"({SHARED_PREFIX} shared), {MAX_NEW_TOKENS} new tokens each, "
            f"budget {BYTE_BUDGET / 1024:.0f} KiB",
            f"per-token KV bytes:   fp16 {fp16['per_token_nbytes']} B  "
            f"ecco {ecco['per_token_nbytes']} B",
            f"peak concurrency:     fp16 {fp16['peak_concurrency']}  "
            f"ecco {ecco['peak_concurrency']} "
            f"({ecco['peak_concurrency'] / fp16['peak_concurrency']:.1f}x)",
            f"decode steps:         fp16 {fp16['decode_steps']}  "
            f"ecco {ecco['decode_steps']}",
            f"mean batch occupancy: fp16 {fp16['mean_batch_occupancy']:.2f}  "
            f"ecco {ecco['mean_batch_occupancy']:.2f}",
            f"preemptions:          fp16 {fp16['preemptions']}  "
            f"ecco {ecco['preemptions']}",
            f"swap traffic:         fp16 {fp16['pool']['swap_out_bytes']} B  "
            f"ecco {ecco['pool']['swap_out_bytes']} B out",
            f"shared-page savings:  fp16 "
            f"{fp16['pool']['shared_bytes_saved']} B  "
            f"ecco {ecco['pool']['shared_bytes_saved']} B",
            f"modeled KV reads:     fp16 "
            f"{fp16['modeled_kv_read_bytes'] / 1e6:.2f} MB  ecco "
            f"{ecco['modeled_kv_read_bytes'] / 1e6:.2f} MB",
            f"modeled step sectors: fp16 {fp16['modeled_sectors']:,.0f}  "
            f"ecco {ecco['modeled_sectors']:,.0f}",
        ],
        data,
    )


def test_prefix_pages_shared_across_tenants(serve_runs):
    """The shared system prompt resolves to ref-counted shared pages."""
    for storage in ("fp16", "ecco"):
        _, _, report = serve_runs[storage]
        shared_pages = SHARED_PREFIX // PAGE_TOKENS
        # Every request after the first shares the prefix pages.
        assert report["pool"]["pages_shared"] >= (NUM_REQUESTS - 1) * shared_pages
        assert report["pool"]["shared_bytes_saved"] > 0


def test_pool_drains_clean(serve_runs):
    """Finishing every request unpins everything: no active bytes, no
    swap residue — only the evictable prefix cache stays resident."""
    for storage in ("fp16", "ecco"):
        engine, _, report = serve_runs[storage]
        assert engine.pool.bytes_active == 0
        assert engine.pool.private_bytes == 0
        assert engine.pool.bytes_swapped == 0
        assert engine.pool.num_resident_pages == engine.pool.num_cached_pages
        assert report["pool"]["pages_allocated"] > 0


def test_decoded_kv_bit_exact_vs_single_stream_reference(serve_runs):
    """Acceptance: every request's decoded KV equals a single-stream run.

    The reference re-feeds the recorded raw (pre-quantization) K/V of
    each request — whole prompt in one batched append, then one append
    per decode token — through a fresh KVCacheStream with the same
    codecs.  Multi-tenant paging, prefix sharing, tail coalescing and
    preemption must not change a single decoded bit.
    """
    engine, requests, _ = serve_runs["ecco"]
    for request in requests:
        kv = request.kv
        for layer, (key_codec, value_codec) in enumerate(engine.backend.codecs):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            reference.append_tokens(
                kv.raw_prompt[layer]["keys"], kv.raw_prompt[layer]["values"]
            )
            for k_row, v_row in zip(
                kv.raw_decode[layer]["keys"], kv.raw_decode[layer]["values"]
            ):
                reference.append(k_row, v_row)
            assert np.array_equal(reference.read_keys(), kv.read(layer, "keys"))
            assert np.array_equal(
                reference.read_values(), kv.read(layer, "values")
            )
    # The fp16 pool is trivially lossless too (fp16 rounding only).
    engine, requests, _ = serve_runs["fp16"]
    for request in requests:
        kv = request.kv
        for layer in range(engine.backend.num_layers):
            ref_k = np.concatenate(
                [kv.raw_prompt[layer]["keys"]]
                + [row[None, :] for row in kv.raw_decode[layer]["keys"]]
            ).astype(np.float16).astype(np.float32)
            assert np.array_equal(ref_k, kv.read(layer, "keys"))
