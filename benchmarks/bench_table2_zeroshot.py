"""Table 2: zero-shot accuracy on five synthetic commonsense-task stand-ins.

Paper shape (LLaMA2-13B): Ecco W4A8KV4 stays within ~0.3 points of FP16 on
average and above QuaRot(W4A4) and QoQ(W4A8KV4); it wins on most tasks.
Our tasks are agreement / selection / counting / copy / sorting items scored
by length-normalized continuation likelihood (the lm-eval-harness protocol).
"""

import numpy as np
import pytest

from _report import load_cached, store_cached, write_report
from repro.llm import (
    TASK_NAMES,
    apply_named_scheme,
    calibrate,
    multiple_choice_accuracy,
)

SCHEMES = ["fp16", "quarot-w4a8kv4", "atom-w4a4", "qoq-w4a8kv4", "ecco-w4a8kv4"]
ITEMS_PER_TASK = 60


@pytest.fixture(scope="module")
def table2(proxy_medium, calib_medium):
    cached = load_cached("table2_zeroshot_v6")
    if cached is not None and all(scheme in cached for scheme in SCHEMES):
        return cached

    model = proxy_medium.model
    items = {
        task: proxy_medium.generator.task_items(task, ITEMS_PER_TASK, seed=4242)
        for task in TASK_NAMES
    }
    data = {}
    for scheme in SCHEMES:
        qm = apply_named_scheme(model, scheme, calib_medium)
        data[scheme] = {
            task: multiple_choice_accuracy(model, items[task], **qm.hooks())
            for task in TASK_NAMES
        }
    store_cached("table2_zeroshot_v6", data)
    return data


def test_table2_zeroshot(benchmark, table2):
    """Regenerate Table 2 and verify Ecco's accuracy retention."""
    data = benchmark.pedantic(lambda: table2, rounds=1, iterations=1)

    lines = [f"{'scheme':<16}" + "".join(f"{t:>11}" for t in TASK_NAMES) + f"{'avg':>9}"]
    averages = {}
    for scheme in SCHEMES:
        row = data[scheme]
        avg = float(np.mean([row[t] for t in TASK_NAMES]))
        averages[scheme] = avg
        lines.append(
            f"{scheme:<16}"
            + "".join(f"{row[t] * 100:>10.1f}%" for t in TASK_NAMES)
            + f"{avg * 100:>8.1f}%"
        )
    lines.append("paper shape: ecco within ~0.5pt of fp16 average, above qoq/quarot")
    write_report("table2_zeroshot", lines, data)

    # The FP16 model actually learned the tasks (far above the 50% floor).
    assert averages["fp16"] > 0.7
    # Ecco stays close to FP16 on average (paper: within ~0.3 points).
    assert averages["ecco-w4a8kv4"] >= averages["fp16"] - 0.05
    # Ecco at or above QoQ (paper: 71.49 vs 70.83 average).
    assert averages["ecco-w4a8kv4"] >= averages["qoq-w4a8kv4"] - 0.01
    # Atom's aggressive W4A4 is the weakest row (paper: 63.51 average).
    assert averages["atom-w4a4"] <= averages["ecco-w4a8kv4"] + 0.01


def test_table2_tasks_learnable(benchmark, table2):
    """Every individual task is above chance for the FP16 model."""
    data = benchmark.pedantic(lambda: table2, rounds=1, iterations=1)
    for task in TASK_NAMES:
        assert data["fp16"][task] > 0.5, task
