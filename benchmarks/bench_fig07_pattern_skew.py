"""Figure 7: the shared k-means patterns are highly skewed.

The paper plots the 16 shared patterns of the online (hardware) library and
notes they are strongly skewed because every group is scaled by its absolute
maximum, which is excluded from the pattern.  We rebuild the library from
captured KV data and verify the same signatures: wide span, mass pushed
toward the extremes relative to a uniform grid.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import calibrate_kv_meta


@pytest.fixture(scope="module")
def kv_patterns(calib_small):
    kv = calib_small.kv_samples["layers.0.k_cache"]
    meta = calibrate_kv_meta(kv, seed=0)
    return meta.patterns


def test_fig07_pattern_skew(benchmark, kv_patterns):
    """Patterns span most of (-1, 1) and are denser near the extremes."""
    patterns = benchmark.pedantic(lambda: kv_patterns, rounds=1, iterations=1)

    lines = ["shared k-means patterns (each row sorted centroids):"]
    for row, pattern in enumerate(patterns):
        dots = " ".join(f"{c:+.2f}" for c in pattern)
        lines.append(f"KP{row + 1:<3} {dots}")
    span = patterns[:, -1] - patterns[:, 0]
    lines.append(f"mean span = {span.mean():.2f} (paper: visually near full [-1, 1])")
    write_report("fig07_pattern_skew", lines, {"patterns": patterns.tolist()})

    assert patterns.shape == (16, 15)
    # Wide span: scaling by the (excluded) absmax stretches groups outward.
    assert span.mean() > 0.8
    # Sorted within each pattern.
    assert np.all(np.diff(patterns, axis=1) >= 0)
    # Skew: centroid spacing is uneven — extremes sparser than the middle
    # would be under a uniform grid (nonuniformity ratio well above 1).
    spacing = np.diff(patterns, axis=1)
    nonuniformity = spacing.max(axis=1) / np.maximum(spacing.min(axis=1), 1e-6)
    assert np.median(nonuniformity) > 2.0
