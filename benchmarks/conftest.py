"""Shared fixtures for the benchmark suite."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

# Imports resolve through the pytest ``pythonpath`` config in pyproject.toml
# (src/ for the library, benchmarks/ for _report) — no sys.path mutation here.
from repro.llm import CalibrationData, TrainedModel, calibrate, get_trained_model


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "write a Chrome trace-event JSON of the traced bench runs "
            "(the SLO-serving deadline run, the workload-traces chunked "
            "run) to PATH; load it at https://ui.perfetto.dev.  pytest "
            "reserves --trace for pdb tracing, hence the name."
        ),
    )


@pytest.fixture(scope="session")
def trace_out(request):
    """Chrome-trace destination from ``--trace-out``, or ``None``.

    Returns a callable mapping a bench name to its output path.  The
    first traced bench in the invocation writes PATH verbatim; any
    other traced bench appends ``-<bench>`` to the stem so one flag
    serves a multi-bench run without clobbering.
    """
    value = request.config.getoption("--trace-out")
    if not value:
        return None
    base = Path(value)
    claimed: list[str] = []

    def path_for(bench: str) -> Path:
        if not claimed or claimed[0] == bench:
            if not claimed:
                claimed.append(bench)
            return base
        return base.with_name(f"{base.stem}-{bench}{base.suffix}")

    return path_for


@pytest.fixture(scope="session")
def proxy_small() -> TrainedModel:
    """The small trained proxy (cached on disk after the first run)."""
    return get_trained_model("proxy-small")


@pytest.fixture(scope="session")
def proxy_medium() -> TrainedModel:
    """The medium trained proxy."""
    return get_trained_model("proxy-medium")


@pytest.fixture(scope="session")
def calib_small(proxy_small) -> CalibrationData:
    """Calibration capture for the small proxy."""
    tokens = proxy_small.generator.batches(16 * 65 + 65, 16, 64, seed=777)[0]
    return calibrate(proxy_small.model, tokens)


@pytest.fixture(scope="session")
def calib_medium(proxy_medium) -> CalibrationData:
    """Calibration capture for the medium proxy."""
    tokens = proxy_medium.generator.batches(16 * 65 + 65, 16, 64, seed=777)[0]
    return calibrate(proxy_medium.model, tokens)


@pytest.fixture(scope="session")
def heavy_tailed_weight() -> np.ndarray:
    """A synthetic LLM-like weight tensor (leptokurtic, per-channel scales)."""
    rng = np.random.default_rng(1234)
    scales = np.exp(rng.normal(0.0, 0.8, size=(256, 1)))
    return (rng.standard_t(df=5, size=(256, 1024)) * scales * 0.02).astype(np.float32)
