"""Shared reporting helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures and writes a
plain-text report (plus a JSON copy of the raw numbers) under ``results/`` so
EXPERIMENTS.md can cite them.  Expensive experiment outputs are cached in
``results/cache`` keyed by a config tag; delete the directory to force a
recompute.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "results_dir",
    "write_report",
    "load_cached",
    "store_cached",
]

#: Version stamp written into every cache entry.  Bump it whenever the
#: codec or the cached payload shapes change: ``load_cached`` treats an
#: entry from any other schema (including legacy unstamped entries) as
#: absent, so a stale cache forces a recompute instead of silently
#: serving numbers from a different codec.
CACHE_SCHEMA_VERSION = 1


def results_dir() -> Path:
    """The repository-level results directory (created on demand)."""
    root = Path(__file__).resolve().parents[1]
    path = root / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_report(name: str, lines: list[str], data: dict | None = None) -> Path:
    """Write (and echo) a report; optionally store the raw numbers as JSON."""
    path = results_dir() / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print(f"\n=== {name} ===")
    print(text)
    if data is not None:
        (results_dir() / f"{name}.json").write_text(json.dumps(data, indent=2))
    return path


def load_cached(tag: str) -> dict | None:
    """Load a cached experiment result, or None when absent or stale.

    Stale means unreadable, unstamped (written before cache entries
    carried a schema), or stamped with a different
    :data:`CACHE_SCHEMA_VERSION` — all of which mean the numbers may
    predate a codec change and must be recomputed, not served.
    """
    path = results_dir() / "cache" / f"{tag}.json"
    if not path.exists():
        return None
    try:
        blob = json.loads(path.read_text())
    except json.JSONDecodeError:
        return None
    if not isinstance(blob, dict) or blob.get("schema") != CACHE_SCHEMA_VERSION:
        return None
    return blob.get("data")


def store_cached(tag: str, data: dict) -> None:
    """Persist an experiment result (schema-stamped) for future runs."""
    path = results_dir() / "cache" / f"{tag}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"schema": CACHE_SCHEMA_VERSION, "data": data}, indent=2)
    )
