"""Figure 14: sensitivity to decompressor throughput and latency.

Paper shapes: (a) slowdown ~1.0 while the decompressor sustains >= ~50-60% of
the L2's bandwidth, then rises sharply (~6-7x at 10%); (b) latency is mostly
hidden by memory-level parallelism — a gradual rise to ~1.3x at 300 cycles.
"""

import pytest

from _report import write_report
from repro.memsys import WorkloadConfig, normalized_slowdown

WORKLOAD = WorkloadConfig(num_requests=40000)


def test_fig14a_throughput_sweep(benchmark):
    """Slowdown vs decompressor/L2 throughput fraction."""

    def sweep():
        fractions = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]
        return {f: normalized_slowdown(f, 28, WORKLOAD) for f in fractions}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'throughput':>10} {'slowdown':>9}"]
    for fraction, slowdown in rows.items():
        lines.append(f"{fraction * 100:>9.0f}% {slowdown:>9.2f}")
    lines.append("paper: ~1.0 down to ~50%, sharp rise below (6-7x at 10%)")
    write_report("fig14a_throughput", lines, {str(k): v for k, v in rows.items()})

    assert rows[1.0] == pytest.approx(1.0, abs=0.05)
    assert rows[0.6] < 1.15
    assert rows[0.3] > 1.4
    assert 3.5 < rows[0.1] < 9.0
    values = list(rows.values())
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


def test_fig14b_latency_sweep(benchmark):
    """Slowdown vs decompressor latency at full throughput."""

    def sweep():
        return {
            lat: normalized_slowdown(1.0, lat, WORKLOAD)
            for lat in [0, 30, 60, 90, 120, 150, 180, 210, 240, 270, 300]
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'latency':>8} {'slowdown':>9}"]
    for latency, slowdown in rows.items():
        lines.append(f"{latency:>8} {slowdown:>9.3f}")
    lines.append("paper: gradual 1.0 -> ~1.3 over 0..300 cycles")
    write_report("fig14b_latency", lines, {str(k): v for k, v in rows.items()})

    assert rows[0] == pytest.approx(1.0, abs=0.01)
    assert rows[60] < 1.1
    assert 1.1 < rows[300] < 1.5
    values = list(rows.values())
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


def test_fig14_design_point_safe(benchmark):
    """The actual design (100% matched throughput, 28 cycles) costs ~nothing."""
    slowdown = benchmark.pedantic(
        lambda: normalized_slowdown(1.0, 28, WORKLOAD), rounds=1, iterations=1
    )
    assert slowdown < 1.03
