"""Section 5.2: codec pipeline latencies and L2-matched throughput.

Paper values: 28-cycle decompressor, 62-cycle compressor, 20 replicated
instances matching the L2's 5120 bytes/cycle.  This bench also times the
bit-exact functional models (blocks/second of the Python reference).
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import EccoTensorCodec, calibrate_kv_meta
from repro.hardware import (
    HardwareCompressor,
    ParallelHuffmanDecoder,
    SequentialDecoderModel,
    compressor_2x_pipeline,
    compressor_4x_pipeline,
    decompressor_2x_pipeline,
    decompressor_4x_pipeline,
    latency_reduction_vs_parallel,
)
from repro.memsys import A100


@pytest.fixture(scope="module")
def kv_meta():
    rng = np.random.default_rng(77)
    return calibrate_kv_meta(rng.standard_normal((64, 256)), seed=1)


def test_pipeline_budgets(benchmark):
    """Latency and throughput of the four pipelined units."""
    pipes = benchmark.pedantic(
        lambda: [
            decompressor_4x_pipeline(),
            decompressor_2x_pipeline(),
            compressor_4x_pipeline(),
            compressor_2x_pipeline(),
        ],
        rounds=1,
        iterations=1,
    )
    lines = [f"{'unit':<18} {'latency':>8} {'B/cycle':>9} {'matches L2':>11}"]
    for pipe in pipes:
        lines.append(
            f"{pipe.name:<18} {pipe.latency_cycles:>8} "
            f"{pipe.throughput_bytes_per_cycle:>9.0f} "
            f"{str(pipe.matches_cache_bandwidth(A100.l2_bytes_per_cycle)):>11}"
        )
    lines.append("paper: decompressor 28 cycles, compressor 62; 20 copies = 5120 B/c")
    write_report("hw_pipeline", lines)

    dec4, dec2, comp4, comp2 = pipes
    assert dec4.latency_cycles == 28
    assert comp4.latency_cycles == 62
    for pipe in pipes:
        assert pipe.matches_cache_bandwidth(A100.l2_bytes_per_cycle)


def test_sequential_decoder_comparison(benchmark):
    """The paper's claim: two orders of magnitude lower latency than a
    traditional sequential Huffman decoder at sustained load."""

    def sweep():
        sequential = SequentialDecoderModel()
        return {
            "sequential_block_cycles": sequential.block_latency_cycles,
            "sequential_instances_for_l2": sequential.instances_for_bandwidth(5120),
            "reduction_burst20": latency_reduction_vs_parallel(queue_depth=20),
            "reduction_burst100": latency_reduction_vs_parallel(queue_depth=100),
        }

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_report(
        "hw_sequential_comparison",
        [
            f"sequential decoder: {data['sequential_block_cycles']} cycles/block, "
            f"{data['sequential_instances_for_l2']} instances to match L2",
            f"latency reduction (20-block burst):  {data['reduction_burst20']:.0f}x",
            f"latency reduction (100-block burst): {data['reduction_burst100']:.0f}x",
            "paper: parallel design reduces latency by two orders of magnitude",
        ],
        data,
    )
    assert data["reduction_burst20"] > 30
    assert data["reduction_burst100"] >= 100
    assert data["sequential_instances_for_l2"] > 1000


def test_functional_decoder_throughput(benchmark, kv_meta):
    """Time the bit-exact parallel-decoder model on a stream of blocks."""
    rng = np.random.default_rng(5)
    tensor = rng.standard_normal((8, 128))
    codec = EccoTensorCodec(kv_meta)
    compressed = codec.encode(tensor)
    decoder = ParallelHuffmanDecoder(kv_meta)
    blocks = [row.tobytes() for row in compressed.blocks]

    def decode_all():
        return [decoder.decode(block) for block in blocks]

    outputs = benchmark(decode_all)
    assert len(outputs) == len(blocks)


def test_functional_compressor_throughput(benchmark, kv_meta):
    """Time the bit-exact hardware-compressor model."""
    rng = np.random.default_rng(6)
    groups = rng.standard_normal((8, 128))
    compressor = HardwareCompressor(kv_meta)

    def encode_all():
        return [compressor.encode_group(group) for group in groups]

    outputs = benchmark(encode_all)
    assert len(outputs) == len(groups)
