"""Ablations of Ecco's design choices (DESIGN.md §5) plus the §2.4 claims.

Not a paper table, but each row isolates a decision the paper motivates:

* full-MSE vs hardware min/max pattern selection (§3.2: "only a minimal drop");
* outlier padding on/off (the clip/pad strategy of Step 9);
* codebook-refinement iterations (our Lloyd-in-code-length-space fit);
* activation-aware vs plain k-means (Step 3);
* lossless BDI vs Ecco's 4x (§2.4: lossless ratios are too low for LLMs).
"""

import numpy as np
import pytest

from _report import write_report
from repro.baselines import bdi_compression_ratio
from repro.core import (
    KV_CONFIG,
    WEIGHT_CONFIG,
    EccoConfig,
    fit_tensor_meta,
    simulate_roundtrip,
)


@pytest.fixture(scope="module")
def kv_tensor(calib_small):
    return calib_small.kv_samples["layers.0.k_cache"]


def _mse(meta, tensor):
    sim = simulate_roundtrip(meta, tensor)
    return float(np.mean((sim.values - tensor) ** 2)), sim


def test_ablation_pattern_selection(benchmark, kv_tensor):
    """Min/max selection costs only a modest MSE increase over full MSE."""

    def run():
        mse_meta = fit_tensor_meta(
            kv_tensor, config=EccoConfig(num_patterns=16), max_calibration_groups=512
        )
        mm_meta = fit_tensor_meta(
            kv_tensor, config=KV_CONFIG, max_calibration_groups=512
        )
        full, __ = _mse(mse_meta, kv_tensor)
        minmax, __ = _mse(mm_meta, kv_tensor)
        return full, minmax

    full, minmax = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_pattern_selection",
        [
            f"full-MSE selection:  mse={full:.5e}",
            f"min/max selection:   mse={minmax:.5e} ({minmax / full:.2f}x)",
            "paper: simplified selection incurs only a minimal drop",
        ],
        {"mse_select": full, "minmax_select": minmax},
    )
    assert minmax >= full * 0.999  # min/max cannot beat the full search
    assert minmax <= full * 2.0  # ... and stays in the same regime


def test_ablation_outlier_padding(benchmark, heavy_tailed_weight):
    """Padding recovers the large values FP4-style codes would destroy."""

    def run():
        meta = fit_tensor_meta(heavy_tailed_weight, max_calibration_groups=512)
        flat = heavy_tailed_weight.ravel()
        top = np.argsort(-np.abs(flat))[:500]

        sim = simulate_roundtrip(meta, heavy_tailed_weight)
        sim_nopad = simulate_roundtrip(
            meta, heavy_tailed_weight, apply_outliers=False
        )
        with_pad = float(np.mean((sim.values.ravel()[top] - flat[top]) ** 2))
        no_pad = float(np.mean((sim_nopad.values.ravel()[top] - flat[top]) ** 2))
        return with_pad, no_pad

    with_pad, no_pad = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_outlier_padding",
        [
            f"top-500 value MSE with padding:    {with_pad:.5e}",
            f"top-500 value MSE without padding: {no_pad:.5e}",
        ],
        {"with_padding": with_pad, "without_padding": no_pad},
    )
    assert with_pad < no_pad


def test_ablation_codebook_refinement(benchmark, kv_tensor):
    """Lloyd refinement of the codebooks reduces clipping."""
    from repro.core import patterns as patterns_mod

    def clipping(refine: int) -> float:
        original = patterns_mod._fit_codebooks
        def patched(indices, pattern_ids, config, seed, refine_iterations=3):
            return original(indices, pattern_ids, config, seed, refine_iterations=refine)
        patterns_mod._fit_codebooks = patched
        try:
            meta = fit_tensor_meta(
                kv_tensor, config=KV_CONFIG, max_calibration_groups=512
            )
        finally:
            patterns_mod._fit_codebooks = original
        __, sim = _mse(meta, kv_tensor)
        return sim.clipping_ratio

    def run():
        return clipping(0), clipping(3)

    unrefined, refined = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_codebook_refinement",
        [
            f"clipping without refinement: {unrefined:.3%}",
            f"clipping with 3 iterations:  {refined:.3%}",
        ],
        {"unrefined": unrefined, "refined": refined},
    )
    assert refined <= unrefined + 0.002


def test_ablation_activation_awareness(benchmark, proxy_small, calib_small):
    """Activation-aware clustering lowers the weighted (output) error."""
    name = "layers.0.ffn.wg"
    weight = proxy_small.model.params[name].data
    stats = calib_small.act_stats[name]
    act_weights = np.broadcast_to(stats.mean_sq[None, :], weight.shape)

    def run():
        aware = fit_tensor_meta(
            weight, act_weights=act_weights, max_calibration_groups=512
        )
        plain = fit_tensor_meta(weight, max_calibration_groups=512)
        aware_sim = simulate_roundtrip(aware, weight, act_weights=act_weights)
        plain_sim = simulate_roundtrip(plain, weight)
        weighted = lambda sim: float(
            np.sum(stats.mean_sq[None, :] * (sim.values - weight) ** 2)
        )
        return weighted(aware_sim), weighted(plain_sim)

    aware, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_activation_awareness",
        [
            f"activation-aware weighted error: {aware:.5e}",
            f"plain k-means weighted error:    {plain:.5e}",
        ],
        {"aware": aware, "plain": plain},
    )
    assert aware <= plain * 1.10  # awareness should help or at worst tie


def test_lossless_bdi_insufficient(benchmark, heavy_tailed_weight):
    """§2.4: lossless BDI achieves far less than Ecco's fixed 4x on FP16."""
    ratio = benchmark.pedantic(
        lambda: bdi_compression_ratio(heavy_tailed_weight), rounds=1, iterations=1
    )
    write_report(
        "ablation_bdi_lossless",
        [
            f"BDI ratio on FP16 LLM-like weights: {ratio:.2f}x",
            "Ecco fixed ratio: 4.00x (lossy)",
            "paper §2.4: lossless methods cannot relieve the LLM memory wall",
        ],
        {"bdi_ratio": ratio},
    )
    assert ratio < 2.0
    assert ratio >= 1.0
