"""Trace-driven serving: chunked prefill + cluster routing under bursts.

A bursty, shared-prefix workload (short chats + long RAG preambles +
growing agent loops) is replayed on a virtual clock against the same
engine three ways: unchunked (the whole-prompt prefill path), chunked
(page-aligned prefill slices drawn from a per-step token budget), and a
two-replica cluster of chunked engines behind prefix-affinity routing.
The step cost is a compute-vs-bandwidth roofline, so an unchunked long
prompt stalls its step for the full linear prefill cost while a chunk
rides under the decode batch's bandwidth lane — chunked prefill must
cut both max and mean TTFT.  Throughout, the pool byte budget is a hard
invariant (the engine fails loudly on any overrun; the peak-residency
counter proves no step ever exceeded it), and the chunked run's decoded
KV must stay bit-exact against a single-stream reference.

Writes ``results/workload_traces.json``.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KVCacheStream
from repro.obs import TraceRecorder, write_chrome_trace
from repro.serve import (
    ClusterRouter,
    ServingEngine,
    StepCostModel,
    VirtualClock,
    WorkloadConfig,
    generate_trace,
    replay_trace,
)

BYTE_BUDGET = 200_000
PAGE_TOKENS = 8
MAX_BATCH = 16
CHUNK_TOKENS = 32
STEP_TOKEN_BUDGET = 64
TRACE_SEED = 11


def _trace_config(spec) -> WorkloadConfig:
    """Bursty arrivals over a shared-prefix scenario mix: 60% short
    chats, 25% long RAG preambles (10 shared pages — the prompts that
    stall an unchunked batch), 15% agent loops."""
    return WorkloadConfig(
        duration_s=10.0,
        rate_rps=3.0,
        arrivals="bursty",
        vocab_size=spec.vocab_size,
        page_tokens=PAGE_TOKENS,
        mix={"chat": 0.6, "rag": 0.25, "agent": 0.15},
        rag_system_pages=10,
        chat_turn_mean=10.0,
        output_mean=12.0,
        max_tokens=40,
    )


def _engine(model, calib, clock, chunked: bool, recorder=None) -> ServingEngine:
    return ServingEngine(
        model,
        calib,
        storage="ecco",
        byte_budget=BYTE_BUDGET,
        page_tokens=PAGE_TOKENS,
        max_batch_size=MAX_BATCH,
        watermark=0.1,
        prefill_chunk_tokens=CHUNK_TOKENS if chunked else None,
        step_token_budget=STEP_TOKEN_BUDGET if chunked else None,
        # This bench isolates chunked prefill (and its raw-KV audit
        # needs cold prefills — the trace's shared RAG preambles would
        # otherwise attach pages recorded by other requests); reuse has
        # its own bench, bench_session_reuse.py.
        prefix_reuse=False,
        record_reference=chunked,
        clock=clock,
        recorder=recorder,
    )


@pytest.fixture(scope="module")
def workload_runs(proxy_small, calib_small, trace_out):
    """The same bursty trace through unchunked, chunked and cluster."""
    model = proxy_small.model
    trace = generate_trace(_trace_config(proxy_small.spec), seed=TRACE_SEED)
    cost = StepCostModel()
    runs = {}

    for mode in ("unchunked", "chunked"):
        clock = VirtualClock()
        # --trace-out records the chunked run (the headline mode);
        # tracing reads the clock without advancing it, so the A/B
        # comparison is unchanged.
        recorder = (
            TraceRecorder(clock)
            if mode == "chunked" and trace_out is not None
            else None
        )
        engine = _engine(
            model, calib_small, clock,
            chunked=mode == "chunked", recorder=recorder,
        )
        replay = replay_trace(engine, trace, clock, cost)
        if recorder is not None:
            write_chrome_trace(recorder, trace_out("workload_traces"))
        runs[mode] = {
            "engine": engine,
            "replay": replay,
            "report": engine.report(clock()),
        }

    clock = VirtualClock()
    engines = [
        _engine(model, calib_small, clock, chunked=True) for _ in range(2)
    ]
    cluster = ClusterRouter(engines, affinity_pages=1)
    replay = replay_trace(cluster, trace, clock, cost)
    runs["cluster"] = {
        "cluster": cluster,
        "replay": replay,
        "report": cluster.report(clock()),
    }
    runs["trace"] = trace
    return runs


def test_chunked_prefill_cuts_ttft_on_a_bursty_trace(workload_runs):
    """Acceptance: chunked prefill reduces max TTFT vs unchunked on the
    bursty shared-prefix trace, at equal correctness and budget."""
    trace = workload_runs["trace"]
    unchunked = workload_runs["unchunked"]["report"]
    chunked = workload_runs["chunked"]["report"]
    cluster = workload_runs["cluster"]["report"]
    for report in (unchunked, chunked, cluster):
        assert report["finished"] == len(trace)

    assert chunked["prefill_chunks"] > 0
    assert chunked["ttft_s_max"] < 0.85 * unchunked["ttft_s_max"]
    assert chunked["ttft_s_mean"] < unchunked["ttft_s_mean"]
    # Two replicas behind the router do even better than one.
    assert cluster["ttft_s_max"] < chunked["ttft_s_max"]
    assert cluster["routing"]["affinity_hits"] > 0
    assert min(cluster["routing"]["routed"]) > 0

    data = {
        "trace": {
            "requests": len(trace),
            "seed": TRACE_SEED,
            "arrivals": "bursty",
            "max_prompt": int(max(len(t.prompt) for t in trace)),
            "byte_budget": BYTE_BUDGET,
            "prefill_chunk_tokens": CHUNK_TOKENS,
            "step_token_budget": STEP_TOKEN_BUDGET,
        },
        "unchunked": unchunked,
        "chunked": chunked,
        "cluster": {
            key: value
            for key, value in cluster.items()
            if key != "per_replica"
        },
        "cluster_per_replica": cluster["per_replica"],
    }
    write_report(
        "workload_traces",
        [
            f"trace: {len(trace)} bursty requests, longest prompt "
            f"{data['trace']['max_prompt']} tokens, budget "
            f"{BYTE_BUDGET / 1024:.0f} KiB/replica",
            f"TTFT max:  unchunked {unchunked['ttft_s_max']:.3f}s  "
            f"chunked {chunked['ttft_s_max']:.3f}s  "
            f"2-replica cluster {cluster['ttft_s_max']:.3f}s",
            f"TTFT mean: unchunked {unchunked['ttft_s_mean']:.3f}s  "
            f"chunked {chunked['ttft_s_mean']:.3f}s  "
            f"cluster {cluster['ttft_s_mean']:.3f}s",
            f"prefill chunks: {chunked['prefill_chunks']} "
            f"({chunked['chunked_prefill_tokens']} tokens), "
            f"stalls {chunked['prefill_stalls']}",
            f"drain time: unchunked {unchunked['elapsed_s']:.2f}s "
            f"chunked {chunked['elapsed_s']:.2f}s "
            f"cluster {cluster['elapsed_s']:.2f}s (simulated)",
            f"budget overruns: unchunked "
            f"{unchunked['pool']['budget_overruns']}  chunked "
            f"{chunked['pool']['budget_overruns']}  cluster "
            f"{cluster['budget_overruns']} (peak resident "
            f"{chunked['pool']['peak_bytes_resident']} / {BYTE_BUDGET} B)",
            f"cluster routing: {cluster['routing']['routed']} requests "
            f"per replica, {cluster['routing']['affinity_hits']} affinity "
            f"hits, {cluster['routing']['affinity_overrides']} overrides",
        ],
        data,
    )


def test_no_step_exceeds_the_byte_budget(workload_runs):
    """The budget held at every allocation of every run: the engine
    would have raised mid-replay otherwise, and the pool's peak
    residency / overrun counters agree."""
    reports = [
        workload_runs["unchunked"]["report"],
        workload_runs["chunked"]["report"],
        *workload_runs["cluster"]["report"]["per_replica"],
    ]
    for report in reports:
        pool = report["pool"]
        assert pool["budget_overruns"] == 0
        assert pool["max_overrun_bytes"] == 0
        assert pool["peak_bytes_resident"] <= pool["byte_budget"]


def test_chunked_decoded_kv_bit_exact_vs_single_stream(workload_runs):
    """Acceptance: chunked prefill changes scheduling, not bytes — every
    finished request's decoded KV equals a fresh single-stream run over
    its recorded raw (pre-quantization) K/V."""
    engine = workload_runs["chunked"]["engine"]
    for request in engine.requests:
        kv = request.kv
        for layer, (key_codec, value_codec) in enumerate(
            engine.backend.codecs
        ):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            reference.append_tokens(
                kv.raw_prompt[layer]["keys"], kv.raw_prompt[layer]["values"]
            )
            for k_row, v_row in zip(
                kv.raw_decode[layer]["keys"], kv.raw_decode[layer]["values"]
            ):
                reference.append(k_row, v_row)
            assert np.array_equal(reference.read_keys(), kv.read(layer, "keys"))
            assert np.array_equal(
                reference.read_values(), kv.read(layer, "values")
            )
