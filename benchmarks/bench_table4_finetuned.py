"""Table 4: accuracy on a fine-tuned ("instruct") model.

Paper shape (LLaMA-3.1-8B-Instruct, ARC-c): under weight-only compression
Ecco retains more accuracy than AWQ; under full W4A8KV4, Ecco retains more
than QoQ; both stay close to FP16.  Our stand-in fine-tunes the medium proxy
on a task-heavy mixture and evaluates the hardest task family.
"""

import numpy as np
import pytest

from _report import load_cached, store_cached, write_report
from repro.llm import (
    apply_named_scheme,
    calibrate,
    get_trained_model,
    multiple_choice_accuracy,
)

SCHEMES = ["fp16", "awq-w4", "ecco-w4", "qoq-w4a8kv4", "ecco-w4a8kv4"]


@pytest.fixture(scope="module")
def table4():
    cached = load_cached("table4_finetuned_v6")
    if cached is not None:
        return cached

    trained = get_trained_model("proxy-medium", finetune_steps=80)
    tokens = trained.generator.batches(16 * 65 + 65, 16, 64, seed=777)[0]
    calib = calibrate(trained.model, tokens)
    items = trained.generator.task_items("sorting", 80, seed=9000)
    items += trained.generator.task_items("counting", 80, seed=9001)

    data = {}
    for scheme in SCHEMES:
        qm = apply_named_scheme(trained.model, scheme, calib)
        data[scheme] = multiple_choice_accuracy(trained.model, items, **qm.hooks())
    store_cached("table4_finetuned_v6", data)
    return data


def test_table4_finetuned(benchmark, table4):
    """Regenerate Table 4 and verify the retention ordering."""
    data = benchmark.pedantic(lambda: table4, rounds=1, iterations=1)

    lines = [f"{'scheme':<16} {'accuracy':>9}"]
    for scheme in SCHEMES:
        lines.append(f"{scheme:<16} {data[scheme] * 100:>8.1f}%")
    lines.append("paper shape: ecco >= awq (weight-only); ecco >= qoq (w4a8kv4)")
    write_report("table4_finetuned", lines, data)

    assert data["fp16"] > 0.7
    # Weight-only: Ecco retains at least as much accuracy as AWQ.
    assert data["ecco-w4"] >= data["awq-w4"] - 0.013
    # Full configuration: Ecco retains at least as much as QoQ.
    assert data["ecco-w4a8kv4"] >= data["qoq-w4a8kv4"] - 0.013
    # Both Ecco rows stay near FP16.
    assert data["ecco-w4"] >= data["fp16"] - 0.05
