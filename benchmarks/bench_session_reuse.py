"""Multi-turn sessions: cross-turn compressed-KV reuse vs cold starts.

The dominant production scenario — chat, where turn N+1's prompt is
turn N's full history plus new user text — replayed on a virtual clock
against the same engine twice: once with prefix reuse (warm turns
attach every stored page, including the promoted conversation tail, and
forward only the new suffix) and once reuse-disabled (every turn
re-prefills its whole history, the pre-fix behaviour).  The engine
charges its own clock (synchronous StepCostModel charging), so each
turn's TTFT contains its own prefill cost: warm turns must come out
measurably below the cold baseline's follow-up turns, with zero budget
overruns, and every session's decoded KV must be bit-exact against a
single-stream reference fed the recorded raw K/V of all its turns.

Writes ``results/session_reuse.json``.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KVCacheStream
from repro.serve import (
    ServingEngine,
    StepCostModel,
    VirtualClock,
    generate_sessions,
    replay_sessions,
    summarize_turns,
)

BYTE_BUDGET = 500_000
PAGE_TOKENS = 8
MAX_BATCH = 8
SESSION_SEED = 17
NUM_SESSIONS = 6


def _traces(spec):
    return generate_sessions(
        seed=SESSION_SEED,
        num_sessions=NUM_SESSIONS,
        vocab_size=spec.vocab_size,
        page_tokens=PAGE_TOKENS,
        turns_mean=4.0,
        max_turns=6,
        # Disjoint session histories: the raw-KV audit rebuilds each
        # session from its own recorded raws, so turn 1 must start cold
        # (a shared system page would attach bytes first encoded — and
        # recorded — by a *different* session).  Cross-session sharing
        # of a common system prompt is covered by the tier-0 tests.
        # The token-level trie could still salvage an accidental short
        # shared head across sessions, but the pool's cost-aware split
        # floor (``split_min_tokens``, default 4) rejects it: with a
        # 64-token vocab a 4-token cross-session collision has
        # probability ~64^-3 per pair — effectively never.
        system_pages=0,
        first_turn_mean=20.0,
        turn_mean=12.0,
        think_mean_s=0.5,
        output_mean=10.0,
    )


@pytest.fixture(scope="module")
def session_runs(proxy_small, calib_small):
    """The same session workload, reuse on vs reuse off."""
    model = proxy_small.model
    traces = _traces(proxy_small.spec)
    runs = {}
    for mode, reuse in (("reuse", True), ("cold", False)):
        clock = VirtualClock()
        engine = ServingEngine(
            model,
            calib_small,
            storage="ecco",
            byte_budget=BYTE_BUDGET,
            page_tokens=PAGE_TOKENS,
            max_batch_size=MAX_BATCH,
            watermark=0.1,
            prefix_reuse=reuse,
            step_cost=StepCostModel(),
            record_reference=reuse,
            clock=clock,
        )
        replay = replay_sessions(engine, traces, clock)
        turns = [t for s in replay["sessions"] for t in s.turn_reports()]
        runs[mode] = {
            "engine": engine,
            "replay": replay,
            "report": engine.report(clock()),
            "turns": summarize_turns(turns),
        }
    runs["traces"] = traces
    return runs


def test_warm_turns_cut_ttft_vs_cold_start(session_runs):
    """Acceptance: turn-2+ TTFT drops measurably once the prefix cache
    serves the conversation history, at zero budget overruns."""
    reuse = session_runs["reuse"]
    cold = session_runs["cold"]
    total_turns = sum(t.num_turns for t in session_runs["traces"])
    for run in (reuse, cold):
        assert run["replay"]["turns_submitted"] == total_turns
        assert run["replay"]["turns_rejected"] == 0
        assert run["report"]["finished"] == total_turns
        assert run["report"]["pool"]["budget_overruns"] == 0

    warm = reuse["turns"]
    baseline = cold["turns"]
    assert warm["warm_turns"] >= total_turns - NUM_SESSIONS
    assert baseline["warm_turns"] == 0
    # Follow-up turns: warm TTFT well under the cold baseline's.
    assert warm["ttft_s_mean_warm"] < 0.5 * baseline["ttft_s_mean_cold"]
    # And most prompt tokens never re-encode.
    assert warm["reuse_fraction"] > 0.5
    assert warm["prompt_tokens_reencoded"] < baseline["prompt_tokens"] // 2

    pool = reuse["report"]["pool"]
    data = {
        "workload": {
            "sessions": NUM_SESSIONS,
            "turns": total_turns,
            "byte_budget": BYTE_BUDGET,
            "page_tokens": PAGE_TOKENS,
            "seed": SESSION_SEED,
        },
        "reuse": {
            "turns": warm,
            "report": reuse["report"],
            "simulated_s": reuse["replay"]["simulated_s"],
        },
        "cold": {
            "turns": baseline,
            "report": cold["report"],
            "simulated_s": cold["replay"]["simulated_s"],
        },
    }
    write_report(
        "session_reuse",
        [
            f"workload: {NUM_SESSIONS} sessions, {total_turns} turns, "
            f"budget {BYTE_BUDGET / 1024:.0f} KiB",
            f"warm turns:        {warm['warm_turns']}/{warm['turns']} "
            f"(reuse fraction {warm['reuse_fraction']:.2f})",
            f"TTFT mean:         warm {warm['ttft_s_mean_warm'] * 1e3:.1f} ms"
            f"  vs cold baseline "
            f"{baseline['ttft_s_mean_cold'] * 1e3:.1f} ms "
            f"({baseline['ttft_s_mean_cold'] / warm['ttft_s_mean_warm']:.1f}x)",
            f"prompt tokens:     {warm['prompt_tokens']} total, "
            f"{warm['prefix_tokens_reused']} reused, "
            f"{warm['prompt_tokens_reencoded']} re-encoded "
            f"(cold baseline re-encodes {baseline['prompt_tokens']})",
            f"pages hit:         {warm['prefix_pages_hit']}",
            f"shared savings:    {pool['shared_bytes_saved']} B compressed, "
            f"{pool['shared_fp16_bytes_saved']} B fp16-equivalent",
            f"simulated drain:   reuse "
            f"{reuse['replay']['simulated_s']:.2f}s  cold "
            f"{cold['replay']['simulated_s']:.2f}s",
            f"budget overruns:   0 (hard invariant)",
        ],
        data,
    )


def test_session_kv_bit_exact_vs_single_stream_reference(session_runs):
    """Acceptance: every session's decoded KV after its final turn is
    bit-exact against one single-stream reference fed the recorded raw
    (pre-quantization) K/V of all its turns — attach, tail promotion
    and warm suffix ingestion change no decoded bit."""
    engine = session_runs["reuse"]["engine"]
    for session in session_runs["reuse"]["replay"]["sessions"]:
        final = session.requests[-1]
        for layer, (key_codec, value_codec) in enumerate(
            engine.backend.codecs
        ):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            for request in session.requests:
                raw_prompt = request.kv.raw_prompt[layer]
                reference.append_tokens(
                    raw_prompt["keys"], raw_prompt["values"]
                )
                for k_row, v_row in zip(
                    request.kv.raw_decode[layer]["keys"],
                    request.kv.raw_decode[layer]["values"],
                ):
                    reference.append(k_row, v_row)
            assert np.array_equal(
                reference.read_keys(), final.kv.read(layer, "keys")
            )
            assert np.array_equal(
                reference.read_values(), final.kv.read(layer, "values")
            )


def test_no_unreachable_cache_and_clean_drain(session_runs):
    """After draining, the pool holds only reachable cached history and
    the accounting is clean in both directions."""
    for mode in ("reuse", "cold"):
        engine = session_runs[mode]["engine"]
        assert engine.pool.bytes_active == 0
        assert engine.pool.private_bytes == 0
        assert engine.pool.bytes_swapped == 0
        assert engine.pool.unreachable_cached_pages() == []
        engine.pool.check_budget()
