"""Table 1: perplexity of quantized proxy models (the WikiText-2 stand-in).

Paper shape (per model): under W4A16, Ecco is at or below AWQ and clearly
below Olive; under W4A8KV4, Ecco beats RTN, AWQ and QoQ, with QuaRot the
closest competitor.  Absolute perplexities differ (trained numpy proxies on a
synthetic corpus); the deltas over FP16 and the method ordering are the
reproduced quantities.
"""

import pytest

from _report import load_cached, store_cached, write_report
from repro.llm import apply_named_scheme, calibrate, get_trained_model, perplexity

MODELS = ["proxy-small", "proxy-medium", "proxy-large"]
W4A16 = ["gptq-r-w4", "olive-w4", "awq-w4", "ecco-w4"]
W4A8KV4 = ["rtn-w4a8kv4", "awq-w4a8kv4", "quarot-w4a8kv4", "qoq-w4a8kv4", "ecco-w4a8kv4"]


def _evaluate_model(name: str) -> dict[str, float]:
    trained = get_trained_model(name)
    held = trained.generator.token_stream(6144, seed=31337)
    tokens = trained.generator.batches(16 * 65 + 65, 16, 64, seed=777)[0]
    calib = calibrate(trained.model, tokens)

    results = {"fp16": perplexity(trained.model, held, seq_len=64, batch=16)}
    for scheme in W4A16 + W4A8KV4:
        qm = apply_named_scheme(trained.model, scheme, calib)
        results[scheme] = perplexity(
            trained.model, held, seq_len=64, batch=16, **qm.hooks()
        )
    return results


@pytest.fixture(scope="module")
def table1():
    cached = load_cached("table1_perplexity_v6")
    if cached is not None:
        return cached
    data = {name: _evaluate_model(name) for name in MODELS}
    store_cached("table1_perplexity_v6", data)
    return data


def test_table1_perplexity(benchmark, table1):
    """Regenerate Table 1 and verify the method ordering per configuration."""
    data = benchmark.pedantic(lambda: table1, rounds=1, iterations=1)

    schemes = ["fp16"] + W4A16 + W4A8KV4
    lines = [f"{'scheme':<16}" + "".join(f"{m.split('-')[1]:>12}" for m in MODELS)]
    for scheme in schemes:
        row = f"{scheme:<16}" + "".join(f"{data[m][scheme]:>12.4f}" for m in MODELS)
        lines.append(row)
    lines.append("")
    lines.append("deltas over fp16:")
    for scheme in schemes[1:]:
        row = f"{scheme:<16}" + "".join(
            f"{data[m][scheme] - data[m]['fp16']:>+12.4f}" for m in MODELS
        )
        lines.append(row)
    lines.append("paper shape: W4A16 ecco <= awq < olive; W4A8KV4 ecco < rtn/awq/qoq")
    write_report("table1_perplexity", lines, data)

    for model in MODELS:
        row = data[model]
        fp16 = row["fp16"]
        # All quantized configurations degrade (or match) FP16.
        for scheme in W4A16 + W4A8KV4:
            assert row[scheme] >= fp16 - 0.02, (model, scheme)
        # W4A16: Ecco at or below AWQ, and below Olive.
        assert row["ecco-w4"] <= row["awq-w4"] + 0.003, model
        assert row["ecco-w4"] < row["olive-w4"], model
        # W4A8KV4: Ecco beats RTN, AWQ and QoQ.
        assert row["ecco-w4a8kv4"] < row["rtn-w4a8kv4"], model
        assert row["ecco-w4a8kv4"] < row["awq-w4a8kv4"], model
        assert row["ecco-w4a8kv4"] < row["qoq-w4a8kv4"], model


def test_table1_w4a8kv4_harder_than_w4a16(benchmark, table1):
    """The aggressive configuration costs more perplexity, as in the paper."""
    data = benchmark.pedantic(lambda: table1, rounds=1, iterations=1)
    for model in MODELS:
        row = data[model]
        assert row["ecco-w4a8kv4"] >= row["ecco-w4"] - 1e-6
