#!/usr/bin/env python
"""Bench regression gate: diff bench JSON artifacts against a baseline.

CI runs the smoke benches (which write ``results/*.json``) and then this
script, which compares a curated set of metrics against the committed
snapshot in ``results/baseline/``.  A metric that regresses past the
warn threshold (default 10%) prints a warning; past the fail threshold
(default 25%) the script exits non-zero and the job fails.

Only regressions gate — improvements are reported but never fail.  A
missing *result* file is a note, not an error (the bench may simply not
have run in this job), but a missing or unreadable *baseline* file
fails the gate with a clear message: every curated bench has a
committed snapshot, so its absence means the gate silently stopped
gating.  Pass ``--allow-missing-baseline`` while landing a brand-new
bench whose snapshot does not exist yet.  Refresh the snapshot by
copying the gated files from a healthy run::

    python -m pytest benchmarks/bench_serve_throughput.py ...  # regenerate
    cp results/serve_throughput.json ... results/baseline/

Metrics are chosen deterministic-first: virtual-clock latencies, token
counts and reuse fractions are bit-stable across runs, so their
thresholds are tight.  Wall-clock throughputs (tokens/s on a shared CI
runner) carry per-metric overrides with generous margins — they gate
order-of-magnitude collapses, not scheduler jitter.

Unknown keys never gate.  Only the curated ``GATES`` entries are
compared; anything else in a report — new observability counters, a
registry snapshot, trie stats — is surfaced as an informational
``[new ]`` line and otherwise ignored, so instrumenting a bench can
never fail the baseline gate until its keys are explicitly curated
here.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metric spec: (dotted key, direction, warn_override, fail_override).
#: direction "higher" = bigger is better (a drop regresses);
#: "lower" = smaller is better (a rise regresses).  ``None`` overrides
#: fall back to the CLI thresholds.
GATES: dict[str, list[tuple[str, str, float | None, float | None]]] = {
    "serve_throughput.json": [
        # Deterministic counters: same trace, same engine, same numbers.
        ("ecco.tokens_generated", "higher", None, None),
        ("ecco.finished", "higher", None, None),
        ("ecco.pool.peak_bytes_resident", "lower", None, None),
        ("ecco.pool.budget_overruns", "lower", None, None),
        # Wall-clock: the baseline may come from a different machine
        # class than the runner, so these only gate collapses — a
        # 0.90 drop is ~10x slower, a 3.0 rise is a 4x TTFT blowup.
        ("ecco.tokens_per_s", "higher", 0.50, 0.90),
        ("ecco.ttft_s_mean", "lower", 1.00, 3.00),
    ],
    "session_reuse.json": [
        ("reuse.turns.reuse_fraction", "higher", None, None),
        ("reuse.turns.prefix_tokens_reused", "higher", None, None),
        ("reuse.turns.prompt_tokens_reencoded", "lower", None, None),
        # Virtual-clock TTFTs: deterministic, tight thresholds apply.
        ("reuse.turns.ttft_s_mean_warm", "lower", None, None),
        ("reuse.report.pool.budget_overruns", "lower", None, None),
    ],
    "prefix_trie.json": [
        ("trie.prefix_tokens_reused", "higher", None, None),
        ("trie.split_tokens_salvaged", "higher", None, None),
        ("forwarded_tokens_ratio", "higher", None, None),
        # Virtual-clock follower TTFT speedup: deterministic.
        ("ttft_follower_speedup", "higher", None, None),
        ("trie.pool.budget_overruns", "lower", None, None),
    ],
    "slo_serving.json": [
        # Virtual-clock A/B: fully deterministic, tight thresholds.
        ("ttft_p95_cut", "higher", None, None),
        ("deadline.slo_ttft_attainment", "higher", None, None),
        ("deadline.finished", "higher", None, None),
        ("deadline.pool.budget_overruns", "lower", None, None),
        # Retry storm: deterministic under its seed.
        ("storm.completed", "higher", None, None),
        ("storm.frontend.shed_rate", "lower", None, None),
    ],
    "codec_throughput_streaming.json": [
        # Wall-clock codec throughput: gate collapses only.  The
        # speedup is a same-machine ratio, so it gets a tighter band.
        ("new_decode_tokens_per_s", "higher", 0.50, 0.90),
        ("decode_path_speedup", "higher", 0.30, 0.60),
        # Decode-work counters are deterministic.
        ("tokens_block_decoded.keys", "lower", None, None),
        ("tokens_block_decoded.values", "lower", None, None),
    ],
    "kv_decode_cache.json": [
        ("decode_tokens_per_s", "higher", 0.50, 0.90),
        ("compression_ratio", "higher", None, None),
    ],
}


def _lookup(data: dict, dotted: str):
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def _regression(current: float, baseline: float, direction: str) -> float:
    """Fractional regression (positive = worse), relative to baseline."""
    if baseline == 0:
        # A zero baseline can only regress by becoming nonzero in the
        # bad direction (e.g. budget_overruns 0 -> 2 is unbounded-bad).
        bad = current > 0 if direction == "lower" else current < 0
        return float("inf") if bad else 0.0
    delta = (current - baseline) / abs(baseline)
    return -delta if direction == "higher" else delta


def _new_keys(current: dict, baseline: dict, prefix: str = "") -> list[str]:
    """Dotted keys present in ``current`` but absent from ``baseline``.

    Purely informational — new keys (added observability, extra report
    sections) are listed so a reviewer sees them, but they are never
    compared and can never gate.
    """
    out: list[str] = []
    for key, value in current.items():
        dotted = f"{prefix}{key}"
        if key not in baseline:
            out.append(dotted)
        elif isinstance(value, dict) and isinstance(baseline[key], dict):
            out.extend(_new_keys(value, baseline[key], f"{dotted}."))
    return out


def _load_report(path: Path, role: str) -> dict | None:
    """Parse one report JSON; ``None`` (with a message) if unreadable."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[FAIL] {path}: unreadable {role} file ({exc})")
        return None
    if not isinstance(doc, dict):
        print(f"[FAIL] {path}: {role} file is not a JSON object")
        return None
    return doc


def compare(
    results: Path,
    baseline: Path,
    warn: float,
    fail: float,
    allow_missing_baseline: bool = False,
) -> int:
    if not baseline.is_dir():
        print(
            f"[FAIL] baseline directory {baseline} does not exist — the "
            "regression gate has nothing to compare against.  Commit a "
            "snapshot (see the module docstring) or pass --baseline."
        )
        return 2
    failures = warnings = checked = 0
    for filename, metrics in GATES.items():
        cur_path = results / filename
        base_path = baseline / filename
        if not cur_path.exists():
            print(f"[skip] {filename}: no result file (bench not run)")
            continue
        if not base_path.exists():
            if allow_missing_baseline:
                print(f"[note] {filename}: no committed baseline yet")
                continue
            print(
                f"[FAIL] {filename}: result present but no baseline at "
                f"{base_path} — commit a snapshot from a healthy run "
                "(or pass --allow-missing-baseline for a new bench)"
            )
            failures += 1
            continue
        current_doc = _load_report(cur_path, "result")
        baseline_doc = _load_report(base_path, "baseline")
        if current_doc is None or baseline_doc is None:
            failures += 1
            continue
        fresh = _new_keys(current_doc, baseline_doc)
        if fresh:
            shown = ", ".join(fresh[:8])
            more = f" (+{len(fresh) - 8} more)" if len(fresh) > 8 else ""
            print(f"[new ] {filename}: {shown}{more} — ignored, not gated")
        for key, direction, warn_at, fail_at in metrics:
            cur = _lookup(current_doc, key)
            base = _lookup(baseline_doc, key)
            if cur is None or base is None:
                print(f"[note] {filename}:{key}: missing on one side")
                continue
            checked += 1
            reg = _regression(float(cur), float(base), direction)
            w = warn if warn_at is None else warn_at
            f = fail if fail_at is None else fail_at
            label = f"{filename}:{key} {base:g} -> {cur:g}"
            if reg >= f:
                print(f"[FAIL] {label} ({reg:+.1%} regression, limit {f:.0%})")
                failures += 1
            elif reg >= w:
                print(f"[warn] {label} ({reg:+.1%} regression)")
                warnings += 1
            elif reg <= -w:
                print(f"[ok+ ] {label} ({-reg:+.1%} improvement)")
            else:
                print(f"[ok  ] {label}")
    print(
        f"\nchecked {checked} metrics: {failures} failures, "
        f"{warnings} warnings"
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = Path(__file__).resolve().parents[1]
    parser.add_argument(
        "--results", type=Path, default=root / "results",
        help="directory holding the fresh bench JSONs",
    )
    parser.add_argument(
        "--baseline", type=Path, default=root / "results" / "baseline",
        help="directory holding the committed baseline JSONs",
    )
    parser.add_argument(
        "--warn", type=float, default=0.10,
        help="default warn threshold (fractional regression)",
    )
    parser.add_argument(
        "--fail", type=float, default=0.25,
        help="default fail threshold (fractional regression)",
    )
    parser.add_argument(
        "--allow-missing-baseline", action="store_true",
        help="downgrade a missing per-bench baseline file to a note "
        "(for landing a new bench before its snapshot is committed)",
    )
    args = parser.parse_args(argv)
    if args.warn > args.fail:
        parser.error("--warn must not exceed --fail")
    return compare(
        args.results,
        args.baseline,
        args.warn,
        args.fail,
        allow_missing_baseline=args.allow_missing_baseline,
    )


if __name__ == "__main__":
    sys.exit(main())
