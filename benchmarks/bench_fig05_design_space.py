"""Figure 5: design-space exploration over S (patterns) and H (codebooks).

Paper findings: perplexity improves with S with diminishing returns beyond
S = 64; H beyond 4 adds little; the chosen (S=64, H=4) beats the AWQ baseline.
We sweep the proxy LM's weight-only perplexity over a grid of (S, H).
"""

import pytest

from _report import load_cached, store_cached, write_report
from repro.core import EccoConfig, EccoTensorCodec, fit_tensor_meta
from repro.llm import perplexity
from repro.llm.quantize import quantize_model
from repro.quant import awq_weight

S_VALUES = [2, 8, 16, 64, 128]
H_VALUES = [1, 4, 16]


def _quantize_with(model, calib, num_patterns: int, num_codebooks: int):
    """Ecco weight-only fake quantization at a given (S, H)."""
    import numpy as np

    config = EccoConfig(num_patterns=num_patterns, num_codebooks=num_codebooks)
    weights = {}
    for name in model.weight_names:
        weight = model.params[name].data
        stats = calib.act_stats.get(name)
        act_weights = None
        if stats is not None:
            act_weights = np.broadcast_to(stats.mean_sq[None, :], weight.shape)
        meta = fit_tensor_meta(
            weight, act_weights=act_weights, config=config,
            max_calibration_groups=384,
        )
        weights[name] = EccoTensorCodec(meta).fast_roundtrip(
            weight, act_weights=act_weights
        )
    return weights


@pytest.fixture(scope="module")
def design_space(proxy_small, calib_small):
    cached = load_cached("fig05_design_space_v6")
    if cached is not None:
        return cached

    model = proxy_small.model
    held = proxy_small.generator.token_stream(4096, seed=31337)
    base = perplexity(model, held, seq_len=64, batch=16)

    awq = quantize_model(model, calib_small, weight_method="awq")
    awq_ppl = perplexity(model, held, seq_len=64, batch=16, **awq.hooks())

    grid = {}
    for s in S_VALUES:
        for h in H_VALUES:
            weights = _quantize_with(model, calib_small, s, h)
            ppl = perplexity(model, held, seq_len=64, batch=16, weights=weights)
            grid[f"S{s}-H{h}"] = ppl
    data = {"fp16": base, "awq": awq_ppl, "grid": grid}
    store_cached("fig05_design_space_v6", data)
    return data


def test_fig05_design_space(benchmark, design_space):
    """S helps with diminishing returns; H>4 marginal; (64,4) beats AWQ."""
    data = benchmark.pedantic(lambda: design_space, rounds=1, iterations=1)
    grid = data["grid"]

    lines = [f"fp16 ppl = {data['fp16']:.4f}   AWQ W4 ppl = {data['awq']:.4f}"]
    header = "S\\H " + "".join(f"{h:>10}" for h in H_VALUES)
    lines.append(header)
    for s in S_VALUES:
        row = f"{s:<4}" + "".join(f"{grid[f'S{s}-H{h}']:>10.4f}" for h in H_VALUES)
        lines.append(row)
    lines.append("paper: improves with S, saturates ~S=64; H>4 marginal; beats AWQ")
    write_report("fig05_design_space", lines, data)

    # More patterns help: S=64 is no worse than S=2 at H=4.
    assert grid["S64-H4"] <= grid["S2-H4"] + 1e-6
    # Diminishing returns: the S=2 -> 64 gain dwarfs the S=64 -> 128 change.
    gain_small_to_64 = grid["S2-H4"] - grid["S64-H4"]
    gain_64_to_128 = grid["S64-H4"] - grid["S128-H4"]
    assert gain_64_to_128 <= max(gain_small_to_64 * 0.6, 0.003)
    # The chosen configuration is competitive with AWQ (paper: beats it).
    assert grid["S64-H4"] <= data["awq"] + 0.005
    # Everything stays above the FP16 floor.
    assert all(v >= data["fp16"] - 0.02 for v in grid.values())


def test_fig05_codebooks_help_fit(benchmark, design_space):
    """H=4 should not be worse than H=1 at the chosen S."""
    data = benchmark.pedantic(lambda: design_space, rounds=1, iterations=1)
    grid = data["grid"]
    assert grid["S64-H4"] <= grid["S64-H1"] + 0.01
