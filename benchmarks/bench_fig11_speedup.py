"""Figure 11: normalized decode latency across batch, sequence length, models.

Paper shapes: (a) on LLaMA-13B/seq-2048 Ecco is 2.6-3.2x faster than
TensorRT-FP16 (avg ~2.9x) across batch 1..64, with AWQ's gap growing with
batch; (b) across sequence lengths at batch 8 the FP16 speedup peaks around
~3.1x and the gains over AWQ/Olive/SQ grow with context; (c) across models at
batch 32/seq 4096 Ecco wins >2x on most models with smaller gains on the GQA
models (Mistral-7B, LLaMA2-70B); average speedups land near 2.5/2.2/1.5/2.1x
over TRT/Olive/SQ/AWQ.
"""

import numpy as np
import pytest

from _report import write_report
from repro.llm.config import get_spec
from repro.perf import speedup_table

BASELINES = ["trt-fp16", "olive", "smoothquant", "awq"]
FIG11C_MODELS = [
    "llama-7b",
    "mistral-7b",
    "llama-13b",
    "llama-30b",
    "llama-65b",
    "llama2-70b",
]


def _format(rows: dict, key_label: str) -> list[str]:
    lines = [f"{key_label:<12}" + "".join(f"{s:>13}" for s in BASELINES)]
    for key, table in rows.items():
        lines.append(
            f"{str(key):<12}" + "".join(f"{table[s]:>13.2f}" for s in BASELINES)
        )
    return lines


def test_fig11a_batch_sweep(benchmark):
    """Normalized latency vs batch size (LLaMA-13B, seq 2048)."""
    spec = get_spec("llama-13b")

    def sweep():
        return {
            bs: speedup_table(spec, BASELINES, bs, 2048)
            for bs in [1, 2, 4, 8, 16, 32, 64]
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    geomeans = {
        s: float(np.exp(np.mean(np.log([rows[b][s] for b in rows])))) for s in BASELINES
    }
    lines = _format(rows, "batch")
    lines.append("geomean     " + "".join(f"{geomeans[s]:>13.2f}" for s in BASELINES))
    lines.append("paper: vs TRT 2.6-3.2x (avg 2.9); up to 2.9/2.4/1.8x vs AWQ/Olive/SQ")
    write_report("fig11a_batch_sweep", lines, {str(k): v for k, v in rows.items()})

    # Ecco wins everywhere; TRT speedup in the paper's band.
    assert 2.4 < geomeans["trt-fp16"] < 3.4
    for batch, table in rows.items():
        assert all(v > 1.0 for v in table.values()), batch
    # AWQ's disadvantage grows with batch size (FP16 KV + dequant overhead).
    assert rows[64]["awq"] > rows[1]["awq"]


def test_fig11b_sequence_sweep(benchmark):
    """Normalized latency vs sequence length (LLaMA-13B, batch 8)."""
    spec = get_spec("llama-13b")

    def sweep():
        return {
            seq: speedup_table(spec, BASELINES, 8, seq)
            for seq in [128, 256, 512, 1024, 2048, 4096]
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = _format(rows, "seq")
    lines.append("paper: gains over AWQ/Olive/SQ grow with sequence length")
    write_report("fig11b_seq_sweep", lines, {str(k): v for k, v in rows.items()})

    # Gains over the FP16-KV frameworks grow with context length.
    assert rows[4096]["awq"] > rows[128]["awq"]
    assert rows[4096]["olive"] > rows[128]["olive"]
    # SQ (8-bit KV) grows much less.
    sq_growth = rows[4096]["smoothquant"] / rows[128]["smoothquant"]
    awq_growth = rows[4096]["awq"] / rows[128]["awq"]
    assert sq_growth < awq_growth


def test_fig11c_model_sweep(benchmark):
    """Normalized latency across models (batch 32, seq 4096)."""

    def sweep():
        return {
            m: speedup_table(get_spec(m), BASELINES, 32, 4096) for m in FIG11C_MODELS
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    avgs = {s: float(np.mean([rows[m][s] for m in rows])) for s in BASELINES}
    lines = _format(rows, "model")
    lines.append("average     " + "".join(f"{avgs[s]:>13.2f}" for s in BASELINES))
    lines.append("paper averages: TRT 2.5 / Olive 2.2 / SQ 1.5 / AWQ 2.1")
    write_report("fig11c_model_sweep", lines, rows)

    # >2x on every model (paper: "more than 2x speedup on most models").
    for model in FIG11C_MODELS:
        assert rows[model]["trt-fp16"] > 2.0, model
    # GQA reduces the gain at matched architecture (Mistral vs LLaMA-7B).
    # (LLaMA2-70B mixes GQA with a much larger FFN, which pulls its ratio
    # back up in this model; the clean comparison is the 7B pair.)
    assert rows["mistral-7b"]["trt-fp16"] < rows["llama-7b"]["trt-fp16"]
    # Who-wins ordering of the averages matches the paper:
    # TRT slowest, then Olive, then AWQ, then SQ closest to Ecco.
    assert avgs["trt-fp16"] > avgs["olive"] > avgs["awq"] > avgs["smoothquant"] > 1.0
