"""Divergent-prefix serving: token-level trie vs whole-page chain walk.

The workload the page-granular prefix cache cannot touch: groups of
prompts that share most — but not all — of their first page (here 28 of
a 32-token page, the scaled-down version of the paper's 120-of-128
scenario).  The chain walk hashes whole pages, so every member re-encodes
everything; the trie matches token-level, splits the cached page at the
divergence point (a bit-exact block slice, no re-encode) and every
follower attaches the shared 28-token head.

Group members arrive in waves (the engine drains between waves) so each
group's leader page is demoted into the prefix cache before the
followers look it up.  Both engines charge a synchronous StepCostModel
on a virtual clock, so follower TTFTs are deterministic and contain
their own prefill cost: the trie's followers forward 12 tokens where the
chain walk forwards 40.

Acceptance (ISSUE 6): trie-on reports ``prefix_tokens_reused > 0`` where
the chain walk reports 0, cuts re-encoded (forwarded) prompt tokens at
least 2x, and every follower's decoded KV is bit-exact against a
reuse-aware reference built from the recorded raw K/V of whichever
request actually encoded each span.

Writes ``results/prefix_trie.json``.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KVCacheStream
from repro.serve import ServingEngine, StepCostModel, VirtualClock

BYTE_BUDGET = 2_000_000
PAGE_TOKENS = 32
SHARED_TOKENS = 28   # shared head: diverges *inside* the first page
PROMPT_TOKENS = 40
MAX_NEW = 6
GROUPS = 4
MEMBERS = 5          # per group: 1 leader + 4 followers
SEED = 99


def _prompts(spec):
    rng = np.random.default_rng(SEED)
    groups = []
    for _ in range(GROUPS):
        shared = rng.integers(0, spec.vocab_size, size=SHARED_TOKENS)
        members = []
        for m in range(MEMBERS):
            # Pin the first post-divergence token to the member index so
            # members provably diverge at exactly SHARED_TOKENS — the
            # bit-exactness audit relies on every attach stopping there.
            suffix = rng.integers(
                0, spec.vocab_size, size=PROMPT_TOKENS - SHARED_TOKENS
            )
            suffix[0] = m
            members.append(np.concatenate([shared, suffix]))
        groups.append(members)
    return groups


def _run(model, calib, groups, prefix_trie, record):
    clock = VirtualClock()
    engine = ServingEngine(
        model,
        calib,
        storage="ecco",
        byte_budget=BYTE_BUDGET,
        page_tokens=PAGE_TOKENS,
        max_batch_size=GROUPS,
        prefix_reuse=True,
        prefix_trie=prefix_trie,
        step_cost=StepCostModel(),
        record_reference=record,
        clock=clock,
    )
    requests = [[] for _ in groups]
    # Waves: one member per group per wave, draining in between, so a
    # wave's pages are demoted into the prefix cache before the next
    # wave's lookups (a pinned page cannot be split).
    for wave in range(MEMBERS):
        for g, prompts in enumerate(groups):
            requests[g].append(engine.submit(prompts[wave], MAX_NEW))
        while engine.has_work:
            engine.step()
    return engine, requests, clock


@pytest.fixture(scope="module")
def trie_runs(proxy_small, calib_small):
    groups = _prompts(proxy_small.spec)
    trie = _run(proxy_small.model, calib_small, groups, True, record=True)
    walk = _run(proxy_small.model, calib_small, groups, False, record=False)
    return {"groups": groups, "trie": trie, "walk": walk}


def _followers(requests):
    return [r for group in requests for r in group[1:]]


def _every_follower_warm(followers):
    return all(
        r.metrics.cached_tokens == SHARED_TOKENS for r in followers
    )


def _ttft_mean(requests):
    return float(np.mean([r.metrics.ttft_s for r in requests]))


def test_trie_reuses_where_chain_walk_cannot(trie_runs):
    """Acceptance: reuse > 0 vs 0, and ≥ 2x fewer re-encoded tokens."""
    trie_engine, trie_requests, trie_clock = trie_runs["trie"]
    walk_engine, walk_requests, walk_clock = trie_runs["walk"]
    trie_report = trie_engine.report(trie_clock())
    walk_report = walk_engine.report(walk_clock())
    assert trie_report["pool"]["budget_overruns"] == 0
    assert walk_report["pool"]["budget_overruns"] == 0
    assert trie_engine.pool.unreachable_cached_pages() == []
    assert trie_engine.pool.leaf_index_violations() == []

    # The headline: the chain walk shares nothing on this workload.
    assert walk_report["prefix_tokens_reused"] == 0
    followers = _followers(trie_requests)
    assert trie_report["prefix_tokens_reused"] >= SHARED_TOKENS * len(
        followers
    )
    # One split per group (wave 2); later waves full-match the head.
    assert trie_report["pool"]["pages_split"] == GROUPS
    assert trie_report["prefix_partial_attaches"] == GROUPS
    assert _every_follower_warm(followers)

    # ≥ 2x fewer prompt tokens through the model.
    ratio = (
        walk_report["prefill_forwarded_tokens"]
        / trie_report["prefill_forwarded_tokens"]
    )
    assert ratio >= 2.0

    # Deterministic TTFT: followers prefill 12 tokens instead of 40.
    ttft_trie = _ttft_mean(followers)
    ttft_walk = _ttft_mean(_followers(walk_requests))
    assert ttft_trie < ttft_walk

    data = {
        "workload": {
            "groups": GROUPS,
            "members": MEMBERS,
            "prompt_tokens": PROMPT_TOKENS,
            "shared_tokens": SHARED_TOKENS,
            "page_tokens": PAGE_TOKENS,
            "byte_budget": BYTE_BUDGET,
            "seed": SEED,
        },
        "trie": {
            "prefix_tokens_reused": trie_report["prefix_tokens_reused"],
            "split_tokens_salvaged": trie_report["split_tokens_salvaged"],
            "prefix_partial_attaches": trie_report[
                "prefix_partial_attaches"
            ],
            "prefill_forwarded_tokens": trie_report[
                "prefill_forwarded_tokens"
            ],
            "ttft_s_mean_follower": ttft_trie,
            "pool": trie_report["pool"],
        },
        "walk": {
            "prefix_tokens_reused": walk_report["prefix_tokens_reused"],
            "prefill_forwarded_tokens": walk_report[
                "prefill_forwarded_tokens"
            ],
            "ttft_s_mean_follower": ttft_walk,
        },
        "forwarded_tokens_ratio": ratio,
        "ttft_follower_speedup": ttft_walk / ttft_trie,
    }
    write_report(
        "prefix_trie",
        [
            f"workload: {GROUPS} groups x {MEMBERS} members, "
            f"{SHARED_TOKENS}/{PAGE_TOKENS} tokens shared inside page 1",
            f"prefix tokens reused:  trie "
            f"{trie_report['prefix_tokens_reused']}  chain-walk "
            f"{walk_report['prefix_tokens_reused']}",
            f"pages split:           {trie_report['pool']['pages_split']} "
            f"({trie_report['split_tokens_salvaged']} tokens salvaged)",
            f"forwarded tokens:      trie "
            f"{trie_report['prefill_forwarded_tokens']}  chain-walk "
            f"{walk_report['prefill_forwarded_tokens']}  ({ratio:.2f}x cut)",
            f"follower TTFT:         trie {ttft_trie * 1e3:.2f} ms  "
            f"chain-walk {ttft_walk * 1e3:.2f} ms "
            f"({ttft_walk / ttft_trie:.2f}x)",
            f"lookup outcomes:       "
            f"{trie_report['pool']['prefix_full_hits']} full, "
            f"{trie_report['pool']['prefix_partial_hits']} partial, "
            f"{trie_report['pool']['prefix_misses']} miss",
            f"matched-length hist:   "
            f"{trie_report['pool']['matched_prefix_hist']}",
            "budget overruns:       0 (hard invariant)",
        ],
        data,
    )


def test_follower_kv_bit_exact_vs_reuse_aware_reference(trie_runs):
    """Acceptance: each follower's decoded KV equals a single-stream
    reference fed the raw K/V of whichever request encoded each span —
    the group leader for the shared head, the follower itself for its
    forwarded suffix and decode tokens."""
    engine, requests, _clock = trie_runs["trie"]
    for group in requests:
        leader = group[0]
        for follower in group[1:]:
            attached = follower.metrics.cached_tokens
            assert attached == SHARED_TOKENS
            for layer, (key_codec, value_codec) in enumerate(
                engine.backend.codecs
            ):
                reference = KVCacheStream(
                    key_codec=key_codec, value_codec=value_codec
                )
                leader_raw = leader.kv.raw_prompt[layer]
                reference.append_tokens(
                    leader_raw["keys"][:attached],
                    leader_raw["values"][:attached],
                )
                own_raw = follower.kv.raw_prompt[layer]
                reference.append_tokens(own_raw["keys"], own_raw["values"])
                for k_row, v_row in zip(
                    follower.kv.raw_decode[layer]["keys"],
                    follower.kv.raw_decode[layer]["values"],
                ):
                    reference.append(k_row, v_row)
                assert np.array_equal(
                    reference.read_keys(), follower.kv.read(layer, "keys")
                )
                assert np.array_equal(
                    reference.read_values(),
                    follower.kv.read(layer, "values"),
                )
