"""Software codec micro-benchmarks (pytest-benchmark timing rounds).

These time the Python reference implementations themselves — the bit-exact
block codec, the vectorized fast path, and the 2x activation codec — so
regressions in the library's own performance are visible.
"""

import numpy as np
import pytest

from repro.core import (
    ActivationCodec,
    EccoTensorCodec,
    fit_tensor_meta,
    simulate_roundtrip,
)


@pytest.fixture(scope="module")
def weight_setup():
    rng = np.random.default_rng(11)
    tensor = (rng.standard_t(df=5, size=(64, 512)) * 0.02).astype(np.float32)
    meta = fit_tensor_meta(tensor, max_calibration_groups=256)
    return meta, tensor


def test_calibration_speed(benchmark):
    """fit_tensor_meta on a 64x512 tensor."""
    rng = np.random.default_rng(12)
    tensor = (rng.standard_t(df=5, size=(64, 512)) * 0.02).astype(np.float32)
    meta = benchmark.pedantic(
        lambda: fit_tensor_meta(tensor, max_calibration_groups=256),
        rounds=2,
        iterations=1,
    )
    assert meta.patterns.shape == (64, 15)


def test_bit_exact_encode(benchmark, weight_setup):
    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    compressed = benchmark(lambda: codec.encode(tensor))
    assert compressed.num_groups == tensor.size // 128


def test_bit_exact_decode(benchmark, weight_setup):
    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    compressed = codec.encode(tensor)
    decoded = benchmark(lambda: codec.decode(compressed))
    assert decoded.shape == tensor.shape


def test_fast_path_roundtrip(benchmark, weight_setup):
    meta, tensor = weight_setup
    sim = benchmark(lambda: simulate_roundtrip(meta, tensor))
    assert sim.values.shape == tensor.shape


def test_activation_codec_roundtrip(benchmark):
    rng = np.random.default_rng(13)
    act = rng.standard_normal((256, 512)).astype(np.float32)
    codec = ActivationCodec()
    decoded = benchmark(lambda: codec.roundtrip(act))
    assert decoded.shape == act.shape


def test_fast_path_much_faster_than_bit_path(weight_setup):
    """The vectorized path must stay an order of magnitude faster."""
    import time

    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    start = time.perf_counter()
    codec.roundtrip(tensor)
    bit_path = time.perf_counter() - start
    start = time.perf_counter()
    simulate_roundtrip(meta, tensor)
    fast_path = time.perf_counter() - start
    assert fast_path * 3 < bit_path
