"""Software codec micro-benchmarks (pytest-benchmark timing rounds).

These time the Python reference implementations themselves — the bit-exact
block codec, the vectorized fast path, the 2x activation codec, and the
streaming KV decode loop — so regressions in the library's own performance
are visible.  ``test_streaming_decode_pipeline_speedup`` also writes a
``results/codec_throughput_streaming.json`` report comparing the batched,
decode-cached pipeline against the legacy one-block-at-a-time,
re-decode-everything loop it replaced.
"""

import numpy as np
import pytest

from _report import write_report
from repro.obs.timing import WallTimer
from repro.core import (
    ActivationCodec,
    EccoTensorCodec,
    KVCacheCodec,
    KVCacheStream,
    calibrate_kv_meta,
    fit_tensor_meta,
    simulate_roundtrip,
)
from repro.core.blocks import decode_tables, pack_block, unpack_block
from repro.core.codec import EncodingPlan, plan_encoding, reconstruct


@pytest.fixture(scope="module")
def weight_setup():
    rng = np.random.default_rng(11)
    tensor = (rng.standard_t(df=5, size=(64, 512)) * 0.02).astype(np.float32)
    meta = fit_tensor_meta(tensor, max_calibration_groups=256)
    return meta, tensor


def test_calibration_speed(benchmark):
    """fit_tensor_meta on a 64x512 tensor."""
    rng = np.random.default_rng(12)
    tensor = (rng.standard_t(df=5, size=(64, 512)) * 0.02).astype(np.float32)
    meta = benchmark.pedantic(
        lambda: fit_tensor_meta(tensor, max_calibration_groups=256),
        rounds=2,
        iterations=1,
    )
    assert meta.patterns.shape == (64, 15)


def test_bit_exact_encode(benchmark, weight_setup):
    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    compressed = benchmark(lambda: codec.encode(tensor))
    assert compressed.num_groups == tensor.size // 128


def test_bit_exact_decode(benchmark, weight_setup):
    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    compressed = codec.encode(tensor)
    decoded = benchmark(lambda: codec.decode(compressed))
    assert decoded.shape == tensor.shape


def test_fast_path_roundtrip(benchmark, weight_setup):
    meta, tensor = weight_setup
    sim = benchmark(lambda: simulate_roundtrip(meta, tensor))
    assert sim.values.shape == tensor.shape


def test_activation_codec_roundtrip(benchmark):
    rng = np.random.default_rng(13)
    act = rng.standard_normal((256, 512)).astype(np.float32)
    codec = ActivationCodec()
    decoded = benchmark(lambda: codec.roundtrip(act))
    assert decoded.shape == act.shape


def test_bit_path_close_to_fast_path(weight_setup):
    """The vectorized bit path must stay within a small factor of the
    pack-free fast path (it shares the planning pass and only adds the
    word-level pack/unpack) — a large gap means the block serialization
    regressed back toward per-bit Python loops."""
    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    codec.roundtrip(tensor)  # warm the cached decode tables

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            timer = WallTimer()
            with timer:
                fn()
            times.append(timer.elapsed_s)
        return min(times)

    bit_path = best_of(lambda: codec.roundtrip(tensor))
    fast_path = best_of(lambda: simulate_roundtrip(meta, tensor))
    assert fast_path < bit_path * 1.2  # packing is never free...
    assert bit_path < fast_path * 10  # ...but must stay the same order


# ----------------------------------------------------------------------
# Streaming KV decode loop: batched + decode-cached pipeline vs. the
# legacy loop (per-group Python packing, full re-decode on every read,
# decode tables rebuilt per call) it replaced.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def kv_setup():
    rng = np.random.default_rng(21)
    scales = np.exp(rng.normal(0.0, 1.2, size=128))
    calibration = rng.standard_normal((512, 128)) * scales * 0.3
    meta = calibrate_kv_meta(calibration, seed=0)
    tokens = (rng.standard_normal((96, 128)) * scales * 0.3).astype(np.float32)
    return meta, tokens


def _legacy_encode_token(meta, vector):
    """One token through per-group Python packing (the pre-pipeline path)."""
    plan = plan_encoding(meta, np.asarray(vector, dtype=np.float32).ravel())
    blocks = np.zeros((plan.num_groups, meta.config.block_bytes), dtype=np.uint8)
    for g in range(plan.num_groups):
        out_pos = np.flatnonzero(plan.corrections[g])
        data = pack_block(
            meta.config,
            plan.scales[g],
            int(plan.scale_pos[g]),
            int(plan.pattern_ids[g]),
            int(plan.codebook_ids[g]),
            plan.symbols[g],
            meta.codebook_lengths[plan.codebook_ids[g]],
            meta.codebook_codes[plan.codebook_ids[g]],
            out_pos,
            plan.corrections[g, out_pos],
        )
        blocks[g] = np.frombuffer(data, dtype=np.uint8)
    return blocks, plan.shape


def _legacy_decode(meta, blocks, shape):
    """One segment through the pre-pipeline decode: tables rebuilt per
    call, one bit-by-bit unpack per group."""
    config = meta.config
    G = blocks.shape[0]
    scales = np.zeros(G, dtype=np.float32)
    scale_pos = np.zeros(G, dtype=np.int64)
    pattern_ids = np.zeros(G, dtype=np.int64)
    codebook_ids = np.zeros(G, dtype=np.int64)
    symbols = np.zeros((G, config.group_size), dtype=np.int64)
    corrections = np.zeros((G, config.group_size), dtype=np.int64)
    tables = decode_tables(meta.codebook_lengths)
    for g in range(G):
        (scale, pos, pid, cid, syms, out_pos, out_q) = unpack_block(
            config, blocks[g].tobytes(), meta.codebook_lengths, tables=tables
        )
        scales[g] = scale
        scale_pos[g] = pos
        pattern_ids[g] = pid
        codebook_ids[g] = cid
        symbols[g] = syms
        corrections[g, out_pos] = out_q
    plan = EncodingPlan(
        shape=shape, pad=0, scales=scales, scale_pos=scale_pos,
        pattern_ids=pattern_ids, codebook_ids=codebook_ids, symbols=symbols,
        corrections=corrections,
        clipped_symbols=np.zeros(G, dtype=np.int64),
        padded_outliers=np.zeros(G, dtype=np.int64),
    )
    return reconstruct(meta, plan)


def test_streaming_decode_pipeline_speedup(kv_setup):
    """The decode-cached pipeline must beat the legacy loop >= 5x on the
    decode path, and every token must be block-decoded exactly once."""
    meta, tokens = kv_setup
    steps = tokens.shape[0]

    # Legacy loop: append one token, then re-decode *every* historical
    # token's blocks for both K and V reads (O(T^2) block decodes).
    k_segs, v_segs = [], []
    legacy_append = WallTimer()
    legacy_read = WallTimer()
    for step in range(steps):
        with legacy_append:
            k_segs.append(_legacy_encode_token(meta, tokens[step]))
            v_segs.append(_legacy_encode_token(meta, tokens[step]))
        with legacy_read:
            np.concatenate(
                [_legacy_decode(meta, b, s).ravel() for b, s in k_segs]
            )
            np.concatenate(
                [_legacy_decode(meta, b, s).ravel() for b, s in v_segs]
            )

    # New pipeline: batched encode plans, cached decode tables, and the
    # decoded-segment cache (each read decodes only the new token).
    codec = KVCacheCodec(meta)
    stream = KVCacheStream(key_codec=codec, value_codec=codec)
    new_append = WallTimer()
    new_read = WallTimer()
    for step in range(steps):
        with new_append:
            stream.append(tokens[step], tokens[step])
        with new_read:
            stream.read_keys()
            stream.read_values()

    legacy_append_s = legacy_append.elapsed_s
    legacy_read_s = legacy_read.elapsed_s
    new_append_s = new_append.elapsed_s
    new_read_s = new_read.elapsed_s
    legacy_read_tps = steps / legacy_read_s
    new_read_tps = steps / new_read_s
    legacy_loop_tps = steps / (legacy_append_s + legacy_read_s)
    new_loop_tps = steps / (new_append_s + new_read_s)
    data = {
        "decode_steps": steps,
        "legacy_decode_tokens_per_s": legacy_read_tps,
        "new_decode_tokens_per_s": new_read_tps,
        "decode_path_speedup": new_read_tps / legacy_read_tps,
        "legacy_loop_tokens_per_s": legacy_loop_tps,
        "new_loop_tokens_per_s": new_loop_tps,
        "loop_speedup": new_loop_tps / legacy_loop_tps,
        "tokens_block_decoded": dict(stream.decoded_tokens),
    }
    write_report(
        "codec_throughput_streaming",
        [
            f"decode steps:            {steps}",
            f"legacy decode path:      {legacy_read_tps:10.1f} tokens/s",
            f"pipelined decode path:   {new_read_tps:10.1f} tokens/s "
            f"({data['decode_path_speedup']:.1f}x)",
            f"legacy full loop:        {legacy_loop_tps:10.1f} tokens/s",
            f"pipelined full loop:     {new_loop_tps:10.1f} tokens/s "
            f"({data['loop_speedup']:.1f}x)",
            f"tokens block-decoded:    {stream.decoded_tokens['keys']} keys / "
            f"{stream.decoded_tokens['values']} values (of {steps} appended)",
        ],
        data,
    )
    # Every appended token decoded exactly once despite `steps` full reads.
    assert stream.decoded_tokens == {"keys": steps, "values": steps}
    assert data["decode_path_speedup"] >= 5.0
