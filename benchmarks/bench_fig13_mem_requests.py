"""Figure 13: normalized memory requests for a decode GEMM in LLaMA-13B.

Paper values (M=16, K=5120, N=13824): Ecco moves 3.56x less traffic than
FP16, 1.98x less than SmoothQuant and 1.28x less than AWQ (whose scales and
zero points travel in separate, irregular streams).
"""

import pytest

from _report import write_report
from repro.memsys import gemm_traffic

M, K, N = 16, 5120, 13824


def test_fig13_memory_requests(benchmark):
    """Regenerate the normalized sector counts for the five frameworks."""

    def compute():
        return {
            "fp16": gemm_traffic(M, K, N, 16),
            "olive": gemm_traffic(M, K, N, 8, act_bits=8, out_bits=8),
            "sq": gemm_traffic(M, K, N, 8, act_bits=8, out_bits=8),
            "awq": gemm_traffic(M, K, N, 4, separate_metadata_bits=32),
            "ours": gemm_traffic(M, K, N, 4, act_bits=8, out_bits=8),
        }

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    fp16 = table["fp16"].total_sectors

    lines = [f"{'framework':<8} {'sectors':>12} {'normalized':>11}"]
    data = {}
    for name, traffic in table.items():
        lines.append(
            f"{name:<8} {traffic.total_sectors:>12.0f} {traffic.total_sectors / fp16:>11.3f}"
        )
        data[name] = traffic.total_sectors / fp16
    ours = table["ours"].total_sectors
    lines.append(
        f"reductions vs ours: fp16 {fp16 / ours:.2f}x (paper 3.56), "
        f"sq {table['sq'].total_sectors / ours:.2f}x (paper 1.98), "
        f"awq {table['awq'].total_sectors / ours:.2f}x (paper 1.28)"
    )
    write_report("fig13_mem_requests", lines, data)

    assert fp16 / ours == pytest.approx(3.56, rel=0.15)
    assert table["sq"].total_sectors / ours == pytest.approx(1.98, rel=0.10)
    assert table["awq"].total_sectors / ours == pytest.approx(1.28, rel=0.15)
    # Ordering: ours < awq < sq = olive < fp16.
    assert ours < table["awq"].total_sectors < table["sq"].total_sectors < fp16


def test_fig13_weight_traffic_dominates(benchmark):
    """At M=16 the weight matrix is >95% of FP16 traffic (decode regime)."""
    traffic = benchmark.pedantic(
        lambda: gemm_traffic(M, K, N, 16), rounds=1, iterations=1
    )
    assert traffic.weight_sectors / traffic.total_sectors > 0.95
