"""Figure 12: GPU memory consumption on LLaMA-7B (batch 32, seq 2K).

Paper values: 3.98x less memory than FP16, 1.99x less than SmoothQuant,
1.06x less than QuaRot; the FP16 KV cache alone is 34.4 GB of the 47.3 GB
total.  The bench regenerates the per-framework weights/KV breakdown.
"""

import pytest

from _report import write_report
from repro.llm.config import get_spec
from repro.perf import memory_footprint

FRAMEWORKS = ["trt-fp16", "olive", "smoothquant", "awq", "quarot", "ecco"]


def test_fig12_memory(benchmark):
    """Regenerate the memory-footprint bars and the headline ratios."""
    spec = get_spec("llama-7b")

    def compute():
        return {name: memory_footprint(spec, name, 32, 2048) for name in FRAMEWORKS}

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'framework':<12} {'total GB':>9} {'weights':>9} {'kv cache':>9}"]
    data = {}
    for name in FRAMEWORKS:
        fp = table[name]
        lines.append(
            f"{name:<12} {fp.total_gb:>9.2f} {fp.weights_bytes / 1e9:>9.2f} "
            f"{fp.kv_bytes / 1e9:>9.2f}"
        )
        data[name] = {"total_gb": fp.total_gb}
    ecco = table["ecco"].total_bytes
    lines.append(
        f"ratios vs ecco: fp16 {table['trt-fp16'].total_bytes / ecco:.2f}x "
        f"(paper 3.98), sq {table['smoothquant'].total_bytes / ecco:.2f}x (paper 1.99), "
        f"quarot {table['quarot'].total_bytes / ecco:.2f}x (paper 1.06)"
    )
    write_report("fig12_memory", lines, data)

    assert table["trt-fp16"].total_bytes / ecco == pytest.approx(3.98, rel=0.03)
    assert table["smoothquant"].total_bytes / ecco == pytest.approx(1.99, rel=0.05)
    assert table["quarot"].total_bytes / ecco == pytest.approx(1.06, rel=0.06)
    # The paper's FP16 anchor: ~34.4 GB of KV cache.
    assert table["trt-fp16"].kv_bytes / 1e9 == pytest.approx(34.4, rel=0.02)


def test_fig12_multi_gpu_scaling(benchmark):
    """Independent per-tensor metadata -> footprint scales linearly (§5.3)."""
    spec = get_spec("llama-7b")

    def compute():
        one = memory_footprint(spec, "ecco", 32, 2048).total_bytes
        four = 4 * memory_footprint(spec, "ecco", 32, 2048).total_bytes
        return one, four

    one, four = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert four == pytest.approx(4 * one)
