"""SLO-aware serving through the async front-end: deadline vs FCFS.

The same bursty trace, annotated with a per-request TTFT objective, is
replayed through the event-driven front-end against two identically
provisioned engines that differ only in scheduling policy: FCFS (serve
everything in arrival order, however late) and deadline (EDF admission,
shed requests whose SLO is already blown).  Under burst overload FCFS
drags every queued request past its deadline; the deadline policy
sacrifices the already-lost head of the queue so the survivors' tail
TTFT stays inside the objective — that trade (served-tail latency and
attainment vs explicit shed count) is the headline table.  A third run
sends the same overload through impatient open-loop clients with
timeouts and seeded exponential-backoff retries against a depth-limited
front door: the retry storm must converge with a bounded shed rate and
zero budget overruns.  Scheduling must never change bytes — the
deadline run's decoded KV is audited bit-exact against a single-stream
reference through the async path.

Writes ``results/slo_serving.json``.
"""

import numpy as np
import pytest

from _report import write_report
from repro.core import KVCacheStream
from repro.obs import TraceRecorder, write_chrome_trace
from repro.serve import (
    SLO,
    AsyncServingEngine,
    RequestState,
    RetryPolicy,
    ServingEngine,
    StepCostModel,
    VirtualClock,
    WorkloadConfig,
    generate_trace,
    replay_open_loop,
    replay_trace,
)

BYTE_BUDGET = 150_000
PAGE_TOKENS = 8
MAX_BATCH = 4
TRACE_SEED = 23
TTFT_SLO_S = 0.2
#: Slowed compute lane: the proxy models are small enough that the
#: default roofline never queues long enough to threaten a deadline.
STEP_COST = StepCostModel(compute_s_per_token=1e-2)


def _slo_trace(spec):
    trace = generate_trace(
        WorkloadConfig(
            duration_s=10.0,
            rate_rps=6.0,
            arrivals="bursty",
            vocab_size=spec.vocab_size,
            page_tokens=PAGE_TOKENS,
            max_tokens=24,
        ),
        seed=TRACE_SEED,
    )
    slo = SLO(ttft_s=TTFT_SLO_S)
    for item in trace:
        item.slo = slo
    return trace


def _engine(model, calib, clock, policy, record=False, recorder=None):
    return ServingEngine(
        model,
        calib,
        storage="ecco",
        byte_budget=BYTE_BUDGET,
        page_tokens=PAGE_TOKENS,
        max_batch_size=MAX_BATCH,
        policy=policy,
        # The raw-KV audit needs cold prefills (a warm attach records no
        # raw prompt rows for the reused span); reuse has its own bench.
        prefix_reuse=False,
        record_reference=record,
        clock=clock,
        recorder=recorder,
    )


@pytest.fixture(scope="module")
def slo_runs(proxy_small, calib_small, trace_out):
    model = proxy_small.model
    trace = _slo_trace(proxy_small.spec)
    runs = {"trace": trace}

    for policy in ("fcfs", "deadline"):
        clock = VirtualClock()
        # --trace-out records the deadline run (the headline policy);
        # tracing is read-only over the clock, so the A/B is unchanged.
        recorder = (
            TraceRecorder(clock)
            if policy == "deadline" and trace_out is not None
            else None
        )
        engine = _engine(
            model, calib_small, clock, policy,
            record=policy == "deadline", recorder=recorder,
        )
        totals = replay_trace(engine, trace, clock, step_cost=STEP_COST)
        if recorder is not None:
            write_chrome_trace(recorder, trace_out("slo_serving"))
        runs[policy] = {
            "engine": engine,
            "totals": totals,
            "report": engine.report(clock()),
        }

    # Retry storm: a shorter near-saturation burst through impatient
    # open-loop clients against a depth-limited front door.  (The A/B
    # trace above is deliberately far past capacity — FCFS must drown —
    # so a storm over it could only collapse; the storm models the
    # regime where backing off actually wins.)
    storm_trace = generate_trace(
        WorkloadConfig(
            duration_s=6.0,
            rate_rps=8.0,
            arrivals="bursty",
            vocab_size=proxy_small.spec.vocab_size,
            page_tokens=PAGE_TOKENS,
            max_tokens=24,
        ),
        seed=TRACE_SEED,
    )
    clock = VirtualClock()
    engine = _engine(model, calib_small, clock, "fcfs")
    frontend = AsyncServingEngine(
        engine, step_cost=STEP_COST, max_queue_depth=2, max_pending=2
    )
    storm = replay_open_loop(
        frontend,
        storm_trace,
        clock,
        retry=RetryPolicy(
            max_attempts=4, timeout_s=0.8, base_backoff_s=0.2, jitter=0.5
        ),
        seed=29,
    )
    runs["storm"] = {
        "engine": engine,
        "result": storm,
        "report": engine.report(clock()),
    }
    return runs


def test_deadline_policy_beats_fcfs_on_tail_ttft(slo_runs):
    """Acceptance: under burst overload the deadline policy cuts served
    p95 TTFT and raises SLO attainment vs FCFS, shedding explicitly."""
    trace = slo_runs["trace"]
    fcfs = slo_runs["fcfs"]["report"]
    deadline = slo_runs["deadline"]["report"]
    storm = slo_runs["storm"]["result"]

    assert fcfs["shed_requests"] == 0
    assert deadline["shed_requests"] > 0
    assert (
        deadline["finished"] + deadline["shed_requests"]
        == slo_runs["deadline"]["totals"]["submitted"]
    )
    assert deadline["ttft_s_p95"] < 0.8 * fcfs["ttft_s_p95"]
    assert deadline["slo_ttft_attainment"] > fcfs["slo_ttft_attainment"]

    data = {
        "trace": {
            "requests": len(trace),
            "seed": TRACE_SEED,
            "arrivals": "bursty",
            "ttft_slo_s": TTFT_SLO_S,
            "byte_budget": BYTE_BUDGET,
            "compute_s_per_token": STEP_COST.compute_s_per_token,
        },
        "fcfs": fcfs,
        "deadline": deadline,
        "storm": storm,
        "ttft_p95_cut": 1.0 - deadline["ttft_s_p95"] / fcfs["ttft_s_p95"],
    }
    write_report(
        "slo_serving",
        [
            f"trace: {len(trace)} bursty requests, TTFT SLO "
            f"{TTFT_SLO_S * 1e3:.0f}ms, budget {BYTE_BUDGET / 1024:.0f} KiB",
            f"TTFT p95: fcfs {fcfs['ttft_s_p95']:.3f}s  deadline "
            f"{deadline['ttft_s_p95']:.3f}s "
            f"({data['ttft_p95_cut']:.0%} cut)",
            f"TTFT attainment: fcfs {fcfs['slo_ttft_attainment']:.2f}  "
            f"deadline {deadline['slo_ttft_attainment']:.2f} "
            f"(shed {deadline['shed_requests']}/{len(trace)})",
            f"retry storm: {storm['completed']}/{storm['trace_requests']} "
            f"completed, {storm['retries']} retries, "
            f"{storm['timeouts']} timeouts, shed rate "
            f"{storm['frontend']['shed_rate']:.2f}",
            f"budget overruns: fcfs "
            f"{fcfs['pool']['budget_overruns']}, deadline "
            f"{deadline['pool']['budget_overruns']}, storm "
            f"{slo_runs['storm']['report']['pool']['budget_overruns']}",
        ],
        data,
    )


def test_retry_storm_converges_without_overruns(slo_runs):
    """Acceptance: every retrying client terminates, shedding stays
    bounded, and the byte budget holds through the whole storm."""
    storm = slo_runs["storm"]["result"]
    assert (
        storm["completed"] + storm["gave_up"] == storm["trace_requests"]
    )
    assert storm["completed"] > 0
    assert storm["retries"] > 0
    assert storm["frontend"]["shed_rate"] < 0.5
    for run in ("fcfs", "deadline", "storm"):
        pool = slo_runs[run]["report"]["pool"]
        assert pool["budget_overruns"] == 0
        assert pool["peak_bytes_resident"] <= pool["byte_budget"]


def test_async_decoded_kv_bit_exact_vs_single_stream(slo_runs):
    """Acceptance: SLO scheduling and the async front-end reorder
    *requests*, never bytes — every served request's decoded KV equals
    a fresh single-stream run over its recorded raw K/V."""
    engine = slo_runs["deadline"]["engine"]
    served = [
        r for r in engine.requests if r.state is RequestState.FINISHED
    ]
    assert served
    for request in served:
        kv = request.kv
        for layer, (key_codec, value_codec) in enumerate(
            engine.backend.codecs
        ):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            reference.append_tokens(
                kv.raw_prompt[layer]["keys"], kv.raw_prompt[layer]["values"]
            )
            for k_row, v_row in zip(
                kv.raw_decode[layer]["keys"], kv.raw_decode[layer]["values"]
            ):
                reference.append(k_row, v_row)
            assert np.array_equal(reference.read_keys(), kv.read(layer, "keys"))
            assert np.array_equal(
                reference.read_values(), kv.read(layer, "values")
            )
