"""Table 3: area and power of the Ecco codec units on the A100.

Paper values (7nm-scaled, 20 instances each): decompressor 4x 3.19 mm^2 /
4.82 W, decompressor 2x 0.57 / 0.83, compressor 4x 0.91 / 1.15, compressor 2x
0.44 / 0.56; total <1% of the 826 mm^2 die and <10% of 82 W idle power.
"""

import pytest

from _report import write_report
from repro.hardware import EccoCostModel

PAPER = {
    "Decompressor 4x": (3.19, 4.82),
    "Decompressor 2x": (0.57, 0.83),
    "Compressor 4x": (0.91, 1.15),
    "Compressor 2x": (0.44, 0.56),
}


def test_table3_area_power(benchmark):
    """Regenerate Table 3 from the gate-inventory model."""
    model = EccoCostModel()
    components = benchmark.pedantic(model.components, rounds=1, iterations=1)

    lines = [
        f"{'component':<18} {'area mm2':>9} {'paper':>7} {'ratio':>8} {'power W':>8} {'paper':>7}"
    ]
    data = {}
    for component in components:
        paper_area, paper_power = PAPER[component.name]
        lines.append(
            f"{component.name:<18} {component.area_mm2:>9.2f} {paper_area:>7.2f} "
            f"{component.area_ratio() * 100:>7.2f}% {component.power_w:>8.2f} {paper_power:>7.2f}"
        )
        data[component.name] = {
            "area_mm2": component.area_mm2,
            "power_w": component.power_w,
        }
    lines.append(
        f"total: {model.total_area_mm2:.2f} mm2 "
        f"({model.area_fraction_of_a100() * 100:.2f}% of die), "
        f"{model.total_power_w:.2f} W ({model.power_fraction_of_idle() * 100:.1f}% of idle)"
    )
    write_report("table3_area_power", lines, data)

    for component in components:
        paper_area, paper_power = PAPER[component.name]
        assert component.area_mm2 == pytest.approx(paper_area, rel=0.45), component.name
        assert component.power_w == pytest.approx(paper_power, rel=0.45), component.name
    assert model.area_fraction_of_a100() < 0.01
    assert model.power_fraction_of_idle() < 0.10


def test_table3_decompressor_dominates(benchmark):
    """The 4x decompressor (speculative decode + merge) is the largest unit."""
    model = EccoCostModel()
    components = benchmark.pedantic(model.components, rounds=1, iterations=1)
    by_name = {c.name: c.area_mm2 for c in components}
    assert by_name["Decompressor 4x"] == max(by_name.values())
