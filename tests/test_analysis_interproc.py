"""Tier-0 tests for the interprocedural analysis engine.

Covers the CFG builder, the call graph and its summaries, the three
flow-sensitive rule families (LIF, AWA, SEE) with a true positive *and*
a near-miss negative each, the seeded-fault meta-tests (surgically
breaking a known-good fixture must re-light the intended rule), and the
CLI satellites (cache, SARIF export, stale-baseline gating, pruning).
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Severity, analyze_source
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.cfg import (
    ENTRY,
    EXIT,
    RAISE_EXIT,
    build_cfg,
)
from repro.analysis.project import build_project
from repro.analysis.runner import parse_module

REPO_ROOT = Path(__file__).resolve().parents[1]

SRC = "src/repro/core/_fixture.py"
SERVE = "src/repro/serve/_fixture.py"


def rules_of(findings):
    return sorted(f.rule for f in findings)


def check(source: str, relpath: str = SRC):
    return analyze_source(textwrap.dedent(source), relpath)


def _cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


def _project_of(source: str, relpath: str = SRC):
    module = parse_module(textwrap.dedent(source), relpath)
    assert not hasattr(module, "fingerprint"), "fixture failed to parse"
    return build_project([module])


# ----------------------------------------------------------------------
# CFG construction.
# ----------------------------------------------------------------------
class TestCFG:
    def test_straight_line_reaches_exit(self):
        cfg = _cfg_of(
            """
            def f(x):
                a = x + 1
                return a
            """
        )
        kinds = {(e.src, e.dst, e.kind) for n in cfg.nodes for e in n.succs}
        # return statement routes straight to EXIT.
        assert any(dst == EXIT and kind == "return" for _, dst, kind in kinds)

    def test_if_has_true_and_false_edges(self):
        cfg = _cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        kinds = {e.kind for n in cfg.nodes for e in n.succs}
        assert {"true", "false"} <= kinds

    def test_while_has_back_edge(self):
        cfg = _cfg_of(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        kinds = {e.kind for n in cfg.nodes for e in n.succs}
        assert "back" in kinds

    def test_bare_raise_routes_to_raise_exit(self):
        cfg = _cfg_of(
            """
            def f():
                raise ValueError("boom")
            """
        )
        assert any(
            e.dst == RAISE_EXIT and e.kind == "raise"
            for n in cfg.nodes
            for e in n.succs
        )

    def test_caught_raise_routes_to_handler_not_raise_exit(self):
        cfg = _cfg_of(
            """
            def f():
                try:
                    raise ValueError("boom")
                except ValueError:
                    return 0
            """
        )
        raise_edges = [
            e
            for n in cfg.nodes
            for e in n.succs
            if isinstance(n.stmt, ast.Raise)
        ]
        assert raise_edges and all(e.dst != RAISE_EXIT for e in raise_edges)

    def test_finally_intercepts_early_return(self):
        cfg = _cfg_of(
            """
            def f(fh):
                try:
                    return 1
                finally:
                    fh.close()
            """
        )
        # The return must NOT bypass the finally body: some edge of kind
        # "finally" exists, and EXIT is still reachable.
        kinds = {e.kind for n in cfg.nodes for e in n.succs}
        assert "finally" in kinds
        assert any(e.dst == EXIT for n in cfg.nodes for e in n.succs)

    def test_entry_is_connected(self):
        cfg = _cfg_of("def f():\n    pass\n")
        assert cfg.nodes[ENTRY].succs


# ----------------------------------------------------------------------
# Call graph + summaries (exercised through the project index).
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_raises_summary_is_transitive(self):
        project = _project_of(
            """
            class BudgetExceededError(ValueError):
                pass

            def inner():
                raise BudgetExceededError("x")

            def middle():
                inner()

            def outer():
                middle()
            """
        )
        graph = project.callgraph
        outer = next(
            f for f in project.iter_functions() if f.name == "outer"
        )
        assert "BudgetExceededError" in graph.raises_summary(
            outer, frozenset({"BudgetExceededError"})
        )

    def test_locally_caught_raise_does_not_escape(self):
        project = _project_of(
            """
            class BudgetExceededError(ValueError):
                pass

            def inner():
                raise BudgetExceededError("x")

            def safe():
                try:
                    inner()
                except ValueError:
                    return None
            """
        )
        graph = project.callgraph
        safe = next(f for f in project.iter_functions() if f.name == "safe")
        assert not graph.raises_summary(
            safe, frozenset({"BudgetExceededError"})
        )

    def test_closes_params_sees_transitive_release(self):
        project = _project_of(
            """
            class Engine:
                def _dispose(self, handle):
                    handle.release()

                def _finish(self, kv):
                    self._dispose(kv)
            """
        )
        graph = project.callgraph
        finish = next(
            f for f in project.iter_functions() if f.name == "_finish"
        )
        assert "kv" in graph.closes_params(finish, frozenset({"release"}))


# ----------------------------------------------------------------------
# LIF — resource lifecycle state machines.
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_leak_via_escaping_exception_is_flagged(self):
        # The PR-5 shape: BudgetExceededError raised between acquire and
        # release, with no try/finally.
        findings = check(
            """
            class BudgetExceededError(ValueError):
                pass

            class Engine:
                def check(self, n):
                    if n > 4:
                        raise BudgetExceededError("over budget")

                def run(self, backend, prompt):
                    kv = backend.create_request(prompt)
                    self.check(len(prompt))
                    kv.release()
            """
        )
        assert rules_of(findings) == ["LIF001"]
        assert "exception" in findings[0].message

    def test_try_finally_guard_passes(self):
        findings = check(
            """
            class BudgetExceededError(ValueError):
                pass

            class Engine:
                def check(self, n):
                    if n > 4:
                        raise BudgetExceededError("over budget")

                def run(self, backend, prompt):
                    kv = backend.create_request(prompt)
                    try:
                        self.check(len(prompt))
                    finally:
                        kv.release()
            """
        )
        assert findings == []

    def test_early_return_leak_is_flagged(self):
        findings = check(
            """
            class Engine:
                def run(self, backend, prompt):
                    kv = backend.create_request(prompt)
                    if not prompt:
                        return None
                    kv.release()
                    return kv
            """
        )
        assert rules_of(findings) == ["LIF001"]

    def test_handoff_to_releasing_method_passes(self):
        findings = check(
            """
            class Engine:
                def _finish(self, kv):
                    kv.release()

                def run(self, backend, prompt):
                    kv = backend.create_request(prompt)
                    self._finish(kv)
            """
        )
        assert findings == []

    def test_escape_via_attribute_store_passes(self):
        # Storing the resource on another object transfers ownership —
        # exactly what the live engine does with request.kv.
        findings = check(
            """
            class Engine:
                def admit(self, backend, request):
                    request.kv = backend.create_request(request.prompt)
            """
        )
        assert findings == []

    def test_abandoned_chunk_on_exception_is_flagged(self):
        findings = check(
            """
            class BudgetExceededError(ValueError):
                pass

            class Engine:
                def grow(self, n):
                    raise BudgetExceededError("no")

                def work(self, request, start, end):
                    request.kv.begin_chunk(start, end)
                    self.grow(end - start)
                    request.kv.commit_chunk()
            """
        )
        assert rules_of(findings) == ["LIF002"]

    def test_chunk_committed_in_handler_passes(self):
        findings = check(
            """
            class BudgetExceededError(ValueError):
                pass

            class Engine:
                def grow(self, n):
                    raise BudgetExceededError("no")

                def work(self, request, start, end):
                    request.kv.begin_chunk(start, end)
                    try:
                        self.grow(end - start)
                    except ValueError:
                        request.kv.commit_chunk()
                        return
                    request.kv.commit_chunk()
            """
        )
        assert findings == []

    def test_chunk_spread_across_steps_is_legal(self):
        # Normal exit with an open chunk is the engine's actual design
        # (one chunk cycle spans several step() calls) — only an
        # escaping exception abandons it.
        findings = check(
            """
            class Engine:
                def start(self, request, start, end):
                    request.kv.begin_chunk(start, end)
                    return request

                def step(self, request):
                    request.kv.commit_chunk()
            """
        )
        assert findings == []

    def test_unpaired_opener_is_flagged_project_wide(self):
        findings = check(
            """
            class Pool:
                def demote(self, request):
                    self.pool.swap_private_out(request)
            """
        )
        assert rules_of(findings) == ["LIF003"]
        assert "swap_private_out" in findings[0].message

    def test_paired_opener_anywhere_in_project_passes(self):
        findings = check(
            """
            class Pool:
                def demote(self, request):
                    self.pool.swap_private_out(request)

                def promote(self, request):
                    self.pool.swap_private_in(request)
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# AWA — async atomicity.
# ----------------------------------------------------------------------
class TestAtomicity:
    def test_stale_write_across_await_is_flagged(self):
        findings = check(
            """
            class Frontend:
                async def pump(self):
                    depth = self.queue_depth
                    await self.drain_one()
                    self.queue_depth = depth - 1
            """,
            SERVE,
        )
        assert rules_of(findings) == ["AWA001"]
        assert "queue_depth" in findings[0].message

    def test_reread_after_await_passes(self):
        findings = check(
            """
            class Frontend:
                async def pump(self):
                    depth = self.queue_depth
                    await self.drain_one()
                    depth = self.queue_depth
                    self.queue_depth = depth - 1
            """,
            SERVE,
        )
        assert findings == []

    def test_write_before_any_await_passes(self):
        findings = check(
            """
            class Frontend:
                async def pump(self):
                    depth = self.queue_depth
                    self.queue_depth = depth - 1
                    await self.drain_one()
            """,
            SERVE,
        )
        assert findings == []

    def test_taint_survives_derived_locals(self):
        findings = check(
            """
            class Frontend:
                async def pump(self):
                    depth = self.queue_depth
                    await self.drain_one()
                    adjusted = depth - 1
                    self.queue_depth = adjusted
            """,
            SERVE,
        )
        assert rules_of(findings) == ["AWA001"]

    def test_augassign_with_await_rhs_is_flagged(self):
        findings = check(
            """
            class Frontend:
                async def pump(self):
                    self.tokens += await self.step()
            """,
            SERVE,
        )
        assert rules_of(findings) == ["AWA002"]

    def test_await_into_local_then_apply_passes(self):
        findings = check(
            """
            class Frontend:
                async def pump(self):
                    produced = await self.step()
                    self.tokens += produced
            """,
            SERVE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# SEE — determinism taint (seeds reach RNG constructions).
# ----------------------------------------------------------------------
class TestSeeds:
    def test_unseeded_rng_on_serving_path_is_error_with_chain(self):
        findings = check(
            """
            import numpy as np

            def jitter(scale):
                rng = np.random.default_rng()
                return rng.normal() * scale

            def submit_trace(trace):
                return [jitter(t) for t in trace]
            """,
            SERVE,
        )
        assert rules_of(findings) == ["SEE001"]
        assert findings[0].severity is Severity.ERROR
        # The call chain from the entry point is printed in the message.
        assert "jitter" in findings[0].message

    def test_seed_threaded_from_parameter_passes(self):
        findings = check(
            """
            import numpy as np

            def jitter(scale, seed):
                rng = np.random.default_rng(seed)
                return rng.normal() * scale

            def submit_trace(trace):
                return [jitter(t, i) for i, t in enumerate(trace)]
            """,
            SERVE,
        )
        assert findings == []

    def test_default_rng_none_is_still_unseeded(self):
        findings = check(
            """
            import numpy as np

            def submit(trace):
                rng = np.random.default_rng(None)
                return rng.normal()
            """,
            SERVE,
        )
        assert rules_of(findings) == ["SEE001"]

    def test_unseeded_rng_off_serving_path_is_warning(self):
        findings = check(
            """
            import numpy as np

            def helper():
                return np.random.default_rng().normal()
            """
        )
        assert rules_of(findings) == ["SEE002"]
        assert findings[0].severity is Severity.WARNING

    def test_import_time_rng_in_serve_module_is_error(self):
        findings = check(
            """
            import numpy as np

            _RNG = np.random.default_rng()
            """,
            SERVE,
        )
        assert rules_of(findings) == ["SEE001"]
        assert "import time" in findings[0].message

    def test_tests_and_benchmarks_are_out_of_scope(self):
        findings = check(
            """
            import numpy as np

            def helper():
                return np.random.default_rng().normal()
            """,
            "tests/_fixture.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Seeded-fault meta-tests: break a known-good fixture, assert the
# intended rule re-lights.  This is the analyzer's own smoke alarm —
# "clean" only counts as evidence if a planted fault trips it.
# ----------------------------------------------------------------------
ENGINE_FIXTURE = """
class BudgetExceededError(ValueError):
    pass


class MiniEngine:
    def _admit(self, n):
        if n > 64:
            raise BudgetExceededError("over budget")

    def _finish(self, kv):
        kv.release()

    def submit(self, backend, prompt):
        kv = backend.create_request(prompt)
        try:
            self._admit(len(prompt))
        except BudgetExceededError:
            self._finish(kv)
            raise
        self._finish(kv)
"""


class TestSeededFaults:
    def test_engine_fixture_is_clean(self):
        assert check(ENGINE_FIXTURE) == []

    def test_deleting_release_in_finish_trips_lif001(self):
        # The ISSUE's canonical fault: _finish no longer releases, so
        # the hand-off in submit() stops discharging the obligation.
        broken = ENGINE_FIXTURE.replace("kv.release()", "pass")
        findings = check(broken)
        assert "LIF001" in rules_of(findings)

    def test_deleting_the_handler_handoff_trips_lif001(self):
        # Swallow the budget error without finishing: the exception
        # edge now reaches RAISE_EXIT with the resource open.
        broken = ENGINE_FIXTURE.replace(
            "            self._finish(kv)\n            raise\n",
            "            raise\n",
        )
        findings = check(broken)
        assert "LIF001" in rules_of(findings)

    def test_seeding_an_rng_fault_trips_see001(self):
        clean = """
        import numpy as np

        def sample(seed):
            return np.random.default_rng(seed).normal()

        def submit(trace, seed):
            return [sample(seed + i) for i, t in enumerate(trace)]
        """
        assert check(clean, SERVE) == []
        broken = textwrap.dedent(clean).replace(
            "default_rng(seed)", "default_rng()"
        )
        findings = check(broken, SERVE)
        assert rules_of(findings) == ["SEE001"]


# ----------------------------------------------------------------------
# CLI satellites: cache, SARIF, stale gating, pruning, changed-only.
# ----------------------------------------------------------------------
class TestCLI:
    def _tree(self, tmp_path: Path) -> Path:
        fixture = tmp_path / "src" / "repro" / "core" / "x.py"
        fixture.parent.mkdir(parents=True)
        fixture.write_text("import time\nnow = time.time()\n")
        return tmp_path

    def test_cache_written_and_results_stable(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        rc_cold = analysis_main(["src", "--root", str(root), "--format", "json"])
        cold = json.loads(capsys.readouterr().out)
        assert (root / ".cache" / "analysis" / "results.json").exists()
        rc_warm = analysis_main(["src", "--root", str(root), "--format", "json"])
        warm = json.loads(capsys.readouterr().out)
        assert (rc_cold, cold) == (rc_warm, warm)

    def test_cache_invalidated_by_edit(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        analysis_main(["src", "--root", str(root)])
        capsys.readouterr()
        (root / "src" / "repro" / "core" / "x.py").write_text("x = 1\n")
        rc = analysis_main(["src", "--root", str(root)])
        assert rc == 0  # the finding is gone, cache must not resurrect it

    def test_no_cache_leaves_no_cache_dir(self, tmp_path):
        root = self._tree(tmp_path)
        analysis_main(["src", "--root", str(root), "--no-cache"])
        assert not (root / ".cache").exists()

    def test_stale_baseline_entry_gates_exit_one(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert analysis_main(["src", "--root", str(root), "--write-baseline"]) == 0
        capsys.readouterr()
        assert analysis_main(["src", "--root", str(root)]) == 0
        capsys.readouterr()
        # Fix the finding: the baseline entry is now stale debt.
        (root / "src" / "repro" / "core" / "x.py").write_text("x = 1\n")
        rc = analysis_main(["src", "--root", str(root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale baseline entry" in out

    def test_prune_baseline_removes_stale_and_greens_the_run(
        self, tmp_path, capsys
    ):
        root = self._tree(tmp_path)
        analysis_main(["src", "--root", str(root), "--write-baseline"])
        (root / "src" / "repro" / "core" / "x.py").write_text("x = 1\n")
        capsys.readouterr()
        rc = analysis_main(["src", "--root", str(root), "--prune-baseline"])
        assert rc == 0
        assert "pruned 1 stale" in capsys.readouterr().out
        doc = json.loads((root / "analysis-baseline.json").read_text())
        assert doc["entries"] == []
        assert analysis_main(["src", "--root", str(root)]) == 0

    def test_sarif_output_is_valid_2_1_0(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        out_file = root / "analysis.sarif"
        rc = analysis_main(
            [
                "src",
                "--root", str(root),
                "--format", "sarif",
                "--output", str(out_file),
            ]
        )
        assert rc == 1
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"DET001", "LIF001", "AWA001", "SEE001"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/core/x.py"
        assert loc["region"]["startLine"] == 2
        assert "reproAnalysis/v1" in result["partialFingerprints"]
        # stdout carries the same document.
        assert json.loads(capsys.readouterr().out) == doc

    def test_changed_only_without_git_falls_back_to_full(
        self, tmp_path, capsys
    ):
        root = self._tree(tmp_path)  # tmp_path is not a git repo
        rc = analysis_main(["src", "--root", str(root), "--changed-only"])
        out = capsys.readouterr().out
        assert rc == 1  # the DET001 finding still gates
        assert "could not resolve" in out

    def test_changed_only_refuses_baseline_writes(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        for flag in ("--write-baseline", "--prune-baseline"):
            rc = analysis_main(
                ["src", "--root", str(root), "--changed-only", flag]
            )
            assert rc == 2
            assert "partial tree" in capsys.readouterr().err

    def test_list_rules_includes_project_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("LIF001", "LIF002", "LIF003", "AWA001", "AWA002",
                        "SEE001", "SEE002"):
            assert rule_id in out


# ----------------------------------------------------------------------
# Live-tree meta-tests for the new families.
# ----------------------------------------------------------------------
class TestMetaInterproc:
    def test_new_families_are_registered(self):
        from repro.analysis import iter_project_rules

        ids = {rule.rule_id for rule in iter_project_rules()}
        for family in ("LIF", "AWA", "SEE"):
            assert any(i.startswith(family) for i in ids), family

    def test_live_tree_clean_under_new_families(self):
        """LIF/AWA/SEE over the real serve stack: every finding fixed,
        suppressed with a reason, or grandfathered in the baseline."""
        from repro.analysis import (
            analyze_paths,
            apply_baseline,
            load_baseline,
        )

        findings = analyze_paths(["src", "tests", "benchmarks"], REPO_ROOT)
        interproc = [
            f
            for f in findings
            if f.rule[:3] in ("LIF", "AWA", "SEE")
        ]
        entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
        fresh, _ = apply_baseline(interproc, entries)
        assert not fresh, "new interprocedural findings:\n" + "\n".join(
            f.format() for f in fresh
        )
