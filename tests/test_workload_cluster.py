"""Tier-0 tests for chunked prefill, trace workloads and the cluster.

Chunked prefill is held to bit-exactness at two levels: the storage
path (page-aligned partial commits must produce byte-identical pages,
streams and pool accounting vs one whole-prompt commit, on both
backends) and the engine (a chunked run generates the same tokens and
stores the same KV as an unchunked run, and its decoded KV matches a
single-stream reference).  The workload layer is held to
reproducibility and its advertised sharing structure; the cluster to
prefix-affinity routing and faithful metric aggregation.
"""

import numpy as np
import pytest

from repro.core import KVCacheStream
from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.serve import (
    ClusterRouter,
    PagedKVPool,
    RequestState,
    ServingEngine,
    StepCostModel,
    TraceRequest,
    VirtualClock,
    WorkloadConfig,
    bursty_arrivals,
    diurnal_arrivals,
    generate_trace,
    poisson_arrivals,
    replay_trace,
)
from repro.serve.storage import EccoKVBackend, Fp16KVBackend


@pytest.fixture(scope="module")
def parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


# ----------------------------------------------------------------------
# Chunked prefill: storage-level bit-exactness on both backends.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend_cls", [EccoKVBackend, Fp16KVBackend])
def test_partial_commits_match_whole_prompt_byte_for_byte(
    parts, backend_cls
):
    """Feeding identical raw K/V through page-aligned chunks must leave
    the request (and the pool) in exactly the state one whole-prompt
    commit does: same reads, same bytes, same page payloads."""
    spec, model, calib = parts
    num_layers, d = 2, 64
    T, P = 29, 8
    rng = np.random.default_rng(9)
    prompt = rng.integers(0, 50, size=T)
    raw = {
        layer: (
            rng.standard_normal((T, d)).astype(np.float32),
            rng.standard_normal((T, d)).astype(np.float32),
        )
        for layer in range(num_layers)
    }

    def fresh():
        backend = backend_cls(num_layers, d, calib)
        pool = PagedKVPool(byte_budget=10**7, page_tokens=P)
        return backend.create_request(pool, prompt), pool

    whole, pool_whole = fresh()
    hook = whole.prefill_hook()
    for layer in range(num_layers):
        hook(f"layers.{layer}.k_cache", raw[layer][0])
        hook(f"layers.{layer}.v_cache", raw[layer][1])
    whole.commit_prompt()

    chunked, pool_chunked = fresh()
    chunked.begin_ingest()
    for start, end in ((0, 8), (8, 24), (24, T)):
        chunked.begin_chunk(start, end)
        for layer in range(num_layers):
            chunked.ingest_chunk(
                layer, raw[layer][0][start:end], raw[layer][1][start:end]
            )
        chunked.commit_chunk()

    assert chunked.num_tokens == whole.num_tokens == T
    for layer in range(num_layers):
        for side in ("keys", "values"):
            assert np.array_equal(
                whole.read(layer, side), chunked.read(layer, side)
            )
    # Page payloads are byte-identical, page for page.
    assert len(whole.pages) == len(chunked.pages) == T // P
    for pw, pc in zip(whole.pages, chunked.pages):
        assert pw.chain == pc.chain
        assert pw.nbytes == pc.nbytes
        for layer in range(num_layers):
            for w_seg, c_seg in zip(pw.payload[layer], pc.payload[layer]):
                if backend_cls is EccoKVBackend:
                    assert np.array_equal(w_seg.blocks, c_seg.blocks)
                else:
                    assert np.array_equal(w_seg, c_seg)
    # And the pool accounting agrees to the byte.
    for attr in ("bytes_resident", "private_bytes", "fp16_bytes_resident"):
        assert getattr(pool_whole, attr) == getattr(pool_chunked, attr)
    assert whole.logical_nbytes == chunked.logical_nbytes


def test_chunk_bounds_are_validated(parts):
    spec, model, calib = parts
    backend = Fp16KVBackend(1, 32)
    pool = PagedKVPool(byte_budget=10**6, page_tokens=8)
    kv = backend.create_request(pool, np.arange(20))
    kv.begin_ingest()
    with pytest.raises(ValueError, match="chunk starts at 4"):
        kv.begin_chunk(4, 12)
    with pytest.raises(ValueError, match="neither page-aligned"):
        kv.begin_chunk(0, 12)
    kv.begin_chunk(0, 8)
    with pytest.raises(RuntimeError, match="no open chunk"):
        backend.create_request(pool, np.arange(20)).ingest_chunk(
            0, np.zeros((8, 32)), np.zeros((8, 32))
        )


# ----------------------------------------------------------------------
# Chunked prefill: engine-level equivalence + single-stream reference.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("storage", ["ecco", "fp16"])
def test_chunked_engine_matches_unchunked_and_reference(parts, storage):
    spec, model, calib = parts
    rng = np.random.default_rng(7)
    prompts = [
        rng.integers(0, spec.vocab_size, size=n) for n in (29, 12, 40, 19)
    ]
    runs = {}
    for chunk in (None, 8):
        engine = ServingEngine(
            model,
            calib if storage == "ecco" else None,
            storage=storage,
            byte_budget=80_000,
            page_tokens=8,
            max_batch_size=8,
            watermark=0.1,
            prefill_chunk_tokens=chunk,
            step_token_budget=24 if chunk else None,
            record_reference=True,
        )
        requests = [engine.submit(p, max_new_tokens=6) for p in prompts]
        report = engine.run()
        assert report["finished"] == len(prompts)
        assert report["pool"]["budget_overruns"] == 0
        runs[chunk] = (engine, requests, report)
    # Chunked == unchunked: same generated tokens, same stored KV.  The
    # ecco codec's coarse bins absorb the float32 summation-order drift
    # between batched and chunk-incremental model math, so its stored
    # blocks match bit for bit; raw fp16 sits on a much finer rounding
    # grid where single-ULP flips are possible, so it is held to fp16
    # resolution instead (the *storage* path is proven byte-identical
    # on both backends in the partial-commit test above).
    for a, b in zip(runs[None][1], runs[8][1]):
        assert a.generated == b.generated
        for layer in range(spec.num_layers):
            for side in ("keys", "values"):
                got = a.kv.read(layer, side)
                want = b.kv.read(layer, side)
                if storage == "ecco":
                    assert np.array_equal(got, want)
                else:
                    assert np.allclose(got, want, atol=1e-2, rtol=1e-2)
    assert runs[8][2]["prefill_chunks"] > len(prompts)  # really chunked
    if storage != "ecco":
        return
    # Acceptance: the chunked run's decoded KV is bit-exact against a
    # single-stream reference fed the same raw (pre-quantization) K/V.
    engine, requests, _ = runs[8]
    for request in requests:
        kv = request.kv
        for layer, (key_codec, value_codec) in enumerate(
            engine.backend.codecs
        ):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            reference.append_tokens(
                kv.raw_prompt[layer]["keys"], kv.raw_prompt[layer]["values"]
            )
            for k_row, v_row in zip(
                kv.raw_decode[layer]["keys"], kv.raw_decode[layer]["values"]
            ):
                reference.append(k_row, v_row)
            assert np.array_equal(reference.read_keys(), kv.read(layer, "keys"))
            assert np.array_equal(
                reference.read_values(), kv.read(layer, "values")
            )


def test_prefilling_state_is_observable(parts):
    """A long prompt with a small chunk size passes through PREFILLING
    across several steps before its first token exists."""
    spec, model, calib = parts
    engine = ServingEngine(
        model,
        calib,
        byte_budget=80_000,
        page_tokens=8,
        prefill_chunk_tokens=8,
        step_token_budget=8,
    )
    rng = np.random.default_rng(1)
    request = engine.submit(
        rng.integers(0, spec.vocab_size, size=40), max_new_tokens=2
    )
    engine.step()
    assert request.state == RequestState.PREFILLING
    assert 0 < request.prefill_pos < request.prompt_len
    assert request.metrics.first_token_s is None
    while engine.scheduler.has_work:
        engine.step()
    assert request.state == RequestState.FINISHED
    assert request.metrics.prefill_chunks == 5


# ----------------------------------------------------------------------
# Workloads: reproducibility and sharing structure.
# ----------------------------------------------------------------------

def test_traces_are_reproducible_and_mixed():
    cfg = WorkloadConfig(duration_s=40.0, rate_rps=1.5, arrivals="bursty")
    a = generate_trace(cfg, seed=4)
    b = generate_trace(cfg, seed=4)
    assert len(a) == len(b) > 10
    for x, y in zip(a, b):
        assert x.arrival_s == y.arrival_s
        assert x.max_new_tokens == y.max_new_tokens
        assert np.array_equal(x.prompt, y.prompt)
    c = generate_trace(cfg, seed=5)
    assert any(
        not np.array_equal(x.prompt, y.prompt) for x, y in zip(a, c)
    )
    scenarios = {t.scenario for t in a}
    assert scenarios == {"chat", "rag", "agent"}
    assert all(0.0 <= t.arrival_s < cfg.duration_s for t in a)
    assert all(t.arrival_s <= u.arrival_s for t, u in zip(a, a[1:]))


def test_arrival_processes_stay_in_window():
    rng = np.random.default_rng(2)
    for times in (
        poisson_arrivals(2.0, 50.0, rng),
        bursty_arrivals(0.5, 6.0, 50.0, rng),
        diurnal_arrivals(2.0, 50.0, rng),
    ):
        assert times.size > 10
        assert np.all((0 <= times) & (times < 50.0))
        assert np.all(np.diff(times) >= 0)


def test_rag_and_agent_scenarios_share_page_aligned_prefixes():
    cfg = WorkloadConfig(
        duration_s=60.0,
        rate_rps=1.5,
        mix={"rag": 0.6, "agent": 0.4},
        rag_corpora=2,
        rag_system_pages=3,
        page_tokens=8,
    )
    trace = generate_trace(cfg, seed=8)
    rags = [t for t in trace if t.scenario == "rag"]
    assert len(rags) > 4
    system_len = cfg.rag_system_pages * cfg.page_tokens
    prefixes = {tuple(t.prompt[:system_len]) for t in rags}
    # Long identical preambles: at most rag_corpora distinct ones.
    assert 1 <= len(prefixes) <= cfg.rag_corpora
    agents = [t for t in trace if t.scenario == "agent"]
    by_len = sorted(agents, key=lambda t: len(t.prompt))
    # Some agent resubmission extends an earlier context verbatim.
    grown = any(
        len(long.prompt) > len(short.prompt)
        and np.array_equal(long.prompt[: len(short.prompt)], short.prompt)
        for short in by_len
        for long in by_len
    )
    assert grown


# ----------------------------------------------------------------------
# Replay + cost model + cluster.
# ----------------------------------------------------------------------

def test_step_cost_model_is_a_two_lane_roofline():
    cost = StepCostModel(
        base_s=1e-3, compute_s_per_token=1e-3, bw_s_per_byte=1e-6
    )
    compute_bound = {
        "prefill_tokens": 90, "decode_tokens": 10, "kv_read_bytes": 1_000.0
    }
    bw_bound = {
        "prefill_tokens": 0, "decode_tokens": 4, "kv_read_bytes": 50_000.0
    }
    assert cost(compute_bound) == pytest.approx(1e-3 + 0.1)
    assert cost(bw_bound) == pytest.approx(1e-3 + 0.05)
    # A cluster's replicas run concurrently: the list costs the max.
    assert cost([compute_bound, bw_bound]) == pytest.approx(1e-3 + 0.1)
    # Zero work costs zero time — charging is idempotent over empty
    # steps (a polling driver cannot smear phantom seconds in).
    assert cost([]) == 0.0
    idle = {"prefill_tokens": 0, "decode_tokens": 0, "kv_read_bytes": 0.0}
    assert cost(idle) == 0.0
    assert cost([idle, idle]) == 0.0
    assert cost.prefill_s(0) == 0.0
    assert cost.decode_s(0, 0.0) == 0.0


def test_replay_measures_ttft_from_trace_arrival_and_counts_rejects(parts):
    spec, model, calib = parts
    clock = VirtualClock()
    engine = ServingEngine(
        model,
        calib,
        byte_budget=60_000,
        page_tokens=8,
        prefill_chunk_tokens=8,
        clock=clock,
    )
    cfg = WorkloadConfig(
        duration_s=8.0, rate_rps=1.5, vocab_size=spec.vocab_size,
        max_tokens=24,
    )
    trace = generate_trace(cfg, seed=12)
    # One request the pool can never hold: replay counts it as rejected.
    trace.append(
        TraceRequest(
            arrival_s=1.0,
            prompt=np.arange(400) % spec.vocab_size,
            max_new_tokens=50,
        )
    )
    replay = replay_trace(engine, trace, clock)
    assert replay["rejected"] == 1
    assert replay["submitted"] == len(trace) - 1
    report = engine.report(clock())
    assert report["finished"] == replay["submitted"]
    arrivals = {
        round(t.arrival_s, 9) for t in trace[:-1]
    }
    for request in engine.requests:
        # TTFT anchors on the trace arrival, not the submit step.
        assert round(request.metrics.arrival_s, 9) in arrivals
        assert request.metrics.ttft_s >= 0.0


def test_cluster_ids_are_unique_and_rejections_leave_no_trace(parts):
    """Request IDs are cluster-scoped (auto IDs never collide across
    replicas, caller duplicates are rejected even when routing would
    split them), and a rejected submission mutates neither the routing
    stats nor the affinity/ID state."""
    spec, model, calib = parts
    engines = [
        ServingEngine(model, calib, byte_budget=30_000, page_tokens=8)
        for _ in range(2)
    ]
    cluster = ClusterRouter(engines)
    rng = np.random.default_rng(3)
    requests = [
        cluster.submit(
            rng.integers(0, spec.vocab_size, size=16), max_new_tokens=2
        )
        for _ in range(6)
    ]
    ids = [r.request_id for r in requests]
    assert len(set(ids)) == 6                       # no cross-replica clash
    assert {r.replica for r in requests} == {0, 1}  # both replicas used
    with pytest.raises(ValueError, match="duplicate request_id"):
        cluster.submit(
            rng.integers(0, spec.vocab_size, size=16),
            max_new_tokens=2,
            request_id=ids[0],
        )
    stats_before = {
        "routed": list(cluster.stats["routed"]),
        "affinity_hits": cluster.stats["affinity_hits"],
        "next": cluster._next_request,
    }
    shared = requests[0].prompt  # a prefix the affinity map knows
    with pytest.raises(ValueError, match="pool budget"):
        cluster.submit(shared, max_new_tokens=10_000)
    assert list(cluster.stats["routed"]) == stats_before["routed"]
    assert cluster.stats["affinity_hits"] == stats_before["affinity_hits"]
    assert cluster._next_request == stats_before["next"]
    accepted = cluster.submit(shared, max_new_tokens=2)
    assert accepted.request_id == "req-6"  # the rejection burned nothing


def test_cluster_routes_by_prefix_affinity_and_aggregates(parts):
    spec, model, calib = parts
    clock = VirtualClock()
    engines = [
        ServingEngine(
            model,
            calib,
            byte_budget=60_000,
            page_tokens=8,
            prefill_chunk_tokens=8,
            step_token_budget=24,
            clock=clock,
        )
        for _ in range(2)
    ]
    cluster = ClusterRouter(engines, affinity_pages=1)
    cfg = WorkloadConfig(
        duration_s=15.0,
        rate_rps=2.0,
        arrivals="bursty",
        vocab_size=spec.vocab_size,
        mix={"chat": 0.5, "rag": 0.3, "agent": 0.2},
        rag_system_pages=4,
        max_tokens=24,
    )
    trace = generate_trace(cfg, seed=21)
    replay = replay_trace(cluster, trace, clock)
    report = cluster.report(clock())
    assert report["replicas"] == 2
    assert report["finished"] == replay["submitted"] == len(trace)
    assert sum(report["routing"]["routed"]) == len(trace)
    assert min(report["routing"]["routed"]) > 0  # both replicas used
    # Repeated shared prefixes stick to their replica.
    assert report["routing"]["affinity_hits"] > 0
    assert report["budget_overruns"] == 0
    # Aggregation is the literal sum of the replica reports.
    for key in ("finished", "decode_steps", "preemptions", "prefill_chunks"):
        assert report[key] == sum(r[key] for r in report["per_replica"])
    ttfts = [
        r.metrics.ttft_s
        for e in engines
        for r in e.requests
        if r.metrics.ttft_s is not None
    ]
    assert report["ttft_s_max"] == pytest.approx(max(ttfts))
