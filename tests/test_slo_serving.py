"""Tier-0 tests for the event-driven serving core.

Covers the async streaming front-end (token streams, virtual-time
determinism, bit-exactness vs the synchronous engine), SLO-aware
admission (the deadline policy must beat FCFS on tail TTFT under a
bursty trace by shedding already-late work), per-tenant rate limits and
weighted fairness, client retry/timeout modeling (a retry storm must
converge with a bounded shed rate and zero budget overruns), and the
satellite guards: clock monotonicity, idempotent step charging, seeded
cluster tie-breaking, empty-batch routing, and percentile reporting.
"""

import numpy as np
import pytest

from repro.core import KVCacheStream
from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.serve import (
    SLO,
    AsyncServingEngine,
    ClusterRouter,
    DeadlinePolicy,
    FCFSPolicy,
    Request,
    RequestShedError,
    RequestState,
    RequestTimeoutError,
    RetryPolicy,
    ServingEngine,
    StepCostModel,
    VirtualClock,
    WorkloadConfig,
    generate_trace,
    latency_percentiles,
    next_deadline_s,
    replay_open_loop,
    replay_trace,
    slack_s,
    slo_attainment,
)
from repro.serve.scheduler import make_policy


@pytest.fixture(scope="module")
def parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


def make_engine(parts, clock, **overrides):
    spec, model, calib = parts
    kwargs = dict(
        storage="ecco",
        byte_budget=120_000,
        page_tokens=8,
        max_batch_size=4,
        clock=clock,
    )
    kwargs.update(overrides)
    return ServingEngine(model, calib, **kwargs)


# ----------------------------------------------------------------------
# SLO math and policy plumbing.
# ----------------------------------------------------------------------

def test_slo_deadlines_slack_and_attainment():
    with pytest.raises(ValueError):
        SLO(ttft_s=-1.0)
    assert not SLO().has_deadline

    request = Request("r", np.arange(4), max_new_tokens=4)
    request.metrics.arrival_s = 10.0
    assert next_deadline_s(request) == np.inf  # no SLO: never due

    request.slo = SLO(ttft_s=0.5, inter_token_s=0.2, e2e_s=5.0)
    # Before the first token the TTFT deadline binds.
    assert next_deadline_s(request) == pytest.approx(10.5)
    assert slack_s(request, 10.1) == pytest.approx(0.4)
    # After a token the inter-token deadline binds (e2e still capped).
    request.metrics.first_token_s = 10.3
    request.metrics.token_s = [10.3]
    assert next_deadline_s(request) == pytest.approx(10.5)
    request.metrics.token_s = [10.3, 10.4]
    assert next_deadline_s(request) == pytest.approx(10.6)

    # Attainment counts: TTFT met, one inter-token gap blown.
    request.metrics.token_s = [10.3, 10.4, 10.9]
    stats = slo_attainment([request])
    assert stats["slo_requests"] == 1
    assert stats["slo_ttft_met"] == 1
    assert stats["slo_itl_missed"] == 1
    assert stats["slo_ttft_attainment"] == 1.0


def test_make_policy_resolves_names_and_instances():
    assert isinstance(make_policy("fcfs"), FCFSPolicy)
    assert isinstance(make_policy("deadline"), DeadlinePolicy)
    custom = DeadlinePolicy(default_slo=SLO(ttft_s=1.0))
    assert make_policy(custom) is custom
    with pytest.raises(KeyError):
        make_policy("lifo")
    with pytest.raises(TypeError):
        make_policy(42)


def test_virtual_clock_refuses_backwards_and_nan():
    clock = VirtualClock()
    clock.advance(1.5)
    with pytest.raises(ValueError):
        clock.advance(-1e-9)
    with pytest.raises(ValueError):
        clock.advance(float("nan"))
    with pytest.raises(ValueError):
        clock.jump_to(float("nan"))
    clock.jump_to(0.5)  # backwards jump clamps, never rewinds
    assert clock() == pytest.approx(1.5)


def test_latency_percentile_keys_always_present():
    empty = latency_percentiles([], "ttft_s")
    assert set(empty) == {"ttft_s_p50", "ttft_s_p95", "ttft_s_p99"}
    assert all(v is None for v in empty.values())
    filled = latency_percentiles(list(range(1, 101)), "e2e_s")
    assert filled["e2e_s_p50"] == pytest.approx(50.5)
    assert filled["e2e_s_p99"] < 100


# ----------------------------------------------------------------------
# Async front-end: streaming, determinism, bit-exactness.
# ----------------------------------------------------------------------

def test_async_streaming_is_bit_exact_vs_sync_engine(parts):
    """The front-end only reorders *waiting*: the same submissions in
    the same order must generate identical tokens through the async
    path, stream them in generation order, and leave decoded KV
    bit-exact against a single-stream reference."""
    spec, _, _ = parts
    rng = np.random.default_rng(3)
    prompts = [
        rng.integers(0, spec.vocab_size, size=n) for n in (12, 9, 17, 11)
    ]

    sync_engine = make_engine(parts, VirtualClock())
    sync_requests = [
        sync_engine.submit(p, max_new_tokens=6, request_id=f"r{i}")
        for i, p in enumerate(prompts)
    ]
    sync_engine.run()

    clock = VirtualClock()
    engine = make_engine(parts, clock, record_reference=True)
    frontend = AsyncServingEngine(engine)
    streamed: dict[str, list[int]] = {}

    async def client(i, prompt):
        handle = frontend.submit(prompt, max_new_tokens=6, request_id=f"r{i}")
        tokens = []
        async for token in handle:
            tokens.append(token)
        streamed[f"r{i}"] = tokens

    frontend.drive(*(client(i, p) for i, p in enumerate(prompts)))

    requests = {r.request_id: r for r in engine.requests}
    for i, sync_request in enumerate(sync_requests):
        request = requests[f"r{i}"]
        assert request.state is RequestState.FINISHED
        assert streamed[f"r{i}"] == request.generated  # stream == record
        assert request.generated == sync_request.generated
    assert clock() > 0.0  # the pump charged simulated time

    # Decoded KV through the async path == single-stream reference.
    for request in requests.values():
        kv = request.kv
        for layer, (key_codec, value_codec) in enumerate(
            engine.backend.codecs
        ):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            reference.append_tokens(
                kv.raw_prompt[layer]["keys"], kv.raw_prompt[layer]["values"]
            )
            for k_row, v_row in zip(
                kv.raw_decode[layer]["keys"], kv.raw_decode[layer]["values"]
            ):
                reference.append(k_row, v_row)
            assert np.array_equal(reference.read_keys(), kv.read(layer, "keys"))
            assert np.array_equal(
                reference.read_values(), kv.read(layer, "values")
            )


def test_frontend_replay_is_deterministic(parts):
    """Two identical replays through the async front-end produce the
    same steps, the same simulated timeline and the same per-request
    latencies — asyncio interleaving must not leak nondeterminism."""
    spec, _, _ = parts
    trace = generate_trace(
        WorkloadConfig(
            duration_s=4.0, rate_rps=2.0, vocab_size=spec.vocab_size,
            max_tokens=16,
        ),
        seed=11,
    )

    def run():
        clock = VirtualClock()
        engine = make_engine(parts, clock)
        totals = replay_trace(engine, trace, clock)
        ttfts = sorted(
            r.metrics.ttft_s
            for r in engine.requests
            if r.metrics.ttft_s is not None
        )
        return totals, ttfts

    first, second = run(), run()
    assert first == second


def test_stream_timeout_abandons_client_but_engine_finishes(parts):
    """An impatient client times out and walks away; the engine is not
    interrupted — the request still runs to completion as wasted work."""
    spec, _, _ = parts
    clock = VirtualClock()
    engine = make_engine(parts, clock)
    frontend = AsyncServingEngine(engine)
    prompt = np.arange(24) % spec.vocab_size

    async def impatient():
        handle = frontend.submit(prompt, max_new_tokens=12)
        with pytest.raises(RequestTimeoutError):
            await handle.result(timeout_s=1e-4)
        return handle

    (handle,) = frontend.drive(impatient())
    assert handle.status == "timeout"
    assert handle.request.state is RequestState.FINISHED  # drained anyway
    assert frontend.report()["timeouts"] == 1


# ----------------------------------------------------------------------
# SLO-aware admission: deadline policy vs FCFS.
# ----------------------------------------------------------------------

def _bursty_slo_trace(spec, slo):
    trace = generate_trace(
        WorkloadConfig(
            duration_s=8.0,
            rate_rps=6.0,
            arrivals="bursty",
            vocab_size=spec.vocab_size,
            max_tokens=24,
        ),
        seed=5,
    )
    for item in trace:
        item.slo = slo
    return trace


def test_deadline_policy_cuts_p95_ttft_on_bursty_trace(parts):
    """The A/B the tentpole exists for: under a bursty overload, EDF
    admission plus shed-when-late must cut the served tail TTFT vs
    FCFS, at the price of explicitly shedding already-late requests
    (which FCFS serves uselessly late instead)."""
    spec, _, _ = parts
    slo = SLO(ttft_s=0.2)
    # A slower roofline than the default: the proxy models are so small
    # that the default charges never queue anything long enough to blow
    # a deadline.
    step_cost = StepCostModel(compute_s_per_token=1e-2)
    reports = {}
    for policy in ("fcfs", "deadline"):
        clock = VirtualClock()
        engine = make_engine(parts, clock, policy=policy)
        trace = _bursty_slo_trace(spec, slo)
        totals = replay_trace(engine, trace, clock, step_cost=step_cost)
        report = engine.report(clock())
        report["_totals"] = totals
        reports[policy] = report

    fcfs, deadline = reports["fcfs"], reports["deadline"]
    assert fcfs["shed_requests"] == 0  # FCFS never sheds
    assert deadline["shed_requests"] > 0  # deadline actually shed load
    # Every submitted request is accounted for: finished or shed.
    assert (
        deadline["finished"] + deadline["shed_requests"]
        == deadline["_totals"]["submitted"]
    )
    assert deadline["ttft_s_p95"] < fcfs["ttft_s_p95"]
    assert deadline["slo_ttft_attainment"] > fcfs["slo_ttft_attainment"]
    assert fcfs["pool"]["budget_overruns"] == 0
    assert deadline["pool"]["budget_overruns"] == 0


# ----------------------------------------------------------------------
# Tenant rate limits and weighted fairness.
# ----------------------------------------------------------------------

def test_aggressive_tenant_cannot_starve_polite_tenant(parts):
    """Both tenants flood at t=0 with equal weights; stride fairness
    must interleave admissions, so the polite tenant's queue wait stays
    comparable to the aggressive one's share — not behind its whole
    backlog."""
    spec, _, _ = parts
    rng = np.random.default_rng(7)
    clock = VirtualClock()
    engine = make_engine(parts, clock, byte_budget=200_000)
    frontend = AsyncServingEngine(engine, max_pending=1)
    frontend.add_tenant("aggressive", weight=1.0)
    frontend.add_tenant("polite", weight=1.0)

    async def flood(tenant, count):
        handles = []
        for _ in range(count):
            handles.append(
                frontend.submit(
                    rng.integers(0, spec.vocab_size, size=10),
                    max_new_tokens=4,
                    tenant=tenant,
                )
            )
        for handle in handles:
            await handle.result()

    frontend.drive(flood("aggressive", 12), flood("polite", 4))
    tenants = frontend.report()["tenants"]
    assert tenants["aggressive"]["accepted"] == 12
    assert tenants["polite"]["accepted"] == 4
    # The polite tenant waits for its fair-share slice, not the whole
    # aggressive backlog: its worst wait must come in clearly under the
    # aggressive tenant's (which queues behind its own flood).
    assert (
        tenants["polite"]["wait_s_max"]
        < 0.67 * tenants["aggressive"]["wait_s_max"]
    )


def test_tenant_token_rate_limit_throttles_only_that_tenant(parts):
    spec, _, _ = parts
    rng = np.random.default_rng(8)
    clock = VirtualClock()
    engine = make_engine(parts, clock, byte_budget=200_000)
    frontend = AsyncServingEngine(engine)
    frontend.add_tenant("limited", rate_tokens_per_s=40.0, burst_tokens=40.0)
    frontend.add_tenant("free")

    async def burst(tenant, count):
        handles = [
            frontend.submit(
                rng.integers(0, spec.vocab_size, size=12),
                max_new_tokens=4,
                tenant=tenant,
            )
            for _ in range(count)
        ]
        for handle in handles:
            await handle.result()

    frontend.drive(burst("limited", 4), burst("free", 4))
    tenants = frontend.report()["tenants"]
    # Each limited request costs 16 tokens against a 40-token bucket at
    # 40 tok/s: the burst must spread out over rate refills.
    assert tenants["limited"]["wait_s_max"] > 0.1
    assert tenants["free"]["wait_s_max"] == 0.0
    assert tenants["limited"]["accepted"] == 4  # throttled, not dropped


# ----------------------------------------------------------------------
# Retry storms.
# ----------------------------------------------------------------------

def test_retry_storm_converges_with_bounded_shed_and_no_overruns(parts):
    """Impatient clients + a queue-limited front door: timed-out and
    shed attempts come back with exponential backoff, and the system
    must converge — every client terminates, shed rate stays bounded,
    and the pool's byte budget is never overrun."""
    spec, _, _ = parts
    trace = generate_trace(
        WorkloadConfig(
            duration_s=6.0,
            rate_rps=8.0,
            arrivals="bursty",
            vocab_size=spec.vocab_size,
            max_tokens=16,
        ),
        seed=13,
    )
    # Slowed roofline + a one-deep front door: bursts overflow into
    # sheds and client timeouts, which retry with backoff.
    step_cost = StepCostModel(compute_s_per_token=1e-2)
    retry = RetryPolicy(
        max_attempts=4, timeout_s=0.6, base_backoff_s=0.2, jitter=0.5
    )

    def run():
        clock = VirtualClock()
        engine = make_engine(parts, clock, byte_budget=90_000)
        frontend = AsyncServingEngine(
            engine, step_cost=step_cost, max_queue_depth=1, max_pending=1
        )
        result = replay_open_loop(
            frontend, trace, clock, retry=retry, seed=21
        )
        return result, engine, clock

    result, engine, clock = run()

    # Convergence: every open-loop client reached a terminal outcome
    # and the engine drained within the step bound.
    assert result["completed"] + result["gave_up"] == result["trace_requests"]
    assert result["completed"] > 0
    assert result["retries"] > 0  # the storm actually stormed
    assert result["timeouts"] > 0  # ...with impatient clients timing out
    assert result["shed"] > 0  # ...and the front door turning load away
    assert result["attempts"] <= result["trace_requests"] * retry.max_attempts
    # Bounded shedding: backoff spread the storm out instead of letting
    # it collapse into rejecting everything.
    assert result["frontend"]["shed_rate"] < 0.5
    assert engine.report(clock())["pool"]["budget_overruns"] == 0

    # Determinism: the identical storm replays to identical totals.
    result2, _, _ = run()
    assert result2 == result


# ----------------------------------------------------------------------
# Cluster satellites: seeded tie-breaking, empty batches.
# ----------------------------------------------------------------------

def _cluster(parts, seed):
    engines = [
        make_engine(parts, VirtualClock(), byte_budget=100_000)
        for _ in range(3)
    ]
    return ClusterRouter(engines, seed=seed)


def test_cluster_empty_batch_returns_empty_list(parts):
    cluster = _cluster(parts, seed=None)
    assert cluster.submit_batch([]) == []
    assert not cluster.has_work


def test_cluster_tiebreak_is_seeded_and_deterministic(parts):
    spec, _, _ = parts

    def place(seed):
        cluster = _cluster(parts, seed)
        rng = np.random.default_rng(17)
        placed = []
        # Equal-length unique prompts, drained between submissions, so
        # every routing decision is a clean three-way tie.
        for i in range(8):
            prompt = rng.integers(0, spec.vocab_size, size=10)
            request = cluster.submit(prompt, max_new_tokens=2)
            placed.append(request.replica)
            cluster.run()
        return placed

    unseeded = place(None)
    assert unseeded == [0] * 8  # lowest index wins every tie
    seeded_a, seeded_b = place(123), place(123)
    assert seeded_a == seeded_b  # deterministic under the seed
    assert len(set(seeded_a)) > 1  # spread across tied replicas
