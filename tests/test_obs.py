"""Tier-0 tests for the observability subsystem (``repro.obs``).

Holds tracing to the three promises the serve stack builds on: it is
*deterministic* (two seeded replays export byte-identical logs), it is
*free when off* (the ``NullRecorder`` path allocates no events and
shares one no-op span), and it *never changes behaviour when on* (a
traced replay produces the same summary and bit-identical decoded KV
as an untraced one).  Plus the registry's histogram edge semantics,
counter mirroring, the degenerate-run guards in the engine summary,
and the end-to-end acceptance checks: a Chrome export covering every
lifecycle state and engine phase, and a registry snapshot that agrees
exactly with ``EngineMetrics.summary()``.
"""

import json

import numpy as np
import pytest

from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.obs import (
    Histogram,
    MetricsRegistry,
    MirroredCounters,
    NullRecorder,
    TraceRecorder,
    chrome_trace,
    load_events,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import _NULL_SPAN
from repro.serve import (
    ServingEngine,
    StepCostModel,
    VirtualClock,
    WorkloadConfig,
    generate_trace,
    replay_trace,
)

ENGINE_PHASES = {"evict", "admit", "prefill", "preempt", "decode"}


@pytest.fixture(scope="module")
def parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


def _replay(parts, traced: bool):
    """One seeded chunked replay; ``traced`` switches the recorder."""
    spec, model, calib = parts
    clock = VirtualClock()
    recorder = TraceRecorder(clock) if traced else None
    engine = ServingEngine(
        model,
        calib,
        byte_budget=60_000,
        page_tokens=8,
        max_batch_size=4,
        prefill_chunk_tokens=8,
        step_token_budget=24,
        clock=clock,
        recorder=recorder,
    )
    cfg = WorkloadConfig(
        duration_s=6.0, rate_rps=1.5, vocab_size=spec.vocab_size,
        max_tokens=16,
    )
    trace = generate_trace(cfg, seed=12)
    replay_trace(engine, trace, clock, StepCostModel())
    return engine, clock


@pytest.fixture(scope="module")
def pressured_run(parts):
    """A run under byte pressure: preemptions/swaps are guaranteed, so
    the trace exercises the full lifecycle (waiting, prefilling,
    running, swapped, finished)."""
    spec, model, calib = parts
    rng = np.random.default_rng(42)
    clock = VirtualClock()
    recorder = TraceRecorder(clock)
    engine = ServingEngine(
        model,
        calib,
        storage="ecco",
        byte_budget=20_000,
        page_tokens=8,
        max_batch_size=8,
        watermark=0.1,
        prefill_chunk_tokens=8,
        step_token_budget=24,
        clock=clock,
        recorder=recorder,
    )
    for _ in range(5):
        engine.submit(
            rng.integers(0, spec.vocab_size, size=12), max_new_tokens=20
        )
        clock.advance(2e-3)  # staggered arrivals: waiting time is real
    while engine.scheduler.has_work:
        engine.step()
        clock.advance(1e-3)
    return engine, recorder, clock


# ----------------------------------------------------------------------
# Recorder primitives.
# ----------------------------------------------------------------------

def test_null_recorder_allocates_nothing():
    rec = NullRecorder()
    assert rec.enabled is False
    # One shared no-op span serves every call; the event buffer is the
    # shared empty tuple — nothing per-call, nothing per-instance.
    assert rec.span("decode", "engine/decode") is _NULL_SPAN
    assert rec.span("x", "y") is NullRecorder().span("a", "b")
    with rec.span("decode", "engine/decode", batch=4):
        pass
    rec.instant("evict", "pool", reason="ttl")
    rec.counter("depth", 3, "frontend")
    rec.request_state("req-0", "waiting")
    rec.request_state("req-0", "finished")
    assert rec.events == ()
    assert rec.events is NullRecorder.events
    assert len(rec) == 0
    assert rec.open_state_spans() == []


def test_ring_buffer_drops_oldest_and_counts():
    clock = VirtualClock()
    rec = TraceRecorder(clock, max_events=3)
    for i in range(5):
        rec.instant(f"e{i}", "t")
    assert len(rec) == 3
    assert rec.dropped == 2
    assert [e.name for e in rec.events] == ["e2", "e3", "e4"]
    with pytest.raises(ValueError, match="max_events"):
        TraceRecorder(clock, max_events=0)


def test_request_state_ribbon_is_gap_free():
    clock = VirtualClock()
    rec = TraceRecorder(clock)
    rec.request_state("req-0", "waiting")
    clock.advance(0.5)
    rec.request_state("req-0", "running")
    # Mid-run snapshot: the open running span is synthesized, buffer
    # untouched.
    clock.advance(0.25)
    open_spans = rec.open_state_spans()
    assert [(s.name, s.args["open"]) for s in open_spans] == [
        ("running", True)
    ]
    assert open_spans[0].dur == pytest.approx(0.25)
    clock.advance(0.25)
    rec.request_state("req-0", "finished")
    spans = [e for e in rec.events if e.kind == "span"]
    assert [(s.name, s.ts, s.dur) for s in spans] == [
        ("waiting", 0.0, pytest.approx(0.5)),
        ("running", pytest.approx(0.5), pytest.approx(0.5)),
    ]
    # Terminal state: an instant closes the ribbon, nothing stays open.
    (instant,) = [e for e in rec.events if e.kind == "instant"]
    assert instant.name == "finished"
    assert rec.open_state_spans() == []


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

def test_histogram_bucket_edges_are_le_inclusive():
    hist = Histogram((0.001, 0.01, 0.1))
    hist.observe(0.0005)   # below the first edge
    hist.observe(0.001)    # == edge: le semantics, lands in that bucket
    hist.observe(0.01)
    hist.observe(0.05)
    hist.observe(0.1)
    hist.observe(0.5)      # past the last edge: overflow
    assert hist.counts == [2, 1, 2, 1]
    assert hist.count == 6
    assert hist.sum == pytest.approx(0.6615)
    assert hist.min == 0.0005
    assert hist.max == 0.5
    with pytest.raises(ValueError, match="strictly increase"):
        Histogram((0.1, 0.1))
    with pytest.raises(ValueError, match="at least one"):
        Histogram(())


def test_registry_labels_form_separate_series():
    reg = MetricsRegistry()
    reg.inc("pool.evictions", reason="ttl")
    reg.inc("pool.evictions", reason="ttl")
    reg.inc("pool.evictions", reason="capacity")
    assert reg.value("pool.evictions", reason="ttl") == 2
    assert reg.value("pool.evictions", reason="capacity") == 1
    assert reg.value("pool.evictions") == 0  # unlabeled is its own series
    reg.define_histogram("request.ttft_s", (0.1, 1.0))
    with pytest.raises(ValueError, match="already defined"):
        reg.define_histogram("request.ttft_s", (0.2, 2.0))
    reg.observe("request.ttft_s", 0.05, tenant="a")
    reg.observe("request.ttft_s", 0.05, tenant="b")
    snap = reg.snapshot()
    assert "request.ttft_s{tenant=a}" in snap["histograms"]
    assert snap["histograms"]["request.ttft_s{tenant=a}"]["count"] == 1
    assert snap["counters"]["pool.evictions{reason=ttl}"] == 2


def test_mirrored_counters_mirror_numeric_writes():
    reg = MetricsRegistry()
    stats = MirroredCounters({"hits": 1, "routed": [0, 0]}, reg, "pool.")
    assert reg.value("pool.hits") == 1
    assert reg.value("pool.routed", default=None) is None  # non-numeric
    stats["hits"] += 2
    assert stats["hits"] == 3 and reg.value("pool.hits") == 3
    stats["routed"][1] += 1  # in-place list edits stay dict-only
    assert stats == {"hits": 3, "routed": [0, 1]}


# ----------------------------------------------------------------------
# Determinism and zero-interference (acceptance c).
# ----------------------------------------------------------------------

def test_traced_replay_exports_are_byte_identical(parts, tmp_path):
    files = {}
    for label in ("a", "b"):
        engine, clock = _replay(parts, traced=True)
        jsonl = tmp_path / f"{label}.jsonl"
        chrome = tmp_path / f"{label}.json"
        assert write_jsonl(engine.obs, jsonl) == len(engine.obs.events)
        write_chrome_trace(engine.obs, chrome)
        files[label] = (jsonl.read_bytes(), chrome.read_bytes())
    assert files["a"][0] == files["b"][0]
    assert files["a"][1] == files["b"][1]
    # And the summarizer round-trips both formats to the same answer.
    a_jsonl, a_chrome = (
        summarize(load_events(tmp_path / "a.jsonl")),
        summarize(load_events(tmp_path / "a.json")),
    )
    assert a_jsonl["event_counts"] == a_chrome["event_counts"]
    assert a_jsonl["requests_seen"] == a_chrome["requests_seen"] > 0


def test_tracing_changes_no_summary_and_no_bytes(parts):
    traced, traced_clock = _replay(parts, traced=True)
    plain, plain_clock = _replay(parts, traced=False)
    assert len(traced.obs.events) > 0
    assert plain.obs.events == ()
    # Identical summaries: tracing reads the clock, never advances it.
    summary_t = traced.report(traced_clock())
    summary_p = plain.report(plain_clock())
    assert json.dumps(summary_t, sort_keys=True, default=str) == json.dumps(
        summary_p, sort_keys=True, default=str
    )
    # Bit-identical decoded KV, request for request.
    assert len(traced.requests) == len(plain.requests) > 0
    for rt, rp in zip(traced.requests, plain.requests):
        assert rt.request_id == rp.request_id
        assert rt.generated == rp.generated
        for layer in range(traced.backend.num_layers):
            for side in ("keys", "values"):
                assert np.array_equal(
                    rt.kv.read(layer, side), rp.kv.read(layer, side)
                )


# ----------------------------------------------------------------------
# End-to-end acceptance: Chrome export + registry/summary agreement.
# ----------------------------------------------------------------------

def test_chrome_trace_covers_lifecycle_and_phases(pressured_run, tmp_path):
    """Acceptance (a): the export is valid Chrome trace JSON with at
    least one span per lifecycle state the run passed through and per
    engine step phase."""
    engine, recorder, clock = pressured_run
    report = engine.report(clock())
    assert report["preemptions"] > 0  # the run really swapped

    path = tmp_path / "trace.json"
    write_chrome_trace(recorder, path)
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    for record in doc["traceEvents"]:
        assert {"ph", "ts", "pid", "tid", "name", "cat"} <= set(record)
        if record["ph"] == "X":
            assert record["dur"] >= 0

    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    phase_names = {e["name"] for e in spans if e["cat"] == "phase"}
    assert phase_names == ENGINE_PHASES
    state_names = {e["name"] for e in spans if e["cat"] == "request"}
    assert {"waiting", "prefilling", "running", "swapped"} <= state_names
    instants = {
        e["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "i" and e["cat"] == "request"
    }
    assert {"finished", "first_token", "preempt", "prefill_chunk"} <= instants
    # One thread per track, named: every tid used has thread_name
    # metadata, so Perfetto renders request ribbons and phase rows.
    named = {
        e["tid"] for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {e["tid"] for e in spans} <= named

    # The text summarizer reads the same file and sees the same run.
    summary = summarize(load_events(path))
    assert set(summary["phase_time"]) == ENGINE_PHASES
    assert summary["state_time_s"]["waiting"] > 0.0
    assert summary["swap_bytes_by_tier"]["host"]["out_bytes"] > 0


def test_registry_snapshot_matches_engine_summary(pressured_run):
    """Acceptance (b): the registry's TTFT/shed/eviction counts agree
    exactly with ``EngineMetrics.summary()`` — same storage, no drift."""
    engine, recorder, clock = pressured_run
    summary = engine.report(clock())
    registry = engine.registry

    for name in ("prefills", "decode_steps", "preemptions", "shed_requests"):
        assert registry.value(f"engine.{name}") == summary[name]
    ttft = registry.histogram("request.ttft_s")
    assert ttft.count == len(
        [
            r for r in engine.requests
            if r.metrics.first_token_s is not None
        ]
    )
    assert ttft.max == pytest.approx(summary["ttft_s_max"])
    pool = summary["pool"]
    for key, value in pool.items():
        if key.startswith("evictions_"):
            assert registry.value(f"pool.{key}") == value
    # The labeled breakdown sums to the same totals.
    total_evictions = sum(
        v for k, v in pool.items() if k.startswith("evictions_")
    )
    snap = registry.snapshot()["counters"]
    assert (
        sum(
            v for k, v in snap.items()
            if k.startswith("pool.evictions{reason=")
        )
        == total_evictions
    )


def test_summary_guards_degenerate_runs(parts):
    """Satellite: a run with no elapsed time and no first tokens reports
    zeros/Nones instead of dividing by zero."""
    spec, model, calib = parts
    engine = ServingEngine(
        model, calib, byte_budget=60_000, page_tokens=8
    )
    rng = np.random.default_rng(5)
    engine.submit(rng.integers(0, spec.vocab_size, size=12), max_new_tokens=4)
    report = engine.report(0.0)  # no steps ran, elapsed_s == 0
    assert report["tokens_per_s"] == 0.0
    assert report["tokens_generated"] == 0
    assert report["ttft_s_mean"] is None
    assert report["ttft_s_p95"] is None
    assert report["e2e_s_mean"] is None
    assert report["finished"] == 0
