"""Tier-0 tests for the serving layer and its core/kv satellites.

Covers: partial decoded-cache invalidation (counters prove only the
invalidated tokens are re-decoded), page-granular segment coalescing
(bit-exact, bounded re-decode), K/V append validation, pool page
ref-counting under shared prefixes, prefix-cache retention + eviction,
swap accounting, and an end-to-end engine run whose preempted request
re-admits without re-decoding history.
"""

import numpy as np
import pytest

from repro.core import (
    KVCacheCodec,
    KVCacheStream,
    calibrate_kv_meta,
    merge_token_segments,
)
from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.serve import PagedKVPool, RequestState, ServingEngine, chain_hash
from repro.serve.pool import ROOT_CHAIN

DIM = 128


@pytest.fixture(scope="module")
def kv_codec():
    rng = np.random.default_rng(21)
    scales = np.exp(rng.normal(0.0, 1.2, size=DIM))
    meta = calibrate_kv_meta(rng.standard_normal((256, DIM)) * scales * 0.3)
    return KVCacheCodec(meta)


def _stream_with(kv_codec, chunks):
    """A stream holding one segment per (tokens, DIM) chunk."""
    stream = KVCacheStream(key_codec=kv_codec, value_codec=kv_codec)
    for chunk in chunks:
        stream.append_tokens(chunk, chunk)
    return stream


# ----------------------------------------------------------------------
# KVCacheStream: partial invalidation and coalescing.
# ----------------------------------------------------------------------

def test_invalidate_from_token_redecodes_only_the_tail(kv_codec):
    """invalidate_decoded(from_token) must cost exactly the dropped part."""
    rng = np.random.default_rng(1)
    prefix = rng.standard_normal((8, DIM)).astype(np.float32)
    singles = [rng.standard_normal(DIM).astype(np.float32) for _ in range(4)]
    stream = _stream_with(kv_codec, [prefix] + [s[None, :] for s in singles])
    full = stream.read_keys().copy()
    stream.read_values()
    assert stream.decoded_tokens == {"keys": 12, "values": 12}

    # Page-granular eviction at the segment boundary: only 4 tokens redo.
    stream.invalidate_decoded(from_token=8)
    assert np.array_equal(stream.read_keys(), full)
    assert stream.decoded_tokens["keys"] == 12 + 4
    stream.read_values()
    assert stream.decoded_tokens["values"] == 12 + 4

    # The blunt full invalidation still re-decodes everything.
    stream.invalidate_decoded()
    assert np.array_equal(stream.read_keys(), full)
    assert stream.decoded_tokens["keys"] == 16 + 12


def test_invalidate_rounds_down_to_a_segment_boundary(kv_codec):
    """A mid-segment from_token drops that whole segment, nothing more."""
    rng = np.random.default_rng(2)
    a = rng.standard_normal((8, DIM)).astype(np.float32)
    b = rng.standard_normal((4, DIM)).astype(np.float32)
    stream = _stream_with(kv_codec, [a, b])
    stream.read_keys()
    assert stream.decoded_tokens["keys"] == 12

    stream.invalidate_decoded(from_token=10)  # inside the second segment
    stream.read_keys()
    assert stream.decoded_tokens["keys"] == 12 + 4

    stream.invalidate_decoded(from_token=3)  # inside the first segment
    stream.read_keys()
    assert stream.decoded_tokens["keys"] == 16 + 12


def test_coalesce_is_bit_exact_and_preserves_covering_cache(kv_codec):
    """Merging tail segments rewrites bookkeeping, not bytes: reads are
    identical and a decoded cache that covered the range survives."""
    rng = np.random.default_rng(3)
    prefix = rng.standard_normal((8, DIM)).astype(np.float32)
    singles = [rng.standard_normal(DIM).astype(np.float32) for _ in range(4)]
    stream = _stream_with(kv_codec, [prefix] + [s[None, :] for s in singles])
    before_k = stream.read_keys().copy()
    before_v = stream.read_values().copy()
    assert stream.num_segments == 5

    merged_k, merged_v = stream.coalesce(8)
    assert stream.num_segments == 2
    assert merged_k.token_shape == (4, DIM)
    # The cache covered the whole stream, so nothing re-decodes.
    assert np.array_equal(stream.read_keys(), before_k)
    assert np.array_equal(stream.read_values(), before_v)
    assert stream.decoded_tokens == {"keys": 12, "values": 12}
    # The merged segment is the literal concatenation of its parts.
    assert merged_k.nbytes == sum(
        kv_codec.encode_token(s).nbytes for s in singles
    )


def test_coalesce_with_partial_cache_drops_back_to_the_boundary(kv_codec):
    """A cache boundary strictly inside the merged range rolls back to
    from_token — the one re-decode a page rewrite may cost."""
    rng = np.random.default_rng(4)
    prefix = rng.standard_normal((8, DIM)).astype(np.float32)
    stream = _stream_with(kv_codec, [prefix])
    for _ in range(4):
        vec = rng.standard_normal(DIM).astype(np.float32)
        stream.append(vec, vec)
    stream.read_keys()
    assert stream.decoded_tokens["keys"] == 12
    # Two more appends the cache has not seen.
    for _ in range(2):
        vec = rng.standard_normal(DIM).astype(np.float32)
        stream.append(vec, vec)

    reference = stream.read_values().copy()  # values side: decode all 14
    stream.coalesce(8)  # merges [8, 14); keys cache sat at 12, inside it
    keys = stream.read_keys()
    assert keys.shape == (14, DIM)
    # Keys re-decoded [8, 14) = 6 tokens on top of the 12 already done.
    assert stream.decoded_tokens["keys"] == 12 + 6
    # Values cache covered all 14 tokens, so it survived the rewrite.
    assert stream.decoded_tokens["values"] == 14
    assert np.array_equal(stream.read_values(), reference)

    with pytest.raises(ValueError, match="segment boundary"):
        stream.coalesce(3)


def test_append_token_count_mismatch_is_a_clear_error(kv_codec):
    rng = np.random.default_rng(5)
    stream = KVCacheStream(key_codec=kv_codec, value_codec=kv_codec)
    with pytest.raises(ValueError, match="3 key tokens but 2 value tokens"):
        stream.append_tokens(
            rng.standard_normal((3, DIM)), rng.standard_normal((2, DIM))
        )
    ck = kv_codec.encode_tokens(rng.standard_normal((2, DIM)))
    cv = kv_codec.encode_tokens(rng.standard_normal((3, DIM)))
    with pytest.raises(ValueError, match="2 key tokens but 3 value tokens"):
        stream.append_compressed(ck, cv)
    assert len(stream) == 0


def test_merge_token_segments_matches_batch_encode(kv_codec):
    """Merged per-chunk segments decode exactly like one batched encode."""
    rng = np.random.default_rng(6)
    tokens = rng.standard_normal((12, DIM)).astype(np.float32)
    parts = [
        kv_codec.encode_tokens(tokens[:5]),
        kv_codec.encode_tokens(tokens[5:6]),
        kv_codec.encode_tokens(tokens[6:]),
    ]
    merged = merge_token_segments(parts)
    whole = kv_codec.encode_tokens(tokens)
    assert np.array_equal(merged.blocks, whole.blocks)
    assert merged.token_shape == (12, DIM)
    assert np.array_equal(
        kv_codec.decode_tokens(merged), kv_codec.decode_tokens(whole)
    )


# ----------------------------------------------------------------------
# PagedKVPool: ref counting, sharing, retention, swap.
# ----------------------------------------------------------------------

def _dummy_builder(nbytes=512):
    payload = {0: (np.zeros(nbytes // 4, np.uint8), np.zeros(nbytes // 4, np.uint8))}
    return lambda: (payload, nbytes, nbytes * 4)


def test_pool_ref_counting_under_shared_prefixes():
    pool = PagedKVPool(byte_budget=10_000, page_tokens=4)
    ids = (1, 2, 3, 4)
    chain = chain_hash(ROOT_CHAIN, ids)

    page, shared = pool.acquire(chain, ids, _dummy_builder())
    assert not shared and page.ref_count == 1
    assert pool.bytes_resident == 512

    def must_not_build():
        raise AssertionError("shared hit must not rebuild the payload")

    page2, shared2 = pool.acquire(chain, ids, must_not_build)
    assert shared2 and page2 is page and page.ref_count == 2
    # One resident copy serves both holders.
    assert pool.bytes_resident == 512
    assert pool.stats["pages_shared"] == 1
    assert pool.stats["shared_bytes_saved"] == 512

    # A different suffix after the same parent is a different page.
    other = chain_hash(chain, (9, 9, 9, 9))
    page3, shared3 = pool.acquire(other, (9, 9, 9, 9), _dummy_builder())
    assert not shared3 and page3 is not page
    assert pool.bytes_resident == 1024

    # Releases: the page stays pinned until its last holder leaves, then
    # is retained as evictable prefix cache rather than freed.
    pool.release(page)
    assert page.ref_count == 1 and pool.bytes_resident == 1024
    pool.release(page2)
    assert page.ref_count == 0
    assert pool.bytes_resident == 1024 and pool.bytes_evictable == 512
    assert pool.bytes_active == 512

    # Re-acquiring resurrects the cached page (a prefix-cache hit).
    page4, shared4 = pool.acquire(chain, ids, must_not_build)
    assert shared4 and page4 is page and page.ref_count == 1
    assert pool.stats["prefix_cache_hits"] == 1
    assert pool.bytes_evictable == 0


def test_pool_evicts_cached_pages_under_pressure():
    pool = PagedKVPool(byte_budget=2_000, page_tokens=4)
    page, _ = pool.acquire(chain_hash(ROOT_CHAIN, (1,)), (1,), _dummy_builder(800))
    pool.release(page)  # now cached, evictable
    assert pool.bytes_evictable == 800
    pool.reserve_private(1_600, 6_400)  # does not fit alongside the cache
    assert pool.bytes_evictable == 0
    assert pool.stats["pages_evicted"] == 1
    assert pool.bytes_resident == 1_600
    assert pool.peek(page.chain) is None  # gone from the index too


def test_pool_swap_accounting_with_shared_pages():
    pool = PagedKVPool(byte_budget=10_000, page_tokens=4)
    chain = chain_hash(ROOT_CHAIN, (7, 7))
    page, _ = pool.acquire(chain, (7, 7), _dummy_builder(600))
    pool.acquire(chain, (7, 7), _dummy_builder(600))  # second holder

    # Preempting one tenant of a shared page moves nothing.
    pool.swap_out(page)
    assert pool.stats["swap_out_bytes"] == 0
    assert pool.bytes_resident == 600 and pool.bytes_swapped == 0

    # Preempting the last one does.
    pool.swap_out(page)
    assert pool.stats["swap_out_bytes"] == 600
    assert pool.bytes_resident == 0 and pool.bytes_swapped == 600

    # First victim returns: bytes move back once...
    pool.swap_in(page)
    assert pool.stats["swap_in_bytes"] == 600
    assert pool.bytes_resident == 600 and pool.bytes_swapped == 0
    # ...and the second re-pins the already-resident copy for free.
    pool.swap_in(page)
    assert pool.stats["swap_in_bytes"] == 600
    assert page.ref_count == 2


def test_swap_in_repins_identical_page_rebuilt_meanwhile():
    """If a victim's prefix page was rebuilt resident by another tenant
    while it was swapped out, re-admission re-pins that copy instead of
    parking a duplicate of the same content in the budget."""
    pool = PagedKVPool(byte_budget=10_000, page_tokens=4)
    chain = chain_hash(ROOT_CHAIN, (5, 6))
    page, _ = pool.acquire(chain, (5, 6), _dummy_builder(400))
    pool.swap_out(page)  # sole holder: bytes leave
    assert pool.bytes_swapped == 400

    rebuilt, shared = pool.acquire(chain, (5, 6), _dummy_builder(400))
    assert not shared and rebuilt is not page

    serving = pool.swap_in(page)
    assert serving is rebuilt and rebuilt.ref_count == 2
    assert pool.bytes_resident == 400  # one copy, not two
    assert pool.bytes_swapped == 0
    assert pool.stats["swap_in_bytes"] == 0  # nothing moved back


def test_swap_in_substitution_with_multiple_swapped_holders():
    """The swapped copy survives until its *last* preempted holder
    re-admits; every holder lands on the rebuilt resident page."""
    pool = PagedKVPool(byte_budget=10_000, page_tokens=4)
    chain = chain_hash(ROOT_CHAIN, (5, 6))
    page, _ = pool.acquire(chain, (5, 6), _dummy_builder(400))
    pool.acquire(chain, (5, 6), _dummy_builder(400))  # second holder
    pool.swap_out(page)
    pool.swap_out(page)  # last resident ref: bytes leave, swapped_refs=2
    assert pool.bytes_swapped == 400

    rebuilt, _ = pool.acquire(chain, (5, 6), _dummy_builder(400))
    first = pool.swap_in(page)
    assert first is rebuilt
    assert pool.bytes_swapped == 400  # still held for the other victim
    second = pool.swap_in(page)
    assert second is rebuilt and rebuilt.ref_count == 3
    assert pool.bytes_swapped == 0 and pool.num_swapped_pages == 0
    assert pool.bytes_resident == 400


def test_duplicate_caller_supplied_ids_are_rejected(tiny_engine_parts):
    """Request IDs are identities: a second submit with the same ID is a
    loud error, not a silently ambiguous pair of requests."""
    spec, model, calib = tiny_engine_parts
    engine = ServingEngine(
        model, calib, storage="ecco", byte_budget=50_000, page_tokens=8
    )
    prompt = np.arange(10) % spec.vocab_size
    engine.submit(prompt, max_new_tokens=2, request_id="dup")
    with pytest.raises(ValueError, match="duplicate request_id"):
        engine.submit(prompt, max_new_tokens=2, request_id="dup")
    report = engine.run()
    assert report["finished"] == 1


# ----------------------------------------------------------------------
# Engine: preemption in compressed form reuses the decoded cache.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_engine_parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


def test_engine_preempts_in_compressed_form_and_reuses_decoded_cache(
    tiny_engine_parts,
):
    spec, model, calib = tiny_engine_parts
    rng = np.random.default_rng(42)
    engine = ServingEngine(
        model,
        calib,
        storage="ecco",
        byte_budget=20_000,
        page_tokens=8,
        max_batch_size=8,
        watermark=0.1,
        record_reference=True,
    )
    requests = [
        engine.submit(
            rng.integers(0, spec.vocab_size, size=12), max_new_tokens=20
        )
        for _ in range(5)
    ]

    victim = None
    counters_at_swap = tokens_at_swap = None
    steps = 0
    while engine.scheduler.has_work:
        engine.step()
        steps += 1
        assert steps < 2_000
        if victim is None:
            for request in requests:
                if request.state == RequestState.SWAPPED:
                    victim = request
                    counters_at_swap = dict(victim.kv.decoded_token_counters)
                    tokens_at_swap = victim.kv.num_tokens
                    break
    report = engine.report(0.0)

    assert report["finished"] == 5
    assert report["preemptions"] > 0
    assert report["pool"]["swap_out_bytes"] > 0
    assert report["pool"]["swap_out_bytes"] == report["pool"]["swap_in_bytes"]
    assert victim is not None and victim.state == RequestState.FINISHED

    # Re-admission reused the decoded-segment cache: post-swap decode work
    # is bounded by the new tokens plus at most one page re-decode per
    # pageify rewrite — nowhere near a re-decode of the swapped history.
    new_tokens = victim.kv.num_tokens - tokens_at_swap
    page = engine.pool.page_tokens
    bound = (new_tokens + page * (new_tokens // page + 1)) * spec.num_layers
    redecode = (
        victim.kv.decoded_token_counters["keys"] - counters_at_swap["keys"]
    )
    assert redecode <= bound

    # And the multi-tenant decoded KV is bit-exact vs a single-stream run.
    for request in requests:
        kv = request.kv
        for layer, (key_codec, value_codec) in enumerate(engine.backend.codecs):
            reference = KVCacheStream(
                key_codec=key_codec, value_codec=value_codec
            )
            reference.append_tokens(
                kv.raw_prompt[layer]["keys"], kv.raw_prompt[layer]["values"]
            )
            for k_row, v_row in zip(
                kv.raw_decode[layer]["keys"], kv.raw_decode[layer]["values"]
            ):
                reference.append(k_row, v_row)
            assert np.array_equal(
                reference.read_keys(), kv.read(layer, "keys")
            )
            assert np.array_equal(
                reference.read_values(), kv.read(layer, "values")
            )


def test_engine_rejects_requests_that_can_never_fit(tiny_engine_parts):
    spec, model, calib = tiny_engine_parts
    engine = ServingEngine(
        model, calib, storage="ecco", byte_budget=4_096, page_tokens=8
    )
    with pytest.raises(ValueError, match="pool budget"):
        engine.submit(np.arange(10) % spec.vocab_size, max_new_tokens=50)
