"""Tier-0 tests for the prefix-cache chain lifecycle and sessions.

The three tentpole bugfixes, each pinned by a test: (1) eviction is
chain-aware — no eviction pass ever leaves a cached page that a
prefix-match walk cannot reach, and suffixes go before the prefixes
beneath them; (2) a finished request's final partial page is promoted
into the hash chain at release, byte-identical to a fresh encode of the
same tokens, so a follow-up turn hits the whole history; (3) the
private-byte accounting paths refuse double frees instead of silently
driving counters negative and relaxing the budget.  On top: the session
layer's cross-turn reuse (attach-everything warm admissions, bit-exact
decoded KV across turns vs a single-stream reference), warm-vs-cold
TTFT under synchronous charging, and cluster session affinity.
"""

import numpy as np
import pytest

from repro.core import KVCacheStream
from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.serve import (
    ClusterRouter,
    PagedKVPool,
    ServingEngine,
    Session,
    StepCostModel,
    VirtualClock,
    chain_hash,
    generate_sessions,
    replay_sessions,
    summarize_turns,
)
from repro.serve.pool import ROOT_CHAIN
from repro.serve.storage import EccoKVBackend, Fp16KVBackend


@pytest.fixture(scope="module")
def parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


def _builder(nbytes=400):
    payload = {0: (np.zeros(nbytes // 4, np.uint8), np.zeros(nbytes // 4, np.uint8))}
    return lambda: (payload, nbytes, nbytes * 4)


def _chain_of(pool, length, start=0, nbytes=400):
    """Build a parent->child chain of ``length`` pages; returns pages."""
    pages = []
    parent = ROOT_CHAIN
    for i in range(length):
        ids = (start + i,)
        chain = chain_hash(parent, ids)
        page, _ = pool.acquire(chain, ids, _builder(nbytes), parent=parent)
        pages.append(page)
        parent = chain
    return pages


# ----------------------------------------------------------------------
# Tentpole (1): chain-aware eviction.
# ----------------------------------------------------------------------

def test_eviction_is_suffix_first_and_never_orphans():
    """Suffix pages are reclaimed before the prefixes beneath them, and
    after every eviction pass every surviving cached page is reachable
    by a prefix-match walk from ROOT_CHAIN."""
    pool = PagedKVPool(byte_budget=4_000, page_tokens=4)
    a, b, c = _chain_of(pool, 3, nbytes=1_000)
    for page in (a, b, c):
        pool.release(page)
    assert pool.num_cached_pages == 3

    # One page of pressure: the deepest suffix (c) goes, not the LRU
    # head (a) — which would have stranded b and c as unreachable.
    pool.reserve_private(1_500, 6_000)
    assert pool.peek(c.chain) is None
    assert pool.peek(a.chain) is not None and pool.peek(b.chain) is not None
    assert pool.unreachable_cached_pages() == []

    # More pressure walks up the chain: b then a.
    pool.reserve_private(1_000, 4_000)
    assert pool.peek(b.chain) is None and pool.peek(a.chain) is not None
    assert pool.unreachable_cached_pages() == []
    assert pool.stats["pages_evicted"] == 2
    pool.check_budget()


def test_forced_parent_eviction_cascades_through_descendants():
    """When every cached page still has resident children the fallback
    evicts a parent — and must drag its cached subtree with it rather
    than leave unreachable descendants squatting in the budget."""
    pool = PagedKVPool(byte_budget=4_000, page_tokens=4)
    a, b, c = _chain_of(pool, 3, nbytes=1_000)
    for page in (a, b, c):
        pool.release(page)
    # Ask for more than any single suffix eviction frees: the cascade
    # must reclaim the whole chain, deepest first, leaving no orphans.
    pool.reserve_private(3_500, 14_000)
    assert pool.num_cached_pages == 0
    assert pool.stats["pages_evicted"] == 3
    assert pool.unreachable_cached_pages() == []
    assert pool.bytes_resident == 3_500
    pool.check_budget()


def test_release_after_parent_eviction_frees_instead_of_caching():
    """A page whose parent already left residency is freed at release —
    caching it would create exactly the unreachable dead weight the
    chain-aware eviction exists to prevent."""
    pool = PagedKVPool(byte_budget=4_000, page_tokens=4)
    a, b = _chain_of(pool, 2, nbytes=1_000)
    pool.release(a)  # a cached; b still pinned (a's resident child)
    # Pressure: a is the only cached page; the fallback evicts it even
    # though b (pinned) hangs off it.
    pool.reserve_private(3_000, 12_000)
    assert pool.peek(a.chain) is None
    # Now b's last ref leaves: parent gone => freed, not cached.
    pool.release(b)
    assert pool.peek(b.chain) is None
    assert pool.num_cached_pages == 0
    assert pool.unreachable_cached_pages() == []
    assert pool.bytes_resident == 3_000  # only the private reservation
    pool.check_budget()


def test_cascade_eviction_handles_chains_deeper_than_recursion_limit():
    """A months-old conversation leaves a linear cached chain of
    thousands of pages; the cascade must reclaim it iteratively."""
    import sys

    depth = sys.getrecursionlimit() + 200
    pool = PagedKVPool(byte_budget=depth * 10 + 100, page_tokens=4)
    pages = _chain_of(pool, depth, nbytes=10)
    for page in pages:
        pool.release(page)
    assert pool.num_cached_pages == depth
    pool.reserve_private(depth * 10 + 50, 100)  # forces a full cascade
    assert pool.num_cached_pages < depth
    assert pool.unreachable_cached_pages() == []
    pool.check_budget()


def test_match_prefix_walks_variable_size_chain_nodes():
    """match_prefix descends parent->child over mixed page sizes (full
    pages and promoted tails) and stops at the first gap."""
    pool = PagedKVPool(byte_budget=100_000, page_tokens=4)
    parent = ROOT_CHAIN
    spans = [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]  # 4 + 4 + 2 tokens
    for ids in spans:
        chain = chain_hash(parent, ids)
        pool.acquire(chain, ids, _builder(), parent=parent)
        parent = chain
    matched = pool.match_prefix(list(range(10)) + [99])
    assert [p.token_ids for p in matched] == [tuple(s) for s in spans]
    # A diverging token after the first page stops the walk there.
    assert [p.token_ids for p in pool.match_prefix([0, 1, 2, 3, 99])] == [
        (0, 1, 2, 3)
    ]
    assert pool.match_prefix([7, 7, 7]) == []


# ----------------------------------------------------------------------
# Tentpole (3): double frees raise instead of relaxing the budget.
# ----------------------------------------------------------------------

def test_private_double_free_raises_and_budget_checks_negatives():
    pool = PagedKVPool(byte_budget=10_000, page_tokens=4)
    pool.reserve_private(600, 2_400)
    pool.free_private(600, 2_400)
    with pytest.raises(ValueError, match="double free"):
        pool.free_private(600, 2_400)
    assert pool.private_bytes == 0 and pool.bytes_resident == 0

    pool.reserve_private(500, 2_000)
    with pytest.raises(ValueError, match="double free"):
        pool.swap_private_out(501, 2_004)
    pool.swap_private_out(500, 2_000)
    pool.swap_private_in(500, 2_000)
    with pytest.raises(ValueError, match="double swap-in"):
        pool.swap_private_in(500, 2_000)
    with pytest.raises(ValueError, match="non-negative"):
        pool.free_private(-1, 0)
    pool.check_budget()

    # The swap-in guard is exact, not aggregate: another request's
    # swapped *pages* must not mask a private double swap-in.
    page, _ = pool.acquire(
        chain_hash(ROOT_CHAIN, (1,)), (1,), _builder(800)
    )
    pool.swap_out(page)
    assert pool.bytes_swapped == 800
    pool.reserve_private(100, 400)
    pool.swap_private_out(100, 400)
    pool.swap_private_in(100, 400)
    with pytest.raises(ValueError, match="double swap-in"):
        pool.swap_private_in(100, 400)
    pool.check_budget()

    # check_budget also fails loudly on negative counters (drift that a
    # guard-free path could have caused).
    pool.bytes_swapped = -4
    with pytest.raises(RuntimeError, match="negative"):
        pool.check_budget()


def test_request_kv_release_double_free_raises(parts):
    """A second release() is a loud error — re-running tail promotion
    would register a corrupt zero-byte page into the chain."""
    spec, model, calib = parts
    backend = Fp16KVBackend(1, 32)
    pool = PagedKVPool(byte_budget=10**6, page_tokens=8)
    kv = backend.create_request(pool, np.arange(11))
    hook = kv.prefill_hook()
    rng = np.random.default_rng(3)
    hook("layers.0.k_cache", rng.standard_normal((11, 32)))
    hook("layers.0.v_cache", rng.standard_normal((11, 32)))
    kv.commit_prompt()
    pages_before = pool.stats["pages_allocated"]
    kv.release()
    assert pool.stats["pages_allocated"] == pages_before + 1  # tail page
    with pytest.raises(RuntimeError, match="double free"):
        kv.release()
    with pytest.raises(RuntimeError, match="already released"):
        kv.swap_out()
    assert pool.stats["pages_allocated"] == pages_before + 1
    pool.check_budget()


# ----------------------------------------------------------------------
# Tentpole (2): tail promotion at release, byte-identical.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend_cls", [EccoKVBackend, Fp16KVBackend])
def test_tail_promotion_is_byte_identical_to_fresh_encode(parts, backend_cls):
    """The page promoted from a released request's partial tail holds
    exactly the bytes a fresh encode of the same token rows produces,
    and is addressable by extending the request's hash chain."""
    spec, model, calib = parts
    num_layers, d = 2, 64
    T, P, DECODE = 13, 8, 2
    rng = np.random.default_rng(5)
    prompt = rng.integers(0, 50, size=T)
    backend = backend_cls(num_layers, d, calib)
    pool = PagedKVPool(byte_budget=10**7, page_tokens=P)
    kv = backend.create_request(pool, prompt)
    raw = {
        layer: (
            rng.standard_normal((T + DECODE, d)).astype(np.float32),
            rng.standard_normal((T + DECODE, d)).astype(np.float32),
        )
        for layer in range(num_layers)
    }
    hook = kv.prefill_hook()
    for layer in range(num_layers):
        hook(f"layers.{layer}.k_cache", raw[layer][0][:T])
        hook(f"layers.{layer}.v_cache", raw[layer][1][:T])
    kv.commit_prompt()
    for step in range(DECODE):
        for layer in range(num_layers):
            kv.append_token_layer(
                layer, raw[layer][0][T + step], raw[layer][1][T + step]
            )
        kv.commit_token(90 + step)

    tail_ids = list(prompt[P:]) + [90, 91]
    full_page = kv.pages[0]
    kv.release()
    assert pool.private_bytes == 0 and pool.bytes_active == 0

    # The tail survived as a chain-addressable cached page...
    tail_chain = chain_hash(full_page.chain, tail_ids)
    tail_page = pool.peek(tail_chain)
    assert tail_page is not None
    assert tail_page.token_ids == tuple(tail_ids)
    assert tail_page.parent == full_page.chain
    # ...and a prefix walk over the full history finds everything.
    matched = pool.match_prefix(list(prompt) + [90, 91, 99])
    assert [p.chain for p in matched] == [full_page.chain, tail_chain]

    # Byte identity vs a fresh encode of the same rows.
    for layer in range(num_layers):
        rows_k = raw[layer][0][P:]
        rows_v = raw[layer][1][P:]
        got_k, got_v = tail_page.payload[layer]
        if backend_cls is EccoKVBackend:
            key_codec, value_codec = backend.codecs[layer]
            assert np.array_equal(
                got_k.blocks, key_codec.encode_tokens(rows_k).blocks
            )
            assert np.array_equal(
                got_v.blocks, value_codec.encode_tokens(rows_v).blocks
            )
        else:
            assert np.array_equal(got_k, rows_k.astype(np.float16))
            assert np.array_equal(got_v, rows_v.astype(np.float16))
    pool.check_budget()


# ----------------------------------------------------------------------
# Sessions: cross-turn reuse end to end.
# ----------------------------------------------------------------------

def test_session_turns_attach_full_history_and_stay_bit_exact(parts):
    """Turn N+1 attaches every stored token of turn N (full pages plus
    the promoted tail), forwards only the new suffix, and the decoded KV
    after three turns is bit-exact against one single-stream reference
    fed the recorded raw K/V of all turns."""
    spec, model, calib = parts
    rng = np.random.default_rng(11)
    engine = ServingEngine(
        model,
        calib,
        byte_budget=300_000,
        page_tokens=8,
        record_reference=True,
    )
    session = Session(engine, "chat-0")
    for _ in range(3):
        session.submit_turn(
            rng.integers(0, spec.vocab_size, size=11), max_new_tokens=5
        )
        engine.run()
    first, *rest = session.requests
    assert first.metrics.cached_tokens == 0
    for prev, request in zip(session.requests, rest):
        # The cache held prev's prompt + all generated tokens but the
        # final one (its KV row is never appended); attach got it all.
        assert request.metrics.cached_tokens == prev.kv.num_tokens
        # Re-encoded: the 11 new user tokens plus prev's final generated
        # token (whose KV row a finished decode never appended).
        assert request.prompt_len - request.metrics.cached_tokens == 12
        assert request.metrics.cached_pages > 0
        assert request.session_id == "chat-0"
    report = engine.report(0.0)
    assert report["warm_prefills"] == 2
    assert report["prefix_tokens_reused"] == sum(
        r.metrics.cached_tokens for r in rest
    )
    assert report["pool"]["budget_overruns"] == 0
    assert report["pool"]["shared_fp16_bytes_saved"] > 0
    assert engine.pool.unreachable_cached_pages() == []

    # Bit-exactness: one reference stream per layer over all turns' raw
    # K/V (warm turns record only their forwarded suffix, so the
    # concatenation covers every position exactly once).
    final = session.requests[-1]
    for layer, (key_codec, value_codec) in enumerate(engine.backend.codecs):
        reference = KVCacheStream(key_codec=key_codec, value_codec=value_codec)
        for request in session.requests:
            raw_prompt = request.kv.raw_prompt[layer]
            reference.append_tokens(raw_prompt["keys"], raw_prompt["values"])
            for k_row, v_row in zip(
                request.kv.raw_decode[layer]["keys"],
                request.kv.raw_decode[layer]["values"],
            ):
                reference.append(k_row, v_row)
        assert np.array_equal(reference.read_keys(), final.kv.read(layer, "keys"))
        assert np.array_equal(
            reference.read_values(), final.kv.read(layer, "values")
        )


def test_warm_turns_beat_cold_ttft_under_synchronous_charging(parts):
    """With the engine charging its own virtual clock, a warm turn's
    TTFT (suffix-only prefill) sits well below the cold re-prefill of
    the same conversation on a reuse-disabled engine."""
    spec, model, calib = parts
    traces = generate_sessions(
        seed=7, num_sessions=4, vocab_size=spec.vocab_size, max_turns=4
    )
    reports = {}
    for reuse in (True, False):
        clock = VirtualClock()
        engine = ServingEngine(
            model,
            calib,
            byte_budget=400_000,
            page_tokens=8,
            prefix_reuse=reuse,
            step_cost=StepCostModel(),
            clock=clock,
        )
        replay = replay_sessions(engine, traces, clock)
        assert replay["turns_rejected"] == 0
        summary = summarize_turns(
            [t for s in replay["sessions"] for t in s.turn_reports()]
        )
        assert engine.pool.snapshot()["budget_overruns"] == 0
        reports[reuse] = summary
    warm = reports[True]
    cold = reports[False]
    assert warm["warm_turns"] > 0 and cold["warm_turns"] == 0
    assert warm["prefix_tokens_reused"] > 0
    assert warm["prompt_tokens_reencoded"] < cold["prompt_tokens"]
    # Same turns, same clock model: reuse must cut follow-up TTFT hard.
    assert warm["ttft_s_mean_warm"] < 0.5 * cold["ttft_s_mean_cold"]


def test_session_rejects_overlapping_turns_and_folds_history(parts):
    spec, model, calib = parts
    engine = ServingEngine(model, calib, byte_budget=200_000, page_tokens=8)
    session = Session(engine, "s")
    rng = np.random.default_rng(2)
    first = session.submit_turn(
        rng.integers(0, spec.vocab_size, size=9), max_new_tokens=3
    )
    with pytest.raises(RuntimeError, match="still in flight"):
        session.submit_turn(
            rng.integers(0, spec.vocab_size, size=4), max_new_tokens=2
        )
    engine.run()
    second = session.submit_turn(
        rng.integers(0, spec.vocab_size, size=4), max_new_tokens=2
    )
    want = np.concatenate([first.prompt, np.asarray(first.generated)])
    assert np.array_equal(second.prompt[:-4], want)
    assert second.request_id == "s/turn-1"
    engine.run()


def test_cluster_pins_sessions_to_one_replica(parts):
    spec, model, calib = parts
    clock = VirtualClock()
    engines = [
        ServingEngine(model, calib, byte_budget=200_000, page_tokens=8, clock=clock)
        for _ in range(2)
    ]
    cluster = ClusterRouter(engines)
    traces = generate_sessions(
        seed=9, num_sessions=4, vocab_size=spec.vocab_size, max_turns=4
    )
    replay = replay_sessions(cluster, traces, clock, step_cost=StepCostModel())
    for session in replay["sessions"]:
        assert len({r.replica for r in session.requests}) == 1
    report = cluster.report(clock())
    assert report["routing"]["session_pins"] == len(traces)
    assert report["routing"]["session_hits"] == replay["turns_submitted"] - len(
        traces
    )
    # Follow-up turns landed on the replica holding their history.
    assert report["prefix_tokens_reused"] > 0
    assert report["ttft_s_mean_warm"] is not None


def test_cluster_refuses_self_charging_replicas(parts):
    spec, model, calib = parts
    engine = ServingEngine(
        model, calib, byte_budget=100_000, step_cost=StepCostModel(),
        clock=VirtualClock(),
    )
    with pytest.raises(ValueError, match="serialize"):
        ClusterRouter([engine])


def test_replay_only_swallows_budget_rejections(parts):
    """Re-replaying the same traces against one engine must fail loudly
    on the duplicate request IDs — only capacity rejections
    (BudgetExceededError) are counted as 429-style rejects."""
    spec, model, calib = parts
    traces = generate_sessions(
        seed=13, num_sessions=2, vocab_size=spec.vocab_size, max_turns=3
    )
    clock = VirtualClock()
    engine = ServingEngine(model, calib, byte_budget=300_000, clock=clock)
    first = replay_sessions(engine, traces, clock, step_cost=StepCostModel())
    assert first["turns_rejected"] == 0
    with pytest.raises(ValueError, match="duplicate request_id"):
        replay_sessions(engine, traces, clock, step_cost=StepCostModel())


def test_engine_refuses_step_cost_on_a_wall_clock(parts):
    spec, model, calib = parts
    with pytest.raises(ValueError, match="advanceable clock"):
        ServingEngine(
            model, calib, byte_budget=100_000, step_cost=StepCostModel()
        )
