"""Tier-0 tests for the token-level prefix trie, partial-page splitting
and the cost-aware TTL eviction policy.

The invariants pinned here: (1) the trie's full-page matching agrees
with the legacy chain walk on every query; (2) splitting a page then
re-descending matches at least as much as before, byte-for-byte the
same prefix; (3) split pages are bit-exact vs fresh encodes on both
storage backends and conserve byte totals exactly; (4) TTL expiry never
orphans a cached chain; (5) eviction takes the cheapest leaf first —
minimum ``(1 + hits) * nbytes``, ties least-recently-used; (6) the
incremental leaf index never disagrees with a ground-truth recompute;
(7) the engine's warm partial attach generates exactly the tokens a
cold run would; (8) the cluster's pre-flight batch dedup lands a
shared-prefix group on one replica.
"""

import numpy as np
import pytest

from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.serve import (
    ClusterRouter,
    PagedKVPool,
    ServingEngine,
    chain_hash,
)
from repro.serve.pool import ROOT_CHAIN
from repro.serve.storage import EccoKVBackend, Fp16KVBackend


@pytest.fixture(scope="module")
def parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


PER_TOKEN = 8  # fake payload bytes per token per side
PER_TOKEN_FP16 = 4 * PER_TOKEN


def _token_builder(ids):
    """Fake payload with one (tokens, PER_TOKEN) uint8 array per side,
    so a split is a plain row slice with exact byte conservation."""
    T = len(ids)
    payload = {
        0: (
            np.zeros((T, PER_TOKEN), np.uint8),
            np.zeros((T, PER_TOKEN), np.uint8),
        )
    }
    nbytes = 2 * T * PER_TOKEN
    return lambda: (payload, nbytes, T * PER_TOKEN_FP16)


def _fake_split(payload, head_tokens):
    head_p, tail_p = {}, {}
    head_n = tail_n = 0
    tail_tokens = 0
    for layer, (k, v) in payload.items():
        head_p[layer] = (k[:head_tokens].copy(), v[:head_tokens].copy())
        tail_p[layer] = (k[head_tokens:].copy(), v[head_tokens:].copy())
        head_n += head_p[layer][0].nbytes + head_p[layer][1].nbytes
        tail_n += tail_p[layer][0].nbytes + tail_p[layer][1].nbytes
        tail_tokens = k.shape[0] - head_tokens
    return (
        head_p,
        head_n,
        head_tokens * PER_TOKEN_FP16,
        tail_p,
        tail_n,
        tail_tokens * PER_TOKEN_FP16,
    )


def _grow_chain(pool, token_seq, page_tokens):
    """Acquire whole pages covering ``token_seq``; returns the pages."""
    pages = []
    parent = ROOT_CHAIN
    for j in range(len(token_seq) // page_tokens):
        ids = tuple(token_seq[j * page_tokens : (j + 1) * page_tokens])
        chain = chain_hash(parent, ids)
        page, _ = pool.acquire(chain, ids, _token_builder(ids), parent=parent)
        pages.append(page)
        parent = chain
    return pages


def _check_invariants(pool):
    assert pool.unreachable_cached_pages() == []
    assert pool.leaf_index_violations() == []
    pool.check_budget()


def _random_pool_pair(rng, n_seqs=6, pages_per_seq=3, page_tokens=4):
    """The same random page population in a trie pool and a legacy pool."""
    pools = (
        PagedKVPool(10**9, page_tokens=page_tokens, use_trie=True),
        PagedKVPool(10**9, page_tokens=page_tokens, use_trie=False),
    )
    seqs = []
    for _ in range(n_seqs):
        # Small alphabet: plenty of shared prefixes and branch points.
        seqs.append(rng.integers(0, 3, size=pages_per_seq * page_tokens))
    for pool in pools:
        for seq in seqs:
            for page in _grow_chain(pool, seq, page_tokens):
                pool.release(page)
    return pools, seqs


def test_trie_matches_chain_walk_on_full_pages():
    rng = np.random.default_rng(11)
    for round_ in range(10):
        (trie_pool, walk_pool), seqs = _random_pool_pair(rng)
        for _ in range(20):
            query = rng.integers(0, 3, size=int(rng.integers(1, 16)))
            a = trie_pool.match_prefix(query)
            b = walk_pool.match_prefix(query)
            # Page-boundary (full-page) matches must agree exactly.
            assert [p.token_ids for p in a] == [p.token_ids for p in b]
        _check_invariants(trie_pool)
        _check_invariants(walk_pool)


def test_split_then_descend_extends_the_match():
    rng = np.random.default_rng(23)
    for round_ in range(20):
        (pool, _), seqs = _random_pool_pair(rng)
        query = rng.integers(0, 3, size=int(rng.integers(2, 16)))
        before = pool.lookup_prefix(query)
        covered = [
            t for page in before.pages for t in page.token_ids
        ]
        assert covered == list(query[: before.full_tokens])
        if before.partial is None:
            continue
        split = pool.split_page(
            before.partial, before.partial_tokens, _fake_split
        )
        assert split is not None
        head, tail = split
        assert head.num_tokens == before.partial_tokens
        assert head.num_tokens + tail.num_tokens == (
            before.partial.num_tokens
        )
        after = pool.lookup_prefix(query)
        # The shared head now full-matches: coverage can only grow, and
        # it still covers exactly a prefix of the query.
        assert after.full_tokens >= before.matched_tokens
        covered = [t for page in after.pages for t in page.token_ids]
        assert covered == list(query[: after.full_tokens])
        _check_invariants(pool)


def test_split_conserves_bytes_and_reparents_children():
    pool = PagedKVPool(10**9, page_tokens=4, use_trie=True)
    seq = np.array([0, 1, 2, 3, 4, 5, 6, 7])
    pages = _grow_chain(pool, seq, 4)
    for page in pages:
        pool.release(page)
    resident_before = pool.bytes_resident
    evictable_before = pool.bytes_evictable
    head, tail = pool.split_page(pages[0], 3, _fake_split)
    assert pool.bytes_resident == resident_before
    assert pool.bytes_evictable == evictable_before
    assert head.token_ids == (0, 1, 2)
    assert tail.token_ids == (3,)
    # The old second page hangs off the tail now — still reachable.
    child = pool.peek(pages[1].chain)
    assert child is not None and child.parent == tail.chain
    match = pool.match_prefix(seq)
    assert [p.token_ids for p in match] == [(0, 1, 2), (3,), (4, 5, 6, 7)]
    _check_invariants(pool)


def test_split_refuses_pinned_and_swapped_pages():
    pool = PagedKVPool(10**9, page_tokens=4, use_trie=True)
    (page,) = _grow_chain(pool, np.arange(4), 4)
    # Pinned: a live tenant holds the page object itself.
    assert pool.split_page(page, 2, _fake_split) is None
    pool.release(page)
    assert pool.split_page(page, 2, _fake_split) is not None
    _check_invariants(pool)


@pytest.mark.parametrize("backend_cls", [EccoKVBackend, Fp16KVBackend])
def test_split_pages_bit_exact_vs_fresh_encode(parts, backend_cls):
    spec, model, calib = parts
    backend = backend_cls(spec.num_layers, spec.d_model, calib)
    rng = np.random.default_rng(3)
    rows = {
        (layer, side): rng.normal(size=(10, spec.d_model)).astype(np.float32)
        for layer in range(spec.num_layers)
        for side in ("keys", "values")
    }
    if backend.name == "ecco":
        def encode(layer, side, x):
            k_codec, v_codec = backend.codecs[layer]
            codec = k_codec if side == "keys" else v_codec
            return codec.encode_tokens(x)

        def same(a, b):
            return np.array_equal(a.blocks, b.blocks)
    else:
        def encode(layer, side, x):
            return x.astype(np.float16)

        def same(a, b):
            return np.array_equal(a, b)

    payload = {
        layer: (
            encode(layer, "keys", rows[(layer, "keys")]),
            encode(layer, "values", rows[(layer, "values")]),
        )
        for layer in range(spec.num_layers)
    }
    total = sum(
        backend.segment_nbytes(seg)
        for pair in payload.values()
        for seg in pair
    )
    for cut in (1, 4, 9):
        head_p, head_n, head_f, tail_p, tail_n, tail_f = (
            backend.split_page_payload(payload, cut)
        )
        assert head_n + tail_n == total
        assert head_f == cut * backend.per_token_fp16_nbytes
        assert tail_f == (10 - cut) * backend.per_token_fp16_nbytes
        for layer in range(spec.num_layers):
            for pair_i, side in ((0, "keys"), (1, "values")):
                fresh_head = encode(layer, side, rows[(layer, side)][:cut])
                fresh_tail = encode(layer, side, rows[(layer, side)][cut:])
                assert same(head_p[layer][pair_i], fresh_head)
                assert same(tail_p[layer][pair_i], fresh_tail)


def test_ttl_expiry_never_orphans_a_chain():
    clock = FakeClock()
    pool = PagedKVPool(
        10**9, page_tokens=4, use_trie=True, ttl_s=10.0, clock=clock
    )
    rng = np.random.default_rng(5)
    live = []
    for i in range(4):
        seq = rng.integers(0, 3, size=12)
        pages = _grow_chain(pool, seq, 4)
        clock.advance(1.0)
        if i % 2:
            live.extend(pages)  # stays pinned: TTL must not touch it
        else:
            for page in pages:
                pool.release(page)
    clock.advance(20.0)
    evicted = pool.expire_ttl()
    assert evicted == pool.stats["evictions_ttl"]
    # Everything unpinned and stale is gone; nothing pinned was touched.
    assert pool.num_cached_pages == 0
    assert all(pool.peek(page.chain) is page for page in live)
    _check_invariants(pool)
    # A fresh release re-caches with a fresh timestamp: no instant expiry.
    for page in live:
        pool.release(page)
    assert pool.expire_ttl() == 0
    assert pool.num_cached_pages == len(live)
    clock.advance(11.0)
    pool.expire_ttl()
    assert pool.num_cached_pages == 0
    _check_invariants(pool)


def test_cost_weighted_victim_ordering():
    clock = FakeClock()
    pool = PagedKVPool(10**9, page_tokens=4, use_trie=True, clock=clock)

    def root_page(ids, extra_hits=0):
        chain = chain_hash(ROOT_CHAIN, ids)
        page, _ = pool.acquire(chain, ids, _token_builder(ids))
        for _ in range(extra_hits):
            again, shared = pool.acquire(chain, ids, _token_builder(ids))
            assert shared
            pool.release(again)
        clock.advance(1.0)
        pool.release(page)
        return page

    # Scores: (1 + hits) * nbytes.  One token = 16 B payload here.
    cheap = root_page((1, 2))            # 32 B, 0 hits -> score 32
    hot = root_page((3, 4))              # 32 B, 2 hits -> score 96
    big = root_page((5, 6, 7, 8, 9, 10, 11, 12))  # 128 B, 0 hits -> 128
    # Re-pin `hot` twice to raise its hit count (score 3 * 64 = 192).
    for _ in range(2):
        again, shared = pool.acquire(
            hot.chain, hot.token_ids, _token_builder(hot.token_ids)
        )
        assert shared
        clock.advance(1.0)
        pool.release(again)
    # A tie on score with `cheap`: same bytes, same hits, later release.
    tied = root_page((13, 14))
    order = []
    while pool.num_cached_pages:
        victim = pool._pick_eviction_victim()
        pool._evict_page(victim)
        order.append(victim.page_id)
        _check_invariants(pool)
    # cheap before tied (same score, younger), then hot, then big.
    assert order == [cheap.page_id, tied.page_id, hot.page_id, big.page_id]
    assert pool.stats["evictions_pressure"] == 4


def test_leaf_index_tracks_random_operations():
    rng = np.random.default_rng(17)
    clock = FakeClock()
    pool = PagedKVPool(
        60_000, page_tokens=4, use_trie=True, ttl_s=50.0, clock=clock
    )
    held = []
    for _ in range(200):
        op = rng.integers(0, 4)
        clock.advance(1.0)
        if op == 0:
            seq = rng.integers(0, 3, size=int(rng.integers(1, 4)) * 4)
            held.extend(_grow_chain(pool, seq, 4))
        elif op == 1 and held:
            pool.release(held.pop(int(rng.integers(len(held)))))
        elif op == 2:
            query = rng.integers(0, 3, size=int(rng.integers(2, 12)))
            found = pool.lookup_prefix(query)
            if found.partial is not None:
                pool.split_page(
                    found.partial, found.partial_tokens, _fake_split
                )
        else:
            pool.expire_ttl()
        _check_invariants(pool)
    for page in held:
        pool.release(page)
    _check_invariants(pool)


def test_engine_partial_attach_matches_cold_generation(parts):
    spec, model, calib = parts
    rng = np.random.default_rng(29)
    shared = rng.integers(0, spec.vocab_size, size=28)
    prompts = [
        np.concatenate(
            [shared, rng.integers(0, spec.vocab_size, size=12)]
        )
        for _ in range(2)
    ]

    def run(prefix_trie):
        engine = ServingEngine(
            model,
            calib,
            byte_budget=2_000_000,
            page_tokens=32,
            prefix_trie=prefix_trie,
        )
        outs = []
        for prompt in prompts:
            request = engine.submit(prompt, 4)
            while engine.has_work:
                engine.step()
            outs.append(list(request.generated))
        return engine, outs

    trie_engine, trie_outs = run(True)
    walk_engine, walk_outs = run(False)
    # Bit-exact storage means the warm request decodes exactly what the
    # cold run decodes — identical logits, identical tokens.
    assert trie_outs == walk_outs
    report = trie_engine.report(1.0)
    assert report["prefix_tokens_reused"] == 28
    assert report["prefix_partial_attaches"] == 1
    assert report["split_tokens_salvaged"] == 28
    assert report["pool"]["pages_split"] == 1
    assert report["pool"]["prefix_partial_hits"] == 1
    assert report["pool"]["matched_prefix_hist"] == {"16-31": 1}
    assert walk_engine.report(1.0)["prefix_tokens_reused"] == 0
    second = trie_engine.requests[1]
    assert second.metrics.split_tokens == 28
    assert second.metrics.cached_tokens == 28
    _check_invariants(trie_engine.pool)


def test_cluster_batch_dedup_groups_shared_prefixes(parts):
    spec, model, calib = parts
    rng = np.random.default_rng(31)
    engines = [
        ServingEngine(
            model, calib, byte_budget=2_000_000, page_tokens=8
        )
        for _ in range(2)
    ]
    cluster = ClusterRouter(engines)
    shared = rng.integers(0, spec.vocab_size, size=16)
    group = [
        {
            "prompt": np.concatenate(
                [shared, rng.integers(0, spec.vocab_size, size=4)]
            ),
            "max_new_tokens": 2,
        }
        for _ in range(3)
    ]
    lone = {
        "prompt": rng.integers(0, spec.vocab_size, size=20),
        "max_new_tokens": 2,
    }
    requests = cluster.submit_batch(group + [lone])
    assert len(requests) == 4
    replicas = {r.replica for r in requests[:3]}
    assert len(replicas) == 1  # the shared-prefix group stays together
    assert cluster.stats["dedup_groups"] == 1
    assert cluster.stats["dedup_grouped"] == 3
    while cluster.has_work:
        cluster.step()
    report = cluster.report(1.0)
    assert report["routing"]["dedup_groups"] == 1
    # Grouping paid off: the later members attached the shared prefix.
    assert report["prefix_tokens_reused"] > 0
