"""Tier-0 codec invariants: fast unit tests with no trained models.

These guard the properties the whole reproduction rests on: the block
format is exactly 64 bytes, encode/decode is bit-exact with the vectorized
fast path, the metadata accounting is consistent, and the KV stream
delivers its 4x capacity win.
"""

import numpy as np
import pytest

from repro.core import (
    KV_CONFIG,
    WEIGHT_CONFIG,
    EccoTensorCodec,
    KVCacheCodec,
    KVCacheStream,
    calibrate_kv_meta,
    compress_weight,
    fit_tensor_meta,
    simulate_roundtrip,
    to_groups,
)


@pytest.fixture(scope="module")
def weight_tensor():
    rng = np.random.default_rng(42)
    scales = np.exp(rng.normal(0.0, 0.7, size=(64, 1)))
    return (rng.standard_t(df=5, size=(64, 512)) * scales * 0.02).astype(np.float32)


@pytest.fixture(scope="module")
def weight_meta(weight_tensor):
    return fit_tensor_meta(weight_tensor, max_calibration_groups=256)


def test_blocks_are_64_bytes(weight_meta, weight_tensor):
    compressed = EccoTensorCodec(weight_meta).encode(weight_tensor)
    assert compressed.blocks.shape == (weight_tensor.size // 128, 64)
    assert compressed.blocks.dtype == np.uint8
    assert compressed.nbytes == compressed.num_groups * 64


def test_compression_ratio_is_4x(weight_meta, weight_tensor):
    compressed = EccoTensorCodec(weight_meta).encode(weight_tensor)
    assert compressed.compression_ratio == pytest.approx(4.0)


def test_encode_decode_bit_exact_with_fast_path(weight_meta, weight_tensor):
    codec = EccoTensorCodec(weight_meta)
    decoded = codec.decode(codec.encode(weight_tensor))
    sim = simulate_roundtrip(weight_meta, weight_tensor)
    assert np.array_equal(decoded, sim.values)
    assert decoded.shape == weight_tensor.shape


def test_roundtrip_reduces_to_quantization_error(weight_meta, weight_tensor):
    sim = simulate_roundtrip(weight_meta, weight_tensor)
    rel_rms = np.sqrt(np.mean((sim.values - weight_tensor) ** 2)) / np.std(
        weight_tensor
    )
    assert rel_rms < 0.3  # 15-level quantization + outlier padding


def test_metadata_bits_accounting(weight_meta):
    config = weight_meta.config
    expected = (
        weight_meta.patterns.size * 16
        + weight_meta.codebook_lengths.size * 4
        + 8
        + 16
    )
    assert weight_meta.metadata_bits() == expected
    assert weight_meta.patterns.shape == (config.num_patterns, 15)
    assert weight_meta.codebook_lengths.shape == (config.num_codebooks, 15)


def test_patterns_sorted_and_in_range(weight_meta):
    assert np.all(np.diff(weight_meta.patterns, axis=1) >= 0)
    assert np.all(weight_meta.patterns >= -1.0)
    assert np.all(weight_meta.patterns <= 1.0)


def test_huffman_codebooks_kraft_valid(weight_meta):
    lengths = weight_meta.codebook_lengths.astype(np.float64)
    kraft = np.sum(2.0**-lengths, axis=1)
    assert np.all(kraft <= 1.0 + 1e-12)
    assert np.all(weight_meta.codebook_lengths >= 1)
    assert np.all(weight_meta.codebook_lengths <= weight_meta.config.max_code_len)


def test_budget_never_exceeded(weight_meta, weight_tensor):
    """Every block's payload must fit: header + codes + outliers <= 512."""
    from repro.core import plan_encoding

    plan = plan_encoding(weight_meta, weight_tensor)
    config = weight_meta.config
    lengths = weight_meta.codebook_lengths.astype(np.int64)
    for g in range(plan.num_groups):
        coded = plan.symbols[g] != 15
        bits = int(lengths[plan.codebook_ids[g]][plan.symbols[g][coded]].sum())
        bits += config.header_bits
        bits += int((plan.corrections[g] != 0).sum()) * config.outlier_bits
        assert bits <= config.block_bits, g


def test_partial_group_padding():
    rng = np.random.default_rng(3)
    tensor = rng.standard_normal(200).astype(np.float32)  # not a multiple of 128
    groups, pad = to_groups(tensor, 128)
    assert groups.shape == (2, 128)
    assert pad == 56
    meta = fit_tensor_meta(tensor)
    codec = EccoTensorCodec(meta)
    decoded = codec.decode(codec.encode(tensor))
    assert decoded.shape == tensor.shape


def test_kv_stream_compression_ratio():
    rng = np.random.default_rng(7)
    meta = calibrate_kv_meta(rng.standard_normal((64, 128)), seed=0)
    codec = KVCacheCodec(meta)
    stream = KVCacheStream(key_codec=codec, value_codec=codec)
    steps, dim = 24, 128
    keys = rng.standard_normal((steps, dim))
    values = rng.standard_normal((steps, dim))
    for i in range(steps):
        stream.append(keys[i], values[i])
    assert len(stream) == steps
    assert stream.compression_ratio == pytest.approx(4.0)
    restored = stream.read_keys().reshape(steps, dim)
    err = np.sqrt(np.mean((restored - keys) ** 2)) / np.std(keys)
    assert err < 0.35


def test_kv_codec_requires_minmax_meta():
    rng = np.random.default_rng(9)
    meta = fit_tensor_meta(rng.standard_normal((32, 128)), config=WEIGHT_CONFIG)
    with pytest.raises(ValueError):
        KVCacheCodec(meta)


def test_compress_weight_one_call():
    rng = np.random.default_rng(11)
    weight = (rng.standard_t(df=5, size=(32, 256)) * 0.02).astype(np.float32)
    compressed, meta = compress_weight(weight)
    assert compressed.num_groups == weight.size // 128
    decoded = EccoTensorCodec(meta).decode(compressed)
    assert decoded.shape == weight.shape


def test_kv_config_uses_minmax_selection():
    assert KV_CONFIG.pattern_select == "minmax"
    assert KV_CONFIG.num_patterns == 16
    assert WEIGHT_CONFIG.pattern_select == "mse"
    assert WEIGHT_CONFIG.num_patterns == 64
