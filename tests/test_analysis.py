"""Tier-0 tests for ``repro.analysis``.

Fixture snippets exercise a true positive *and* a near-miss negative for
every rule family, plus the suppression and baseline machinery; the
meta-test at the bottom runs the real analyzer over the live tree and
asserts it is clean modulo the checked-in ``analysis-baseline.json`` —
so the tier-1 suite itself enforces the architecture contract.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Severity,
    analyze_paths,
    analyze_source,
    apply_baseline,
    iter_rules,
    load_baseline,
    write_baseline,
)
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A path that puts fixtures inside the shipped package (most rules).
SRC = "src/repro/core/_fixture.py"


def rules_of(findings):
    return sorted(f.rule for f in findings)


def check(source: str, relpath: str = SRC):
    return analyze_source(textwrap.dedent(source), relpath)


# ----------------------------------------------------------------------
# LAY — layering matrix.
# ----------------------------------------------------------------------
class TestLayering:
    def test_core_importing_serve_is_flagged(self):
        findings = check("from repro.serve.pool import PagedKVPool\n")
        assert rules_of(findings) == ["LAY001"]
        assert "layer 'core'" in findings[0].message

    def test_llm_importing_serve_is_flagged(self):
        findings = check(
            "import repro.serve\n", "src/repro/llm/_fixture.py"
        )
        assert rules_of(findings) == ["LAY001"]

    def test_relative_import_crossing_layers_is_flagged(self):
        # quant reaching into llm via a relative climb.
        findings = check(
            "from ..llm import model\n", "src/repro/quant/_fixture.py"
        )
        assert rules_of(findings) == ["LAY001"]

    def test_relative_escape_of_the_package_is_flagged(self):
        findings = check(
            "from ...outside import thing\n", "src/repro/core/_fixture.py"
        )
        assert rules_of(findings) == ["LAY001"]
        assert "climbs out" in findings[0].message

    def test_declared_dependencies_pass(self):
        findings = check(
            """
            from repro.core import EccoConfig
            from repro.quant import uniform_quantize
            from .config import ProxySpec
            """,
            "src/repro/llm/_fixture.py",
        )
        assert findings == []

    def test_function_local_import_is_still_a_dependency(self):
        findings = check(
            """
            def lazy():
                from repro.llm import ProxyModel
                return ProxyModel
            """,
            "src/repro/core/_fixture.py",
        )
        assert rules_of(findings) == ["LAY001"]

    def test_undeclared_module_is_flagged(self):
        findings = check("import repro.mystery_layer\n")
        assert rules_of(findings) == ["LAY001"]
        assert "no declared layer" in findings[0].message

    def test_outside_the_package_no_layer_rules(self):
        findings = check(
            "from repro.serve.pool import PagedKVPool\n",
            "tests/_fixture.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# DET — determinism.
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_wall_clock_call_is_flagged(self):
        findings = check("import time\nnow = time.time()\n")
        assert rules_of(findings) == ["DET001"]

    def test_wall_clock_reference_without_call_is_flagged(self):
        # The actual bug shipped in pool.py: a default argument.
        findings = check(
            """
            import time
            def f(clock=time.monotonic):
                return clock()
            """
        )
        assert rules_of(findings) == ["DET001"]

    def test_datetime_now_is_flagged(self):
        findings = check(
            "import datetime\nstamp = datetime.datetime.now()\n"
        )
        assert rules_of(findings) == ["DET001"]

    def test_from_import_of_wall_clock_is_flagged(self):
        findings = check("from time import perf_counter\n")
        assert rules_of(findings) == ["DET001"]

    def test_timing_module_is_the_allowlist(self):
        findings = check(
            "import time\n\ndef wall_clock():\n    return time.perf_counter()\n",
            "src/repro/obs/timing.py",
        )
        assert findings == []

    def test_benchmarks_must_also_use_the_helper(self):
        findings = check(
            "import time\nstart = time.perf_counter()\n",
            "benchmarks/bench_fixture.py",
        )
        assert rules_of(findings) == ["DET001"]

    def test_time_sleep_is_not_wall_clock(self):
        findings = check("import time\ntime.sleep(0.0)\n")
        assert findings == []

    def test_legacy_np_random_is_flagged(self):
        findings = check(
            "import numpy as np\nx = np.random.rand(4)\n"
        )
        assert rules_of(findings) == ["DET002"]

    def test_np_random_seed_is_flagged(self):
        findings = check("import numpy as np\nnp.random.seed(0)\n")
        assert rules_of(findings) == ["DET002"]

    def test_default_rng_and_generator_annotations_pass(self):
        findings = check(
            """
            import numpy as np
            def f(rng: np.random.Generator):
                return rng.normal()
            rng = np.random.default_rng(7)
            """
        )
        assert findings == []

    def test_stdlib_global_random_is_flagged(self):
        findings = check("import random\nrandom.seed(1)\n")
        assert rules_of(findings) == ["DET002"]

    def test_explicit_random_instance_passes(self):
        findings = check(
            "import random\nrng = random.Random(7)\nrng.shuffle([1])\n"
        )
        assert findings == []

    def test_environ_read_in_repro_is_flagged(self):
        findings = check("import os\nv = os.environ.get('X')\n")
        assert rules_of(findings) == ["DET003"]

    def test_getenv_in_repro_is_flagged(self):
        findings = check("import os\nv = os.getenv('X')\n")
        assert rules_of(findings) == ["DET003"]

    def test_environ_outside_repro_passes(self):
        findings = check(
            "import os\nv = os.environ.get('X')\n", "tests/_fixture.py"
        )
        assert findings == []


# ----------------------------------------------------------------------
# ASY — async safety.
# ----------------------------------------------------------------------
class TestAsyncSafety:
    def test_time_sleep_in_async_def_is_flagged(self):
        findings = check(
            """
            import time
            async def pump():
                time.sleep(0.1)
            """
        )
        assert rules_of(findings) == ["ASY001"]

    def test_sync_open_in_async_def_is_flagged(self):
        findings = check(
            """
            async def dump(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        assert rules_of(findings) == ["ASY001"]

    def test_path_io_in_async_def_is_flagged(self):
        findings = check(
            """
            async def dump(path):
                return path.read_text()
            """
        )
        assert rules_of(findings) == ["ASY001"]

    def test_awaited_asyncio_sleep_passes(self):
        findings = check(
            """
            import asyncio
            async def pump():
                await asyncio.sleep(0)
            """
        )
        assert findings == []

    def test_nested_sync_def_is_not_the_coroutines_problem(self):
        findings = check(
            """
            import time
            async def outer():
                def helper():
                    time.sleep(0.1)
                return helper
            """
        )
        assert findings == []

    def test_unawaited_coroutine_call_is_flagged(self):
        findings = check(
            """
            async def job():
                return 1
            async def caller():
                job()
            """
        )
        assert rules_of(findings) == ["ASY002"]

    def test_unawaited_method_coroutine_is_flagged(self):
        findings = check(
            """
            class Engine:
                async def pump(self):
                    return 1
            def driver(engine):
                engine.pump()
            """
        )
        assert rules_of(findings) == ["ASY002"]

    def test_awaited_and_scheduled_calls_pass(self):
        findings = check(
            """
            import asyncio
            async def job():
                return 1
            async def caller():
                await job()
                task = asyncio.create_task(job())
                await task
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# INV — invariant discipline.
# ----------------------------------------------------------------------
class TestInvariants:
    POOL = """
        class Pool:
            def __init__(self):
                self.bytes_resident = 0
                self.peak = 0
            def _bump(self, n):
                self.bytes_resident += n
                self.peak = max(self.peak, self.bytes_resident)
            def alloc(self, n):
                {body}
    """

    def test_direct_counter_mutation_is_flagged(self):
        findings = check(
            textwrap.dedent(self.POOL).format(body="self.bytes_resident += n")
        )
        assert rules_of(findings) == ["INV001"]
        assert "_bump" in findings[0].message

    def test_mutation_via_bump_passes(self):
        findings = check(
            textwrap.dedent(self.POOL).format(body="self._bump(n)")
        )
        assert findings == []

    def test_classes_without_bump_are_unconstrained(self):
        findings = check(
            """
            class Counter:
                def __init__(self):
                    self.bytes_resident = 0
                def add(self, n):
                    self.bytes_resident += n
            """
        )
        assert findings == []

    def test_bare_except_is_flagged(self):
        findings = check(
            """
            try:
                risky()
            except:
                pass
            """,
            "benchmarks/_fixture.py",
        )
        assert rules_of(findings) == ["INV002"]

    def test_typed_except_passes(self):
        findings = check(
            """
            try:
                risky()
            except ValueError:
                pass
            """,
            "benchmarks/_fixture.py",
        )
        assert findings == []

    def test_swallowed_shed_error_is_flagged(self):
        findings = check(
            """
            try:
                submit()
            except BudgetExceededError:
                pass
            """,
            "tests/_fixture.py",
        )
        assert rules_of(findings) == ["INV003"]

    def test_shed_error_with_counter_bump_passes(self):
        findings = check(
            """
            counts = {}
            try:
                submit()
            except RequestShedError:
                counts["shed"] += 1
            """,
            "tests/_fixture.py",
        )
        assert findings == []

    def test_shed_error_reraised_passes(self):
        findings = check(
            """
            try:
                submit()
            except BudgetExceededError:
                raise
            """,
            "tests/_fixture.py",
        )
        assert findings == []

    def test_mutable_default_in_repro_is_flagged(self):
        findings = check("def f(items=[]):\n    return items\n")
        assert rules_of(findings) == ["INV004"]

    def test_mutable_default_call_is_flagged(self):
        findings = check("def f(items=dict()):\n    return items\n")
        assert rules_of(findings) == ["INV004"]

    def test_none_default_passes(self):
        findings = check("def f(items=None):\n    return items or []\n")
        assert findings == []


# ----------------------------------------------------------------------
# NUM — numeric hygiene.
# ----------------------------------------------------------------------
class TestNumerics:
    def test_sum_over_dict_values_is_flagged(self):
        findings = check("total = sum(weights.values())\n")
        assert rules_of(findings) == ["NUM001"]
        assert findings[0].severity is Severity.WARNING

    def test_sum_over_set_is_flagged(self):
        findings = check("total = sum(set(samples))\n")
        assert rules_of(findings) == ["NUM001"]

    def test_genexp_over_values_is_flagged(self):
        findings = check(
            "total = sum(v * 2 for v in weights.values())\n"
        )
        assert rules_of(findings) == ["NUM001"]

    def test_sorted_sum_passes(self):
        findings = check("total = sum(sorted(weights.values()))\n")
        assert findings == []

    def test_outside_numeric_paths_not_flagged(self):
        findings = check(
            "total = sum(weights.values())\n", "src/repro/serve/engine.py"
        )
        assert findings == []

    def test_warnings_do_not_gate_without_strict(self, tmp_path):
        fixture = tmp_path / "src" / "repro" / "core" / "x.py"
        fixture.parent.mkdir(parents=True)
        fixture.write_text("total = sum(w.values())\n")
        assert analysis_main(["src", "--root", str(tmp_path)]) == 0
        assert analysis_main(["src", "--root", str(tmp_path), "--strict"]) == 1


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------
class TestSuppression:
    def test_rule_scoped_suppression(self):
        findings = check(
            "import time\n"
            "now = time.time()  # repro: ignore[DET001] -- fixture\n"
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = check(
            "import time\nnow = time.time()  # repro: ignore[DET002]\n"
        )
        assert rules_of(findings) == ["DET001"]

    def test_bare_ignore_suppresses_everything_on_the_line(self):
        findings = check(
            "import time\nnow = time.time()  # repro: ignore\n"
        )
        assert findings == []

    def test_suppression_is_line_scoped(self):
        findings = check(
            """
            import time
            a = time.time()  # repro: ignore[DET001]
            b = time.time()
            """
        )
        assert rules_of(findings) == ["DET001"]

    def test_multi_rule_suppression(self):
        findings = check(
            "import os, time\n"
            "x = (time.time(), os.environ)  # repro: ignore[DET001, DET003]\n"
        )
        assert findings == []


# ----------------------------------------------------------------------
# Baseline round-trip + CLI.
# ----------------------------------------------------------------------
class TestBaseline:
    def _tree(self, tmp_path: Path) -> Path:
        fixture = tmp_path / "src" / "repro" / "core" / "x.py"
        fixture.parent.mkdir(parents=True)
        fixture.write_text("import time\nnow = time.time()\n")
        return tmp_path

    def test_round_trip_masks_grandfathered_findings(self, tmp_path):
        root = self._tree(tmp_path)
        findings = analyze_paths(["src"], root)
        assert rules_of(findings) == ["DET001"]

        baseline_file = root / "analysis-baseline.json"
        write_baseline(baseline_file, findings, reason="fixture")
        entries = load_baseline(baseline_file)
        fresh, stale = apply_baseline(analyze_paths(["src"], root), entries)
        assert fresh == [] and stale == []

    def test_baseline_survives_line_drift_but_not_new_findings(self, tmp_path):
        root = self._tree(tmp_path)
        baseline_file = root / "analysis-baseline.json"
        write_baseline(baseline_file, analyze_paths(["src"], root))
        fixture = root / "src" / "repro" / "core" / "x.py"
        # Push the grandfathered line down AND add a fresh violation.
        fixture.write_text(
            "import time\n\n\nnow = time.time()\nlater = time.monotonic()\n"
        )
        fresh, _ = apply_baseline(
            analyze_paths(["src"], root), load_baseline(baseline_file)
        )
        assert len(fresh) == 1
        assert "time.monotonic" in fresh[0].message

    def test_stale_entries_are_reported(self, tmp_path):
        root = self._tree(tmp_path)
        baseline_file = root / "analysis-baseline.json"
        write_baseline(baseline_file, analyze_paths(["src"], root))
        (root / "src" / "repro" / "core" / "x.py").write_text("x = 1\n")
        fresh, stale = apply_baseline(
            analyze_paths(["src"], root), load_baseline(baseline_file)
        )
        assert fresh == [] and len(stale) == 1

    def test_cli_exit_codes_and_json_output(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        out_file = root / "findings.json"
        rc = analysis_main(
            [
                "src",
                "--root", str(root),
                "--format", "json",
                "--output", str(out_file),
            ]
        )
        assert rc == 1
        doc = json.loads(out_file.read_text())
        assert doc["summary"]["errors"] == 1
        assert doc["findings"][0]["rule"] == "DET001"
        printed = json.loads(capsys.readouterr().out)
        assert printed == doc

        # Baselining the finding turns the same invocation green.
        rc = analysis_main(["src", "--root", str(root), "--write-baseline"])
        assert rc == 0
        assert analysis_main(["src", "--root", str(root)]) == 0

    def test_corrupt_baseline_is_a_usage_error(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        (root / "analysis-baseline.json").write_text("{not json")
        rc = analysis_main(["src", "--root", str(root)])
        assert rc == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        rc = analysis_main(["nonexistent", "--root", str(tmp_path)])
        assert rc == 2


# ----------------------------------------------------------------------
# The analyzer itself + the live tree.
# ----------------------------------------------------------------------
class TestMeta:
    def test_every_rule_family_is_registered(self):
        from repro.analysis import iter_project_rules

        ids = {rule.rule_id for rule in iter_rules()}
        ids |= {rule.rule_id for rule in iter_project_rules()}
        for family in ("LAY", "DET", "ASY", "INV", "NUM", "LIF", "AWA", "SEE"):
            assert any(i.startswith(family) for i in ids), family

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = check("def broken(:\n", "tests/_fixture.py")
        assert rules_of(findings) == ["PARSE"]

    def test_live_tree_is_clean_modulo_baseline(self):
        """The architecture contract, enforced by the tier-1 suite.

        Every finding must be fixed, inline-suppressed with a reason,
        or grandfathered (with a reason) in analysis-baseline.json.
        """
        findings = analyze_paths(["src", "tests", "benchmarks"], REPO_ROOT)
        entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
        fresh, stale = apply_baseline(findings, entries)
        errors = [f for f in fresh if f.severity is Severity.ERROR]
        assert not errors, "new findings:\n" + "\n".join(
            f.format() for f in errors
        )
        assert not stale, "stale baseline entries:\n" + "\n".join(
            f"{e.rule} {e.path} {e.snippet!r}" for e in stale
        )

    def test_live_baseline_entries_all_carry_reasons(self):
        entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
        assert all(e.reason for e in entries)

    def test_cli_against_live_tree_exits_zero(self):
        rc = analysis_main(
            ["src", "tests", "benchmarks", "--root", str(REPO_ROOT)]
        )
        assert rc == 0
