"""The benchmark result cache must reject stale-schema entries.

A cache entry written before a codec change would silently serve numbers
the current code cannot reproduce; the schema stamp turns that into a
recompute.  (``_report`` resolves through the ``benchmarks`` pythonpath
entry, same as the bench suite.)
"""

import json

import pytest

from _report import CACHE_SCHEMA_VERSION, load_cached, results_dir, store_cached


@pytest.fixture
def cache_tag(tmp_path_factory):
    tag = "test_report_cache_entry"
    yield tag
    path = results_dir() / "cache" / f"{tag}.json"
    if path.exists():
        path.unlink()


def test_store_load_roundtrip(cache_tag):
    store_cached(cache_tag, {"value": 41})
    assert load_cached(cache_tag) == {"value": 41}
    blob = json.loads((results_dir() / "cache" / f"{cache_tag}.json").read_text())
    assert blob["schema"] == CACHE_SCHEMA_VERSION


def test_missing_entry_is_none(cache_tag):
    assert load_cached(cache_tag) is None


def test_legacy_unstamped_entry_is_stale(cache_tag):
    path = results_dir() / "cache" / f"{cache_tag}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"value": 41}))  # pre-schema format
    assert load_cached(cache_tag) is None


def test_wrong_schema_version_is_stale(cache_tag):
    path = results_dir() / "cache" / f"{cache_tag}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"schema": CACHE_SCHEMA_VERSION + 1, "data": {"value": 41}})
    )
    assert load_cached(cache_tag) is None


def test_corrupt_entry_is_stale(cache_tag):
    path = results_dir() / "cache" / f"{cache_tag}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json")
    assert load_cached(cache_tag) is None
