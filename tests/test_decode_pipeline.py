"""Tier-0 tests for the batched, cached decode pipeline.

Covers the PR-2 guarantees: the vectorized word-level block packing is
byte-identical to the scalar reference, the rate control always emits a
packable block (force-shortest-codes fallback), the bit path agrees with
the fast path on padded (non-multiple-of-128) tensors for every config
preset, the batched token path emits the same blocks as the one-token
loop, and KV stream reads decode each token exactly once.
"""

import numpy as np
import pytest

from repro.core import (
    ACT_CONFIG,
    KV_CONFIG,
    WEIGHT_CONFIG,
    EccoTensorCodec,
    KVCacheCodec,
    KVCacheStream,
    SCALE_SYMBOL,
    TensorMeta,
    calibrate_kv_meta,
    fit_tensor_meta,
    plan_encoding,
    simulate_roundtrip,
)
from repro.core.blocks import (
    decode_tables,
    pack_block,
    pack_blocks,
    unpack_block,
    unpack_blocks,
)


@pytest.fixture(scope="module")
def weight_setup():
    rng = np.random.default_rng(31)
    tensor = (rng.standard_t(df=5, size=(48, 512)) * 0.02).astype(np.float32)
    meta = fit_tensor_meta(tensor, max_calibration_groups=128)
    return meta, tensor


def test_pack_blocks_matches_scalar_reference(weight_setup):
    """The vectorized pack must be byte-identical to pack_block."""
    meta, tensor = weight_setup
    plan = plan_encoding(meta, tensor)
    blocks = pack_blocks(
        meta.config, plan.scales, plan.scale_pos, plan.pattern_ids,
        plan.codebook_ids, plan.symbols, plan.corrections,
        meta.codebook_lengths, meta.codebook_codes,
    )
    for g in range(plan.num_groups):
        out_pos = np.flatnonzero(plan.corrections[g])
        reference = pack_block(
            meta.config, plan.scales[g], int(plan.scale_pos[g]),
            int(plan.pattern_ids[g]), int(plan.codebook_ids[g]),
            plan.symbols[g],
            meta.codebook_lengths[plan.codebook_ids[g]],
            meta.codebook_codes[plan.codebook_ids[g]],
            out_pos, plan.corrections[g, out_pos],
        )
        assert bytes(blocks[g]) == reference


def test_unpack_blocks_matches_scalar_reference(weight_setup):
    """Both unpack paths (small-stack scalar and vectorized) must agree
    with unpack_block field for field, scale slot marked SCALE_SYMBOL."""
    meta, tensor = weight_setup
    codec = EccoTensorCodec(meta)
    compressed = codec.encode(tensor)
    tables = decode_tables(meta.codebook_lengths)
    for count in (3, compressed.num_groups):  # scalar path, vectorized path
        fields = unpack_blocks(
            meta.config, compressed.blocks[:count], meta.codebook_lengths
        )
        scales, scale_pos, pattern_ids, codebook_ids, symbols, corrections = fields
        for g in range(count):
            scale, pos, pid, cid, syms, out_pos, out_q = unpack_block(
                meta.config, compressed.blocks[g].tobytes(),
                meta.codebook_lengths, tables=tables,
            )
            assert scales[g] == scale
            assert scale_pos[g] == pos == np.flatnonzero(syms == SCALE_SYMBOL)[0]
            assert pattern_ids[g] == pid
            assert codebook_ids[g] == cid
            assert np.array_equal(symbols[g], syms)
            dense = np.zeros(meta.config.group_size, dtype=np.int64)
            dense[out_pos] = out_q
            assert np.array_equal(corrections[g], dense)


def test_decode_tables_cached_per_codec(weight_setup):
    meta, _tensor = weight_setup
    codec = EccoTensorCodec(meta)
    assert codec.decode_tables is codec.decode_tables
    assert codec.window_tables is codec.window_tables


def test_force_fit_adversarial_group():
    """A group whose chosen codebook has nothing shorter to remap to used
    to overflow the 64-byte writer; the force-shortest-codes fallback must
    switch it to the escape codebook and stay bit-exact with the fast
    path."""
    config = KV_CONFIG
    patterns = np.linspace(-1.0, 1.0, 15, dtype=np.float32)[None, :]
    # Codebook 0: flat 4-bit codes -> 127 * 4 + 40 header > 512 bits, and
    # the greedy loop can shed nothing (no strictly shorter code exists).
    # Codebook 1: a 1-bit escape symbol the fallback can reach.
    lengths = np.array([[4] * 15, [1] + [8] * 14], dtype=np.uint8)
    meta = TensorMeta(
        patterns=patterns, codebook_lengths=lengths, tensor_exp=0, config=config
    )
    rng = np.random.default_rng(0)
    group = rng.uniform(-1.0, 1.0, size=128).astype(np.float32)
    group[0] = 1.0  # scale slot
    codec = EccoTensorCodec(meta)
    compressed = codec.encode(group)  # OverflowError before the fallback
    assert compressed.blocks.shape == (1, config.block_bytes)
    decoded = codec.decode(compressed)
    assert np.array_equal(decoded, simulate_roundtrip(meta, group).values)


@pytest.mark.parametrize(
    "config", [WEIGHT_CONFIG, KV_CONFIG, ACT_CONFIG],
    ids=["weight", "kv", "act"],
)
@pytest.mark.parametrize("size", [100, 333, 1111])
def test_bit_path_agrees_with_fast_path_on_padded_tensors(config, size):
    """Property: decode(encode(x)) == simulate_roundtrip(x) bit for bit on
    tensors whose length is not a multiple of the group size, for every
    config preset (the pad path)."""
    assert size % config.group_size != 0
    rng = np.random.default_rng(size)
    tensor = (rng.standard_normal(size) * np.exp(rng.normal(0, 1, size))).astype(
        np.float32
    )
    meta = fit_tensor_meta(tensor, config=config, max_calibration_groups=64)
    codec = EccoTensorCodec(meta)
    decoded = codec.decode(codec.encode(tensor))
    sim = simulate_roundtrip(meta, tensor)
    assert decoded.shape == tensor.shape
    assert np.array_equal(decoded, sim.values)


@pytest.fixture(scope="module")
def kv_codec():
    rng = np.random.default_rng(7)
    scales = np.exp(rng.normal(0.0, 1.2, size=128))
    meta = calibrate_kv_meta(rng.standard_normal((256, 128)) * scales * 0.3)
    return KVCacheCodec(meta)


def test_encode_tokens_matches_per_token_blocks(kv_codec):
    """One batched planning pass must emit the same bytes as the loop."""
    rng = np.random.default_rng(8)
    for dim in (128, 200):  # whole groups, and the per-token pad path
        tokens = rng.standard_normal((6, dim)).astype(np.float32)
        batch = kv_codec.encode_tokens(tokens)
        groups_per_token = batch.num_groups // tokens.shape[0]
        for t in range(tokens.shape[0]):
            single = kv_codec.encode_token(tokens[t])
            assert np.array_equal(
                single.blocks,
                batch.blocks[t * groups_per_token : (t + 1) * groups_per_token],
            )
        decoded = kv_codec.decode_tokens(batch)
        assert decoded.shape == tokens.shape
        assert np.array_equal(
            decoded, kv_codec.decode_all([batch])
        )


def test_stream_reads_are_2d_and_decode_only_new_tokens(kv_codec):
    """Attention reads return (T, head_dim) and block-decode each token
    exactly once across the whole generation (the O(new tokens) counter)."""
    rng = np.random.default_rng(9)
    stream = KVCacheStream(key_codec=kv_codec, value_codec=kv_codec)
    prefill = rng.standard_normal((8, 128)).astype(np.float32)
    stream.append_tokens(prefill, prefill)
    keys = stream.read_keys()
    assert keys.shape == (8, 128)
    assert stream.decoded_tokens == {"keys": 8, "values": 0}

    # Repeat reads decode nothing new.
    assert stream.read_keys().shape == (8, 128)
    assert stream.decoded_tokens["keys"] == 8

    # Appends decode only the appended token on the next read.
    for step in range(4):
        vec = rng.standard_normal(128).astype(np.float32)
        stream.append(vec, vec)
        keys = stream.read_keys()
        values = stream.read_values()
        assert keys.shape == values.shape == (9 + step, 128)
    assert len(stream) == 12
    assert stream.decoded_tokens == {"keys": 12, "values": 12}

    # Reads must match a from-scratch decode of every segment.
    fresh = kv_codec.decode_all(stream._segments["keys"])
    assert np.array_equal(stream.read_keys(), fresh)

    # The eviction hook drops decoded state; the next read rebuilds it.
    stream.invalidate_decoded()
    assert np.array_equal(stream.read_keys(), fresh)
    assert stream.decoded_tokens["keys"] == 24


def test_stream_kv_quant_hook_reports_stats():
    """The eval wiring: an ecco-stream kv_quant hook runs the real block
    codec inside the model forward and surfaces its counters."""
    from repro.llm import CalibrationData, EccoStreamKVQuant, ProxySpec, ProxyModel
    from repro.llm.eval import perplexity

    spec = ProxySpec(
        name="t", num_layers=1, d_model=32, n_heads=2, ffn_dim=64,
        vocab_size=17, seq_len=8,
    )
    model = ProxyModel(spec, seed=0)
    hook = EccoStreamKVQuant(CalibrationData())
    rng = np.random.default_rng(0)
    stream_tokens = rng.integers(0, 17, size=9 * 4)
    kv_stats: dict = {}
    ppl = perplexity(
        model, stream_tokens, seq_len=8, kv_quant=hook, kv_stats=kv_stats
    )
    assert np.isfinite(ppl)
    assert kv_stats["tokens"] > 0
    assert kv_stats["compression_ratio"] == pytest.approx(
        kv_stats["original_nbytes"] / kv_stats["compressed_nbytes"]
    )
