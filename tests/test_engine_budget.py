"""Regression tests for the engine budget/admission fixes.

Four latent bugs are pinned here: (1) the byte budget is enforced even
when a single running request is left (and the pool makes any overrun
visible in ``snapshot()``), (2) fresh-prefill admission asks for the
same decode headroom the swapped path does, so an admission is never
immediately preempted for lack of it, (3) rejected or caller-named
submissions do not burn auto-generated request IDs and duplicate IDs
are rejected, and (4) a swapped request that cannot currently re-admit
no longer head-of-line blocks every fresh prefill — bypass is bounded
and counted.
"""

import numpy as np
import pytest

from repro.llm import ProxyModel, calibrate, get_proxy_spec
from repro.serve import PagedKVPool, RequestState, ServingEngine


@pytest.fixture(scope="module")
def tiny_engine_parts():
    spec = get_proxy_spec("proxy-small")
    model = ProxyModel(spec, seed=1)
    rng = np.random.default_rng(0)
    calib = calibrate(model, rng.integers(0, spec.vocab_size, size=(8, 33)))
    return spec, model, calib


def _per_token(model, calib) -> int:
    return ServingEngine(
        model, calib, byte_budget=10**9
    ).backend.per_token_nbytes


# ----------------------------------------------------------------------
# 1. The budget is a hard invariant.
# ----------------------------------------------------------------------

def test_budget_never_exceeded_on_a_pressured_trace(tiny_engine_parts):
    """Acceptance: ``pool.bytes_resident <= byte_budget`` after *every*
    engine step on a trace that drives the single-running-request
    growth case the old ``len(running) > 1`` gate skipped.

    The trace mixes one long decoder with chunk-ingested long prompts,
    so the pool repeatedly reaches the state that used to overrun: one
    request decoding while other resident bytes (mid-prefill partials,
    cache) crowd the budget.  The new capacity pass preempts or stalls
    instead; the pool-side counter proves no allocation ever overran.
    """
    spec, model, calib = tiny_engine_parts
    pt = _per_token(model, calib)
    engine = ServingEngine(
        model,
        calib,
        byte_budget=56 * pt,
        page_tokens=8,
        max_batch_size=6,
        watermark=0.05,
        prefill_chunk_tokens=8,
        step_token_budget=24,
    )
    rng = np.random.default_rng(17)
    for plen, new in ((16, 30), (24, 12), (32, 8), (16, 16), (8, 24)):
        engine.submit(
            rng.integers(0, spec.vocab_size, size=plen), max_new_tokens=new
        )
    steps = 0
    while engine.scheduler.has_work:
        engine.step()
        steps += 1
        assert engine.pool.bytes_resident <= engine.pool.byte_budget
        assert steps < 2_000
    report = engine.report(0.0)
    assert report["finished"] == 5
    assert report["pool"]["budget_overruns"] == 0
    # The trace actually created pressure: requests were displaced or
    # chunks stalled while the budget held.
    assert report["preemptions"] + report["prefill_stalls"] > 0


def test_solo_request_growth_fails_loudly_not_silently(tiny_engine_parts):
    """A lone running request whose next-step growth cannot fit must
    raise, not push ``bytes_resident`` past the budget.  (Simulated by
    shrinking the budget under a mid-decode request — the shape any
    accounting-drift bug would take.)"""
    spec, model, calib = tiny_engine_parts
    engine = ServingEngine(
        model, calib, byte_budget=50_000, page_tokens=8, max_batch_size=4
    )
    rng = np.random.default_rng(3)
    engine.submit(
        rng.integers(0, spec.vocab_size, size=16), max_new_tokens=20
    )
    engine.step()
    engine.pool.byte_budget = engine.pool.bytes_resident  # no headroom left
    with pytest.raises(RuntimeError, match="decode growth"):
        for _ in range(50):
            engine.step()
    assert engine.pool.bytes_resident <= engine.pool.byte_budget


def test_pool_overruns_are_visible_in_snapshot():
    """Direct pool misuse is counted, not absorbed: the snapshot shows
    how many allocations overran and by how much, and ``check_budget``
    turns the state into a loud error."""
    pool = PagedKVPool(byte_budget=1_000, page_tokens=4)
    pool.reserve_private(800, 800)
    snap = pool.snapshot()
    assert snap["budget_overruns"] == 0
    pool.check_budget()  # within budget: no error
    pool.reserve_private(400, 400)
    snap = pool.snapshot()
    assert snap["budget_overruns"] == 1
    assert snap["max_overrun_bytes"] == 200
    with pytest.raises(RuntimeError, match="over budget"):
        pool.check_budget()


# ----------------------------------------------------------------------
# 2. Admission headroom symmetry.
# ----------------------------------------------------------------------

def test_fresh_admission_reserves_decode_headroom(tiny_engine_parts):
    """The old fresh path asked for ``prompt_len`` tokens of headroom
    while the swapped path asked for its bytes *plus one decode token*;
    a prompt that exactly filled the headroom was admitted and then
    immediately preempted.  Unified, the same prompt waits instead —
    and is never preempted once admitted."""
    spec, model, calib = tiny_engine_parts
    pt = _per_token(model, calib)
    engine = ServingEngine(
        model,
        calib,
        byte_budget=40 * pt,
        page_tokens=8,
        max_batch_size=4,
        watermark=0.0,
    )
    rng = np.random.default_rng(6)
    a = engine.submit(
        rng.integers(0, spec.vocab_size, size=16), max_new_tokens=20
    )
    engine.step()
    headroom = engine.scheduler.admission_headroom(engine.pool)
    plen = headroom // pt
    assert plen * pt <= headroom < (plen + 1) * pt  # the asymmetry window
    b = engine.submit(
        rng.integers(0, spec.vocab_size, size=plen), max_new_tokens=4
    )
    engine.step()
    # Old formula: admitted with zero decode headroom.  New: deferred.
    assert b.state == RequestState.WAITING
    report = engine.run()
    assert report["finished"] == 2
    assert a.state == b.state == RequestState.FINISHED
    assert b.metrics.preemptions == 0


# ----------------------------------------------------------------------
# 3. Request-ID hygiene.
# ----------------------------------------------------------------------

def test_rejected_and_named_submissions_do_not_burn_ids(tiny_engine_parts):
    spec, model, calib = tiny_engine_parts
    engine = ServingEngine(
        model, calib, storage="ecco", byte_budget=30_000, page_tokens=8
    )
    prompt = np.arange(8) % spec.vocab_size
    first = engine.submit(prompt, max_new_tokens=2)
    assert first.request_id == "req-0"
    with pytest.raises(ValueError, match="pool budget"):
        engine.submit(prompt, max_new_tokens=10_000)
    second = engine.submit(prompt, max_new_tokens=2)
    assert second.request_id == "req-1"  # the rejection burned nothing
    named = engine.submit(prompt, max_new_tokens=2, request_id="mine")
    assert named.request_id == "mine"
    third = engine.submit(prompt, max_new_tokens=2)
    assert third.request_id == "req-2"  # the named one burned nothing
    # A caller squatting on the auto namespace is skipped, not collided.
    engine.submit(prompt, max_new_tokens=2, request_id="req-3")
    fourth = engine.submit(prompt, max_new_tokens=2)
    assert fourth.request_id == "req-4"
    assert engine.run()["finished"] == 6


# ----------------------------------------------------------------------
# 4. Bounded head-of-line bypass.
# ----------------------------------------------------------------------

def _hol_run(spec, model, calib, pt, hol_bypass_limit):
    """A + B contend until B is preempted and cannot re-admit; C (small)
    then arrives.  Returns (report, c_served_while_b_swapped)."""
    engine = ServingEngine(
        model,
        calib,
        byte_budget=48 * pt,
        page_tokens=8,
        max_batch_size=4,
        watermark=0.0,
        hol_bypass_limit=hol_bypass_limit,
    )
    rng = np.random.default_rng(5)
    engine.submit(rng.integers(0, spec.vocab_size, size=16), max_new_tokens=30)
    b = engine.submit(
        rng.integers(0, spec.vocab_size, size=16), max_new_tokens=20
    )
    c = None
    c_while_b_swapped = False
    for _ in range(400):
        if not engine.scheduler.has_work:
            break
        engine.step()
        if c is None and b.state == RequestState.SWAPPED:
            c = engine.submit(
                rng.integers(0, spec.vocab_size, size=8), max_new_tokens=2
            )
        if (
            c is not None
            and b.state == RequestState.SWAPPED
            and c.state in (RequestState.RUNNING, RequestState.FINISHED)
        ):
            c_while_b_swapped = True
    return engine.report(0.0), c_while_b_swapped


def test_hol_bypass_admits_small_requests_past_a_stuck_swap(
    tiny_engine_parts,
):
    spec, model, calib = tiny_engine_parts
    pt = _per_token(model, calib)
    report, c_while_b_swapped = _hol_run(spec, model, calib, pt, 1)
    assert report["finished"] == 3
    assert report["preemptions"] >= 1
    assert report["hol_blocked_steps"] > 0   # the condition occurred...
    assert report["hol_bypasses"] >= 1       # ...and was bypassed
    assert c_while_b_swapped                 # C ran while B waited
    assert report["pool"]["budget_overruns"] == 0


def test_hol_bypass_limit_zero_restores_strict_fcfs(tiny_engine_parts):
    spec, model, calib = tiny_engine_parts
    pt = _per_token(model, calib)
    report, c_while_b_swapped = _hol_run(spec, model, calib, pt, 0)
    assert report["finished"] == 3
    assert report["hol_blocked_steps"] > 0
    assert report["hol_bypasses"] == 0
    assert not c_while_b_swapped             # C waited behind B


def test_hol_blocking_not_counted_without_fresh_work(tiny_engine_parts):
    """A stuck swapped head with an *empty* waiting queue blocks nobody;
    the drain phase must not inflate ``hol_blocked_steps``."""
    spec, model, calib = tiny_engine_parts
    pt = _per_token(model, calib)
    engine = ServingEngine(
        model,
        calib,
        byte_budget=48 * pt,
        page_tokens=8,
        max_batch_size=4,
        watermark=0.0,
    )
    rng = np.random.default_rng(5)
    engine.submit(rng.integers(0, spec.vocab_size, size=16), max_new_tokens=30)
    engine.submit(rng.integers(0, spec.vocab_size, size=16), max_new_tokens=20)
    report = engine.run()  # B gets preempted and waits, but nobody queues
    assert report["finished"] == 2
    assert report["preemptions"] >= 1
    assert report["hol_blocked_steps"] == 0
    assert report["hol_bypasses"] == 0
