"""Quantization baselines the paper compares against."""

from .awq import awq_scales, awq_weight
from .uniform import rtn_weight, uniform_quantize

__all__ = ["awq_weight", "awq_scales", "rtn_weight", "uniform_quantize"]
