"""AWQ-style activation-aware weight quantization (our W4 baseline).

AWQ protects salient weight channels by scaling them up before group-wise
INT4 quantization and folding the inverse scale into the activations; the
fake-quant model applies both sides so the layer function is preserved up
to quantization error.
"""

from __future__ import annotations

import numpy as np

from .uniform import uniform_quantize

__all__ = ["awq_scales", "awq_weight"]


def awq_scales(
    act_mean_sq: np.ndarray, alpha: float = 0.5, floor: float = 1e-8
) -> np.ndarray:
    """Per-input-channel AWQ scales ``s = E[x^2]^(alpha/2)``, normalized."""
    mag = np.sqrt(np.maximum(np.asarray(act_mean_sq, dtype=np.float64), floor))
    s = mag**alpha
    s = s / np.exp(np.mean(np.log(np.maximum(s, floor))))
    return np.clip(s, 1e-4, 1e4).astype(np.float32)


def awq_weight(
    weight: np.ndarray,
    act_mean_sq: np.ndarray | None = None,
    bits: int = 4,
    group_size: int = 128,
    alpha: float = 0.5,
) -> np.ndarray:
    """Activation-aware group-wise INT4 fake quantization of ``weight``.

    ``weight`` is (out_features, in_features); ``act_mean_sq`` is the mean
    squared activation per input channel from calibration.  Without
    statistics this degrades to plain group-wise RTN.
    """
    weight = np.asarray(weight, dtype=np.float32)
    if act_mean_sq is None:
        return uniform_quantize(weight, bits, group_size=group_size)
    s = awq_scales(act_mean_sq, alpha=alpha)
    scaled = weight * s[None, :]
    q = uniform_quantize(scaled, bits, group_size=group_size)
    return (q / s[None, :]).astype(np.float32)
