"""Uniform (integer) fake quantization primitives shared by the baselines."""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_quantize", "rtn_weight"]


def uniform_quantize(
    values: np.ndarray,
    bits: int,
    axis: int | None = None,
    group_size: int | None = None,
) -> np.ndarray:
    """Symmetric round-to-nearest fake quantization.

    ``axis=None`` uses one tensor-wide scale; an integer axis uses one
    scale per slice along it; ``group_size`` quantizes flat groups (the
    usual 128-value granularity), overriding ``axis``.
    """
    values = np.asarray(values, dtype=np.float32)
    qmax = float(2 ** (bits - 1) - 1)
    if group_size is not None:
        flat = values.ravel()
        pad = (-flat.size) % group_size
        if pad:
            flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
        groups = flat.reshape(-1, group_size)
        scales = np.abs(groups).max(axis=1, keepdims=True) / qmax
        scales = np.where(scales > 0, scales, 1.0)
        q = np.clip(np.round(groups / scales), -qmax - 1, qmax)
        out = (q * scales).ravel()
        if pad:
            out = out[:-pad]
        return out.reshape(values.shape).astype(np.float32)
    if axis is None:
        scale = np.abs(values).max() / qmax
        scale = scale if scale > 0 else 1.0
    else:
        scale = np.abs(values).max(axis=axis, keepdims=True) / qmax
        scale = np.where(scale > 0, scale, 1.0)
    q = np.clip(np.round(values / scale), -qmax - 1, qmax)
    return (q * scale).astype(np.float32)


def rtn_weight(weight: np.ndarray, bits: int = 4) -> np.ndarray:
    """Plain round-to-nearest with per-output-channel scales (the paper's
    weakest weight baseline)."""
    return uniform_quantize(weight, bits, axis=1)
