"""Per-function control-flow graphs over stdlib ``ast``.

The CFG is statement-granular: each executable statement *header* is one
node (an ``if``'s node is its test; the branch bodies are separate
chains).  Three synthetic nodes frame every graph: ``ENTRY`` (0),
``EXIT`` (1, normal returns) and ``RAISE_EXIT`` (2, exceptions that
escape the function).  Edges carry a *kind* so typestate rules can
distinguish how control arrived:

=========  ==========================================================
next       sequential fall-through
true/false branch taken / not taken (``if``/``while``/``for`` tests)
back       loop back-edge (end of body to head)
break      ``break`` to the statement after the loop
continue   ``continue`` to the loop head
case       ``match`` dispatch into (or past) a case body
except     exception transfer into a handler — carries the *pre* state
           of the raising statement (the statement did not complete)
return     ``return`` to ``EXIT``
raise      an uncaught exception to ``RAISE_EXIT``
finally    deferred transfer into a ``finally`` suite
=========  ==========================================================

Exception edges are parameterized, because "what can raise" is the
whole game for lifecycle analysis:

* every statement inside a ``try`` with handlers gets coarse ``except``
  edges to the handlers of that ``try`` (anything may raise
  *something*), walking outward until a handler certainly catches;
* *known* raises — explicit ``raise`` statements plus whatever the
  ``raises_of`` callback reports for a statement (e.g. calls that
  transitively raise ``BudgetExceededError``, per the call graph) — are
  routed through the handler stack by name, using the ``catches``
  predicate for hierarchy matching, and reach ``RAISE_EXIT`` when no
  frame catches them.

``finally`` suites are built once and shared by every route through
them (normal completion, deferred returns/breaks/raises).  That
over-approximates paths — a raising route appears to also continue
normally — which for may-analyses means *fewer* findings, never bogus
ones.  The package is stdlib-only, like the rest of ``repro.analysis``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Names the exceptions a (non-``raise``) statement may raise, e.g. by
#: resolving its calls against call-graph summaries.  ``WILDCARD`` means
#: "something unknowable".
RaisesFn = Callable[[ast.AST], Sequence[str]]

#: ``catches(handler_type_names, exc_name)`` — ``True`` certainly
#: caught, ``False`` certainly not, ``None`` maybe (edge added, raise
#: keeps propagating outward).
CatchesFn = Callable[[tuple[str, ...], str], "bool | None"]

WILDCARD = "*"

ENTRY = 0
EXIT = 1
RAISE_EXIT = 2

#: Ancestry for the builtin exceptions this repo's protocols touch, so
#: the default matcher understands ``except ValueError`` vs a raise of
#: ``ValueError`` subclasses it has been told about.
BUILTIN_EXC_BASES: dict[str, str] = {
    "ValueError": "Exception",
    "TypeError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "LookupError": "Exception",
    "AttributeError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "TimeoutError": "OSError",
    "AssertionError": "Exception",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
}


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: str


@dataclass
class Node:
    nid: int
    #: The header AST node (a statement, or ``ast.ExceptHandler`` for
    #: handler heads); ``None`` for the three synthetic nodes.
    stmt: ast.AST | None
    label: str
    succs: list[Edge] = field(default_factory=list)
    preds: list[Edge] = field(default_factory=list)


@dataclass
class CFG:
    """One function's control-flow graph."""

    func: FunctionNode
    nodes: list[Node] = field(default_factory=list)

    def new_node(self, stmt: ast.AST | None, label: str) -> int:
        nid = len(self.nodes)
        self.nodes.append(Node(nid=nid, stmt=stmt, label=label))
        return nid

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        edge = Edge(src, dst, kind)
        if edge in self.nodes[src].succs:
            return
        self.nodes[src].succs.append(edge)
        self.nodes[dst].preds.append(edge)

    def stmt_nodes(self) -> Iterator[Node]:
        """Every non-synthetic node."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node


# ---------------------------------------------------------------------------
# Small AST utilities shared with the rules.
# ---------------------------------------------------------------------------

def terminal_name(node: ast.AST | None) -> str | None:
    """The final identifier of a name/attribute chain (``a.b.C`` → C)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def raise_name(stmt: ast.Raise) -> str:
    """The exception class name a ``raise`` throws (bare → wildcard)."""
    return terminal_name(stmt.exc) or WILDCARD


def handler_type_names(handler: ast.ExceptHandler) -> tuple[str, ...] | None:
    """Type names an ``except`` clause declares; ``None`` = catch-all."""
    if handler.type is None:
        return None
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return tuple(terminal_name(t) or WILDCARD for t in types)


def header_exprs(stmt: ast.AST) -> list[ast.AST]:
    """The expressions a CFG node actually evaluates.

    Compound statements evaluate only their header here (``if``'s test,
    ``for``'s iter); their bodies are separate CFG nodes, so walking the
    raw statement would mis-attribute nested work to the header.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        defaults: list[ast.AST] = list(stmt.args.defaults)
        defaults.extend(d for d in stmt.args.kw_defaults if d is not None)
        defaults.extend(stmt.decorator_list)
        return defaults
    if isinstance(stmt, ast.ClassDef):
        header: list[ast.AST] = list(stmt.bases)
        header.extend(kw.value for kw in stmt.keywords)
        header.extend(stmt.decorator_list)
        return header
    return [stmt]


def walk_header(stmt: ast.AST) -> Iterator[ast.AST]:
    """Walk a node's header expressions, skipping ``lambda`` bodies
    (they run later, in their own scope)."""
    stack: list[ast.AST] = list(header_exprs(stmt))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def default_catches(names: tuple[str, ...], exc: str) -> bool | None:
    """Hierarchy matcher over the builtin table only."""
    if WILDCARD in names:
        return None
    if exc == WILDCARD:
        if "Exception" in names or "BaseException" in names:
            return True
        return None
    ancestry = {exc}
    cursor = exc
    while cursor in BUILTIN_EXC_BASES:
        cursor = BUILTIN_EXC_BASES[cursor]
        ancestry.add(cursor)
    if set(names) & ancestry:
        return True
    # Unknown handler types might still be bases of exc.
    if any(n not in BUILTIN_EXC_BASES and n != "BaseException" for n in names):
        return None if exc not in BUILTIN_EXC_BASES else False
    return False


def _no_raises(stmt: ast.AST) -> Sequence[str]:
    return ()


def _is_const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


# ---------------------------------------------------------------------------
# Builder.
# ---------------------------------------------------------------------------

@dataclass
class _Loop:
    head: int
    break_out: "list[tuple[int, str]]" = field(default_factory=list)


@dataclass
class _Try:
    #: Per handler: (declared type names or None for catch-all,
    #: pending source node ids to wire once the handler head exists).
    handler_edges: "list[tuple[tuple[str, ...] | None, list[int]]]"
    has_finally: bool
    #: Route key -> sources whose transfer must run the finally first.
    #: Keys: ("return",), ("raise", name), ("break",), ("continue",).
    deferred: "dict[tuple[str, ...], list[int]]" = field(default_factory=dict)


class _Builder:
    def __init__(
        self, func: FunctionNode, raises_of: RaisesFn, catches: CatchesFn
    ) -> None:
        self.cfg = CFG(func=func)
        for label in ("entry", "exit", "raise-exit"):  # ids 0, 1, 2
            self.cfg.new_node(None, label)
        self.raises_of = raises_of
        self.catches = catches
        self.frames: list[_Loop | _Try] = []

    # -- plumbing ----------------------------------------------------------
    def build(self) -> CFG:
        out = self._stmts(self.cfg.func.body, [(ENTRY, "next")])
        self._connect(out, EXIT)
        return self.cfg

    def _new(self, stmt: ast.AST) -> int:
        lineno = getattr(stmt, "lineno", 0)
        return self.cfg.new_node(stmt, f"L{lineno}:{type(stmt).__name__}")

    def _connect(self, frontier: "list[tuple[int, str]]", dst: int) -> None:
        for src, kind in frontier:
            self.cfg.add_edge(src, dst, kind)

    def _stmts(
        self, body: Sequence[ast.stmt], frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    # -- exception routing -------------------------------------------------
    def _coarse_except_edges(self, nid: int) -> None:
        """Anything may raise *something*: wire ``nid`` to the handlers
        of every enclosing ``try``, stopping at a certain catch."""
        for frame in reversed(self.frames):
            if not isinstance(frame, _Try):
                continue
            certain = False
            for names, pending in frame.handler_edges:
                pending.append(nid)
                if names is None or "Exception" in names or "BaseException" in names:
                    certain = True
                    break
            if certain:
                return

    def _route_raise(self, nid: int, exc: str) -> None:
        """Route a *known* raise of ``exc`` through the frame stack."""
        for frame in reversed(self.frames):
            if not isinstance(frame, _Try):
                continue
            for names, pending in frame.handler_edges:
                if names is None:
                    pending.append(nid)
                    return
                verdict = self.catches(names, exc)
                if verdict is True:
                    pending.append(nid)
                    return
                if verdict is None:
                    pending.append(nid)
            if frame.has_finally:
                frame.deferred.setdefault(("raise", exc), []).append(nid)
                return
        self.cfg.add_edge(nid, RAISE_EXIT, "raise")

    def _route_return(self, nid: int) -> None:
        for frame in reversed(self.frames):
            if isinstance(frame, _Try) and frame.has_finally:
                frame.deferred.setdefault(("return",), []).append(nid)
                return
        self.cfg.add_edge(nid, EXIT, "return")

    def _route_loop(self, nid: int, kind: str) -> None:
        loop_at = next(
            (
                i
                for i in range(len(self.frames) - 1, -1, -1)
                if isinstance(self.frames[i], _Loop)
            ),
            None,
        )
        if loop_at is None:  # break/continue outside a loop: dead code
            return
        for frame in reversed(self.frames[loop_at + 1 :]):
            if isinstance(frame, _Try) and frame.has_finally:
                frame.deferred.setdefault((kind,), []).append(nid)
                return
        loop = self.frames[loop_at]
        assert isinstance(loop, _Loop)
        if kind == "break":
            loop.break_out.append((nid, "break"))
        else:
            self.cfg.add_edge(nid, loop.head, "continue")

    # -- statement dispatch ------------------------------------------------
    def _stmt(
        self, stmt: ast.stmt, frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        return self._simple(stmt, frontier)

    def _simple(
        self, stmt: ast.stmt, frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        nid = self._new(stmt)
        self._connect(frontier, nid)
        self._coarse_except_edges(nid)
        if isinstance(stmt, ast.Return):
            self._route_return(nid)
            return []
        if isinstance(stmt, ast.Raise):
            self._route_raise(nid, raise_name(stmt))
            return []
        if isinstance(stmt, ast.Break):
            self._route_loop(nid, "break")
            return []
        if isinstance(stmt, ast.Continue):
            self._route_loop(nid, "continue")
            return []
        for exc in self.raises_of(stmt):
            self._route_raise(nid, exc)
        return [(nid, "next")]

    def _if(
        self, stmt: ast.If, frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        nid = self._new(stmt)
        self._connect(frontier, nid)
        self._coarse_except_edges(nid)
        for exc in self.raises_of(stmt):
            self._route_raise(nid, exc)
        t_out = self._stmts(stmt.body, [(nid, "true")])
        f_out = self._stmts(stmt.orelse, [(nid, "false")])
        return t_out + f_out

    def _while(
        self, stmt: ast.While, frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        head = self._new(stmt)
        self._connect(frontier, head)
        self._coarse_except_edges(head)
        for exc in self.raises_of(stmt):
            self._route_raise(head, exc)
        loop = _Loop(head=head)
        self.frames.append(loop)
        b_out = self._stmts(stmt.body, [(head, "true")])
        self.frames.pop()
        for src, _kind in b_out:
            self.cfg.add_edge(src, head, "back")
        exit_front: "list[tuple[int, str]]" = (
            [] if _is_const_true(stmt.test) else [(head, "false")]
        )
        o_out = self._stmts(stmt.orelse, exit_front)
        return o_out + loop.break_out

    def _for(
        self, stmt: "ast.For | ast.AsyncFor", frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        head = self._new(stmt)
        self._connect(frontier, head)
        self._coarse_except_edges(head)
        for exc in self.raises_of(stmt):
            self._route_raise(head, exc)
        loop = _Loop(head=head)
        self.frames.append(loop)
        b_out = self._stmts(stmt.body, [(head, "true")])
        self.frames.pop()
        for src, _kind in b_out:
            self.cfg.add_edge(src, head, "back")
        o_out = self._stmts(stmt.orelse, [(head, "false")])
        return o_out + loop.break_out

    def _with(
        self, stmt: "ast.With | ast.AsyncWith", frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        nid = self._new(stmt)
        self._connect(frontier, nid)
        self._coarse_except_edges(nid)
        for exc in self.raises_of(stmt):
            self._route_raise(nid, exc)
        return self._stmts(stmt.body, [(nid, "next")])

    def _match(
        self, stmt: ast.Match, frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        nid = self._new(stmt)
        self._connect(frontier, nid)
        self._coarse_except_edges(nid)
        out: "list[tuple[int, str]]" = []
        for case in stmt.cases:
            out.extend(self._stmts(case.body, [(nid, "case")]))
        out.append((nid, "case"))  # no case matched
        return out

    def _try(
        self, stmt: ast.Try, frontier: "list[tuple[int, str]]"
    ) -> "list[tuple[int, str]]":
        frame = _Try(
            handler_edges=[(handler_type_names(h), []) for h in stmt.handlers],
            has_finally=bool(stmt.finalbody),
        )
        self.frames.append(frame)
        body_out = self._stmts(stmt.body, frontier)
        self.frames.pop()
        # orelse runs only on clean completion; its raises are NOT
        # caught by this try's handlers, hence built after the pop.
        body_out = self._stmts(stmt.orelse, body_out)

        handler_out: "list[tuple[int, str]]" = []
        for (_names, pending), handler in zip(frame.handler_edges, stmt.handlers):
            head = self._new(handler)
            for src in sorted(set(pending)):
                self.cfg.add_edge(src, head, "except")
            handler_out.extend(self._stmts(handler.body, [(head, "next")]))

        after = body_out + handler_out
        if not stmt.finalbody:
            return after

        fin_in = list(after)
        for sources in frame.deferred.values():
            fin_in.extend((src, "finally") for src in sorted(set(sources)))
        fin_out = self._stmts(stmt.finalbody, fin_in)
        # Re-route each deferred reason from the (shared) finally exit.
        for key in frame.deferred:
            for src, _kind in fin_out:
                if key == ("return",):
                    self._route_return(src)
                elif key[0] == "raise":
                    self._route_raise(src, key[1])
                else:
                    self._route_loop(src, key[0])
        return fin_out if after else []


def build_cfg(
    func: FunctionNode,
    raises_of: RaisesFn | None = None,
    catches: CatchesFn | None = None,
) -> CFG:
    """Build the CFG for one function.

    ``raises_of`` supplies *known* exceptions for non-``raise``
    statements (explicit ``raise`` statements are always routed);
    ``catches`` decides handler/exception hierarchy matches (defaults
    to the builtin-exception table).
    """
    return _Builder(
        func, raises_of or _no_raises, catches or default_catches
    ).build()
