"""Content-hash result cache under ``.cache/analysis/``.

The analyzer parses every file on every run regardless (parsing is the
cheap part); what the cache skips is *judging*.  Two tiers:

* **per-module** — findings from the single-file rule families, keyed
  by the file's content hash.  Editing one file re-judges one file.
* **project** — findings from the interprocedural families (LIF, AWA,
  SEE), keyed by a hash over the *whole* parsed set.  Any edit anywhere
  invalidates this tier: a deleted ``release()`` in one module changes
  the verdict in another, so partial reuse would be unsound.

Both tiers are salted with a hash of the analyzer's own source: editing
a rule invalidates everything it ever judged.  The cache is a pure
speedup — corrupt or missing files degrade to a cold run, never to an
error, and the library entry points (:func:`analyze_paths`,
:func:`analyze_source`) never touch it; only the CLI does.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .findings import Finding, Severity
from .runner import ModuleInfo

CACHE_VERSION = 1

#: Relative to the repo root.
CACHE_RELPATH = Path(".cache") / "analysis" / "results.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def tree_hash(modules: Sequence[ModuleInfo]) -> str:
    """One hash over every (path, content) pair — the project-tier key."""
    digest = hashlib.sha256()
    for module in sorted(modules, key=lambda m: m.relpath):
        digest.update(module.relpath.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(content_hash(module.source).encode("ascii"))
        digest.update(b"\x01")
    return digest.hexdigest()[:24]


def analyzer_salt() -> str:
    """Hash of the analysis package's own source files.

    Any edit to a rule, the CFG builder or this module flips the salt
    and cold-starts the cache — results are only reusable when produced
    by byte-identical analyzer code.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()[:24]


def _finding_to_json(finding: Finding) -> dict[str, object]:
    return finding.to_json()


def _finding_from_json(item: dict[str, object]) -> Finding:
    return Finding(
        rule=str(item["rule"]),
        path=str(item["path"]),
        line=int(item["line"]),  # type: ignore[arg-type]
        col=int(item["col"]),  # type: ignore[arg-type]
        message=str(item["message"]),
        severity=Severity(str(item["severity"])),
        snippet=str(item.get("snippet", "")),
    )


class AnalysisCache:
    """The on-disk cache; load once, query, :meth:`save` at the end."""

    def __init__(self, root: str | Path, salt: str | None = None) -> None:
        self.path = Path(root) / CACHE_RELPATH
        self.salt = salt if salt is not None else analyzer_salt()
        self._modules: dict[str, dict[str, object]] = {}
        self._project: dict[str, object] | None = None
        self._dirty = False
        self._load()

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(doc, dict)
            or doc.get("version") != CACHE_VERSION
            or doc.get("salt") != self.salt
        ):
            return
        modules = doc.get("modules")
        if isinstance(modules, dict):
            self._modules = modules
        project = doc.get("project")
        if isinstance(project, dict):
            self._project = project

    def save(self) -> None:
        if not self._dirty:
            return
        doc = {
            "version": CACHE_VERSION,
            "salt": self.salt,
            "modules": self._modules,
            "project": self._project,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass  # a cache that cannot be written is just a cold cache

    # ------------------------------------------------------------------
    # Per-module tier.
    # ------------------------------------------------------------------
    def get_module(self, relpath: str, file_hash: str) -> Optional[list[Finding]]:
        entry = self._modules.get(relpath)
        if not isinstance(entry, dict) or entry.get("hash") != file_hash:
            return None
        try:
            raw = entry["findings"]
            assert isinstance(raw, list)
            return [_finding_from_json(item) for item in raw]
        except (KeyError, TypeError, ValueError, AssertionError):
            return None

    def put_module(
        self, relpath: str, file_hash: str, findings: Iterable[Finding]
    ) -> None:
        self._modules[relpath] = {
            "hash": file_hash,
            "findings": [_finding_to_json(f) for f in findings],
        }
        self._dirty = True

    # ------------------------------------------------------------------
    # Project tier (interprocedural rules).
    # ------------------------------------------------------------------
    def get_project(self, project_hash: str) -> Optional[list[Finding]]:
        entry = self._project
        if not isinstance(entry, dict) or entry.get("hash") != project_hash:
            return None
        try:
            raw = entry["findings"]
            assert isinstance(raw, list)
            return [_finding_from_json(item) for item in raw]
        except (KeyError, TypeError, ValueError, AssertionError):
            return None

    def put_project(
        self, project_hash: str, findings: Iterable[Finding]
    ) -> None:
        self._project = {
            "hash": project_hash,
            "findings": [_finding_to_json(f) for f in findings],
        }
        self._dirty = True


def analyze_modules_cached(
    modules: list[ModuleInfo], cache: AnalysisCache | None
) -> list[Finding]:
    """Per-module + project rules with cache short-circuits.

    Equivalent to the library path (:func:`runner.analyze_paths` minus
    parsing) when ``cache`` is ``None``.
    """
    from .runner import analyze_module, run_project_rules

    findings: list[Finding] = []
    for module in modules:
        file_hash = content_hash(module.source)
        cached = cache.get_module(module.relpath, file_hash) if cache else None
        if cached is None:
            cached = analyze_module(module)
            if cache is not None:
                cache.put_module(module.relpath, file_hash, cached)
        findings.extend(cached)

    project_key = tree_hash(modules)
    project = cache.get_project(project_key) if cache else None
    if project is None:
        project = run_project_rules(modules)
        if cache is not None:
            cache.put_project(project_key, project)
    findings.extend(project)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
