"""A small forward worklist framework over :mod:`repro.analysis.cfg`.

Typestate rules express themselves as a *state lattice* (any hashable,
``==``-comparable value — in practice a ``frozenset`` of facts), a
*transfer* function mapping (node, in-state) to out-state, and a *join*
merging states where paths meet.  The framework iterates to a fixpoint
and hands back the in-state of every node, including the synthetic
``EXIT`` / ``RAISE_EXIT`` nodes where leak rules read their verdicts.

One deliberate semantic: ``except`` edges propagate the *pre*-state of
the raising statement, not its post-state — an exception means the
statement did not complete, so ``kv = acquire()`` that raises has *not*
bound ``kv``.  Every other edge kind propagates the post-state.

Termination: with a finite fact domain and a join that only grows
(set union), states stabilize; the worklist drains in O(edges × facts).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, TypeVar

from .cfg import CFG, ENTRY, Node

S = TypeVar("S", bound=Hashable)
T = TypeVar("T")

TransferFn = Callable[[Node, S], S]
JoinFn = Callable[[S, S], S]


def run_forward(
    cfg: CFG,
    entry_state: S,
    transfer: TransferFn[S],
    join: JoinFn[S],
) -> Dict[int, S]:
    """Fixpoint in-states for every reachable node of ``cfg``."""
    in_states: Dict[int, S] = {ENTRY: entry_state}
    work: deque[int] = deque([ENTRY])
    while work:
        nid = work.popleft()
        node = cfg.nodes[nid]
        state_in = in_states[nid]
        state_out = transfer(node, state_in)
        for edge in node.succs:
            carried = state_in if edge.kind == "except" else state_out
            old = in_states.get(edge.dst)
            merged = carried if old is None else join(old, carried)
            if old is None or merged != old:
                in_states[edge.dst] = merged
                work.append(edge.dst)
    return in_states


def union_join(a: frozenset[T], b: frozenset[T]) -> frozenset[T]:
    """The join for may-analyses over fact sets."""
    return a | b
