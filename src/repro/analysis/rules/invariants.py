"""INV — invariant-discipline lints.

The serving stack's correctness story rests on a few load-bearing
conventions; these rules make them machine-checked:

* INV001 — byte-counter mutations route through ``_bump``.  Any class
  that defines a ``_bump`` method thereby *declares* the attributes
  ``_bump`` mutates as protected: every other method must go through
  it (``__init__`` may initialize them).  Direct mutation bypasses the
  peak/overrun accounting ``_bump`` centralizes — exactly the drift
  ``check_budget`` exists to catch after the fact.
* INV002 — no bare ``except:`` (it eats ``KeyboardInterrupt`` and
  ``SystemExit`` along with everything you meant).
* INV003 — never swallow ``BudgetExceededError``/``RequestShedError``
  silently: a handler for the 429 family must re-raise or visibly
  account for the shed (a counter bump or a recording call).  Silent
  swallows make load-shedding invisible to the replay reports.
* INV004 — no mutable default arguments inside ``repro.*``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import register_rule
from ..runner import ModuleInfo
from . import walk_skipping_defs

#: Exceptions in the "shed" (429) family that must never vanish.
SHED_EXCEPTIONS = frozenset({"BudgetExceededError", "RequestShedError"})

#: Substrings of call names that count as explicit shed accounting.
_ACCOUNTING_TOKENS = ("inc", "instant", "fail", "shed", "reject", "record", "count", "add", "log")


def _self_attr_targets(node: ast.stmt) -> Iterator[str]:
    """Names of ``self.<attr>`` assigned/augmented by one statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr


@register_rule(
    "INV001",
    Severity.ERROR,
    "protected byte counter mutated outside _bump",
)
def bump_discipline(module: ModuleInfo) -> Iterator[Finding]:
    if not module.is_repro:
        return
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        bump = next(
            (
                m
                for m in cls.body
                if isinstance(m, ast.FunctionDef) and m.name == "_bump"
            ),
            None,
        )
        if bump is None:
            continue
        protected = frozenset(
            attr
            for stmt in ast.walk(bump)
            for attr in _self_attr_targets(stmt)
        )
        if not protected:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("_bump", "__init__"):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                for attr in _self_attr_targets(stmt):
                    if attr in protected:
                        yield module.finding(
                            "INV001",
                            Severity.ERROR,
                            stmt,
                            f"'self.{attr}' is managed by "
                            f"{cls.name}._bump (peak/overrun accounting); "
                            f"mutate it via self._bump(...), not directly "
                            f"in {method.name}()",
                        )


@register_rule(
    "INV002",
    Severity.ERROR,
    "bare except",
)
def bare_except(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield module.finding(
                "INV002",
                Severity.ERROR,
                node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "name the exceptions you mean",
            )


def _handler_exceptions(handler: ast.ExceptHandler) -> frozenset[str]:
    names: set[str] = set()
    nodes: list[ast.expr] = []
    if handler.type is not None:
        nodes = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return frozenset(names)


def _accounts_for_shed(handler: ast.ExceptHandler) -> bool:
    for node in walk_skipping_defs(handler.body):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True  # counter bump: counts["shed"] += 1
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            ).lower()
            if any(tok in name for tok in _ACCOUNTING_TOKENS):
                return True
    return False


@register_rule(
    "INV003",
    Severity.ERROR,
    "shed-family exception swallowed without accounting",
)
def swallowed_shed(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _handler_exceptions(node) & SHED_EXCEPTIONS
        if caught and not _accounts_for_shed(node):
            yield module.finding(
                "INV003",
                Severity.ERROR,
                node,
                f"handler swallows {'/'.join(sorted(caught))} without "
                "re-raising or shed accounting — load shedding must "
                "stay visible (bump a counter or re-raise)",
            )


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name in _MUTABLE_CALLS
    return False


@register_rule(
    "INV004",
    Severity.ERROR,
    "mutable default argument inside repro.*",
)
def mutable_default(module: ModuleInfo) -> Iterator[Finding]:
    if not module.is_repro:
        return
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = fn.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                label = getattr(fn, "name", "<lambda>")
                yield module.finding(
                    "INV004",
                    Severity.ERROR,
                    default,
                    f"mutable default argument in {label}(): shared "
                    "across calls — default to None and build inside",
                )
