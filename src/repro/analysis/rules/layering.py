"""LAY001 — the declared layer matrix, enforced over real import ASTs.

Every ``import``/``from ... import`` inside ``src/repro`` (including
function-local imports — lazy imports are still dependencies) is
resolved to its target inside the package and checked against
:data:`repro.analysis.layers.LAYER_MATRIX`.  Relative imports resolve
through the importing module's package; one that climbs out of
``repro`` entirely is flagged too (nothing above the package root is a
legal target).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..layers import LAYER_MATRIX, import_allowed, layer_of
from ..registry import register_rule
from ..runner import ModuleInfo


def _resolve_relative(
    module_parts: list[str], is_pkg: bool, level: int, target: str | None
) -> str | None:
    """Dotted repro-internal path of a relative import, or ``None`` if
    it escapes the package."""
    pkg = module_parts if is_pkg else module_parts[:-1]
    climb = level - 1
    if climb > len(pkg):
        return None
    base = pkg[: len(pkg) - climb]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _iter_targets(
    module: ModuleInfo, node: ast.stmt
) -> Iterator[str | None]:
    """Repro-internal dotted targets of one import statement.

    Yields ``None`` for a relative import that escapes the package;
    absolute imports of third-party/stdlib modules yield nothing.
    """
    repro_module = module.repro_module
    assert repro_module is not None
    module_parts = repro_module.split(".") if repro_module else []
    is_pkg = module.relpath.endswith("__init__.py")

    if isinstance(node, ast.Import):
        for alias in node.names:
            name = alias.name
            if name == "repro" or name.startswith("repro."):
                yield name[len("repro") :].lstrip(".")
    elif isinstance(node, ast.ImportFrom):
        if node.level > 0:
            resolved = _resolve_relative(
                module_parts, is_pkg, node.level, node.module
            )
            if resolved is None:
                yield None
            elif node.module is None:
                # ``from . import x, y`` — each name is a submodule.
                for alias in node.names:
                    yield f"{resolved}.{alias.name}" if resolved else alias.name
            else:
                yield resolved
        elif node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            inner = node.module[len("repro") :].lstrip(".")
            if inner:
                yield inner
            else:
                # ``from repro import core`` — names are submodules.
                for alias in node.names:
                    yield alias.name


@register_rule(
    "LAY001",
    Severity.ERROR,
    "import crosses the declared layer matrix",
)
def layering(module: ModuleInfo) -> Iterator[Finding]:
    repro_module = module.repro_module
    if repro_module is None:
        return
    importer_layer = layer_of(repro_module)
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for target in _iter_targets(module, node):
            if target is None:
                yield module.finding(
                    "LAY001",
                    Severity.ERROR,
                    node,
                    "relative import climbs out of the repro package",
                )
                continue
            target_layer = layer_of(target)
            if target_layer == "":
                continue  # the import-free package root is always fair game
            if target_layer is None:
                yield module.finding(
                    "LAY001",
                    Severity.ERROR,
                    node,
                    f"import of repro.{target} which belongs to no "
                    "declared layer (add it to analysis/layers.py)",
                )
                continue
            if not import_allowed(repro_module, target):
                allowed = sorted(LAYER_MATRIX.get(importer_layer or "", ()))
                yield module.finding(
                    "LAY001",
                    Severity.ERROR,
                    node,
                    f"layer {importer_layer!r} may not import "
                    f"repro.{target} (declared deps: {allowed or 'none'})",
                )
