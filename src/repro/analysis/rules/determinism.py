"""DET — determinism lints: the replay guarantees live or die here.

Everything this reproduction proves (bit-exact codec round trips,
virtual-clock trace replay, the regression gates) assumes a run is a
pure function of its inputs and seeds.  Three rules defend that:

* DET001 — no wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter``, ``datetime.now``...).  References count, not just
  calls: ``clock=time.monotonic`` as a default argument is exactly the
  bug that silently breaks replay.  The single blessed accessor is
  ``repro.obs.timing`` (the allowlist below) — benchmarks that truly
  measure wall time import :class:`~repro.obs.timing.WallTimer` from
  there.
* DET002 — no global-state RNG (``np.random.rand``-style legacy calls,
  stdlib ``random`` module functions).  Explicitly seeded generators
  (``np.random.default_rng(seed)``, ``random.Random(seed)``) are fine.
* DET003 — no ``os.environ``/``os.getenv`` reads inside ``repro.*``:
  behavior must come from arguments, not ambient process state.
  (Tests and benchmarks may consult the environment; the shipped
  package may not.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import register_rule
from ..runner import ModuleInfo
from . import dotted, module_aliases

#: The one module allowed to touch the wall clock: the named allowlist
#: everything else (src, tests, benchmarks) must route through.
WALLCLOCK_ALLOWLIST = frozenset({"src/repro/obs/timing.py"})

_WALLCLOCK_ATTRS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)
_WALLCLOCK_FROM_TIME = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "clock_gettime"}
)

#: ``np.random.<safe>`` — constructing explicit generators is the point.
_SAFE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "RandomState",
    }
)

#: stdlib ``random`` module-level functions that draw from the hidden
#: global state.  ``random.Random`` (an explicit instance) is fine.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "normalvariate",
        "lognormvariate", "expovariate", "betavariate", "gammavariate",
        "paretovariate", "weibullvariate", "vonmisesvariate", "seed",
        "getrandbits", "randbytes",
    }
)

_ENV_ATTRS = frozenset({"os.environ", "os.getenv", "os.putenv"})


@register_rule(
    "DET001",
    Severity.ERROR,
    "wall-clock read outside repro.obs.timing",
)
def wallclock(module: ModuleInfo) -> Iterator[Finding]:
    if module.relpath in WALLCLOCK_ALLOWLIST:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute):
            name = dotted(node)
            if name in _WALLCLOCK_ATTRS:
                yield module.finding(
                    "DET001",
                    Severity.ERROR,
                    node,
                    f"wall-clock read {name!r}; pass a clock in, or use "
                    "repro.obs.timing (the named wall-clock allowlist)",
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALLCLOCK_FROM_TIME:
                        yield module.finding(
                            "DET001",
                            Severity.ERROR,
                            node,
                            f"imports wall-clock 'time.{alias.name}'; use "
                            "repro.obs.timing instead",
                        )


@register_rule(
    "DET002",
    Severity.ERROR,
    "global-state RNG use (unseeded random / legacy np.random)",
)
def global_rng(module: ModuleInfo) -> Iterator[Finding]:
    aliases = module_aliases(module.tree)
    random_aliases = {a for a, mod in aliases.items() if mod == "random"}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute):
            name = dotted(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) >= 3
                and aliases.get(parts[0], parts[0]) == "numpy"
                and parts[1] == "random"
                and parts[2] not in _SAFE_NP_RANDOM
            ):
                yield module.finding(
                    "DET002",
                    Severity.ERROR,
                    node,
                    f"legacy global-state {name!r}; draw from an explicit "
                    "np.random.default_rng(seed) generator",
                )
            elif (
                len(parts) == 2
                and parts[0] in random_aliases
                and parts[1] in _GLOBAL_RANDOM_FNS
            ):
                yield module.finding(
                    "DET002",
                    Severity.ERROR,
                    node,
                    f"global-state {name!r}; use an explicit "
                    "random.Random(seed) (or np.random.default_rng)",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FNS:
                    yield module.finding(
                        "DET002",
                        Severity.ERROR,
                        node,
                        f"imports global-state 'random.{alias.name}'; use "
                        "an explicit random.Random(seed)",
                    )


@register_rule(
    "DET003",
    Severity.ERROR,
    "os.environ read inside repro.*",
)
def environ_read(module: ModuleInfo) -> Iterator[Finding]:
    if not module.is_repro:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute):
            name = dotted(node)
            if name in _ENV_ATTRS:
                yield module.finding(
                    "DET003",
                    Severity.ERROR,
                    node,
                    f"{name} inside repro.*: behavior must come from "
                    "explicit arguments, not ambient process state",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            for alias in node.names:
                if alias.name in {"environ", "getenv", "putenv"}:
                    yield module.finding(
                        "DET003",
                        Severity.ERROR,
                        node,
                        f"imports 'os.{alias.name}' inside repro.*",
                    )
