"""LIF — resource-lifecycle state machines for the serve layer.

The page-lifecycle bug class (double frees, orphaned cached chains,
pins leaked on the ``BudgetExceededError`` path) cost PRs 4–5 most of
their debugging time, and every instance had the same shape: an acquire
whose paired release is missed on *some* path — usually the exception
path.  These rules encode the pairings as typestate over the CFG and
call graph:

========  ==========================================================
LIF001    a locally-held resource (``kv = backend.create_request(...)``,
          ``page, _ = pool.acquire(...)``) may reach function exit —
          normal or via an escaping tracked exception — neither
          released nor handed off.  Hand-offs are resolved through the
          call graph: ``self._finish(kv)`` counts as a release because
          ``_finish`` calls ``kv.release()``; storing to an attribute,
          container or return value transfers ownership.
LIF002    ``R.begin_chunk(...)`` may be abandoned by an escaping
          tracked exception before ``R.commit_chunk(...)`` runs.
          Normal exits are allowed — the engine legitimately spreads a
          chunk cycle across steps — but an exception between begin and
          commit strands the reservation (the PR-5 deadlock shape).
LIF003    protocol completeness: the project calls an *opening*
          operation (``swap_private_out``, ``begin_ingest``,
          ``reserve_private``, ``attach_cached_prefix``, auto-ID
          ``submit``) but never its paired closer anywhere — the
          deleted-``release()`` regression a unit test only catches by
          luck.
========  ==========================================================

Exception edges use the call graph's transitive raise summaries for the
shed family (``BudgetExceededError`` and subclasses), so a call into
``ingest_chunk`` — which reaches ``pool.acquire`` — counts as a
possible raise point in the *caller's* CFG, with local ``except``
clauses matched by class hierarchy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..callgraph import CallGraph, CallSite
from ..cfg import EXIT, RAISE_EXIT, build_cfg, terminal_name, walk_header
from ..dataflow import run_forward, union_join
from ..findings import Finding, Severity
from ..project import FunctionInfo, Project
from ..registry import register_project_rule

#: The shed family: raised between acquire and release, these are the
#: exceptions that historically leaked resources.
TRACKED_EXCEPTIONS = frozenset(
    {"BudgetExceededError", "RequestShedError", "RequestTimeoutError"}
)

#: Acquire factories: call name -> does the resource land in the first
#: element of a tuple target (``page, shared = pool.acquire(...)``)?
ACQUIRE_OPS: dict[str, bool] = {"create_request": False, "acquire": True}

CLOSE_OPS = frozenset({"release"})


@dataclass(frozen=True)
class _Protocol:
    label: str
    openers: frozenset[str]
    closers: frozenset[str]
    #: When set, opener sites only count with a resolved receiver class
    #: that actually defines the opener (keeps generic verbs like
    #: ``submit`` from matching unrelated code).
    typed: bool = False


PROTOCOLS: tuple[_Protocol, ...] = (
    _Protocol(
        "pinned cached prefix",
        frozenset({"attach_cached_prefix"}),
        frozenset({"release"}),
    ),
    _Protocol(
        "chunked ingest",
        frozenset({"begin_ingest", "begin_chunk"}),
        frozenset({"commit_chunk"}),
    ),
    _Protocol(
        "private tail buffer",
        frozenset({"reserve_private"}),
        frozenset({"free_private", "swap_private_out"}),
    ),
    _Protocol(
        "swapped private tail",
        frozenset({"swap_private_out"}),
        frozenset({"swap_private_in", "free_private"}),
    ),
    _Protocol(
        "swapped pages",
        frozenset({"swap_out"}),
        frozenset({"swap_in", "release"}),
    ),
    _Protocol(
        "auto-ID admission",
        frozenset({"submit"}),
        frozenset({"finish", "_finish", "shed", "release", "cancel"}),
        typed=True,
    ),
)


def _in_scope(fn: FunctionInfo) -> bool:
    return fn.module.is_repro


def _assign_targets(stmt: ast.AST) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target]
    return []


def _acquired_var(stmt: ast.AST) -> "tuple[str, ast.Call] | None":
    """``var`` bound to an acquire-factory call by this statement."""
    targets = _assign_targets(stmt)
    if len(targets) != 1:
        return None
    value = stmt.value if isinstance(stmt, (ast.Assign, ast.AnnAssign)) else None
    if not isinstance(value, ast.Call):
        return None
    name = terminal_name(value.func)
    if name not in ACQUIRE_OPS:
        return None
    target = targets[0]
    if ACQUIRE_OPS[name] and isinstance(target, ast.Tuple) and target.elts:
        target = target.elts[0]
    if isinstance(target, ast.Name):
        return target.id, value
    return None


# ---------------------------------------------------------------------------
# LIF001 — locally-held resources must be released or handed off.
# ---------------------------------------------------------------------------

@register_project_rule(
    "LIF001",
    Severity.ERROR,
    "a locally acquired resource may leak on some path "
    "(release it, hand it off, or guard with try/finally)",
)
def local_resource_leak(project: Project) -> Iterator[Finding]:
    graph = project.callgraph
    for fn in project.iter_functions():
        if not _in_scope(fn):
            continue
        if not any(s.name in ACQUIRE_OPS for s in graph.call_sites(fn)):
            continue
        yield from _check_function_leaks(project, graph, fn)


def _check_function_leaks(
    project: Project, graph: CallGraph, fn: FunctionInfo
) -> Iterator[Finding]:
    cfg = build_cfg(
        fn.node,
        raises_of=graph.raises_callback(fn, TRACKED_EXCEPTIONS),
        catches=project.catches,
    )

    def transfer(
        node: object, state: "frozenset[tuple[str, int]]"
    ) -> "frozenset[tuple[str, int]]":
        stmt = getattr(node, "stmt", None)
        if stmt is None:
            return state
        facts = set(state)
        # Closes, hand-offs and escapes first; acquisition last (a
        # statement may do both, e.g. rebinding).
        closed: set[str] = set()
        for site in graph.sites_in_statement(fn, stmt):
            if site.name in CLOSE_OPS and site.receiver is not None:
                closed.add(site.receiver)
                continue
            closed.update(_handed_off(graph, site, facts))
        # Escapes: stored to attribute/subscript, returned, yielded.
        for name in _escaping_names(stmt):
            closed.add(name)
        # Rebinds kill tracking of the old value.
        for target in _assign_targets(stmt):
            if isinstance(target, ast.Name):
                closed.add(target.id)
            elif isinstance(target, ast.Tuple):
                closed.update(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
        if closed:
            facts = {f for f in facts if f[0] not in closed}
        acquired = _acquired_var(stmt)
        if acquired is not None:
            var, call = acquired
            facts = {f for f in facts if f[0] != var}
            facts.add((var, call.lineno))
        return frozenset(facts)

    states = run_forward(cfg, frozenset(), transfer, union_join)
    leaks: dict[tuple[str, int], set[str]] = {}
    for exit_id, how in ((EXIT, "function exit"), (RAISE_EXIT, "an escaping exception")):
        for fact in states.get(exit_id, frozenset()):
            leaks.setdefault(fact, set()).add(how)
    for (var, lineno), hows in sorted(leaks.items(), key=lambda kv: kv[0][1]):
        anchor = ast.stmt()
        anchor.lineno = lineno
        anchor.col_offset = 0
        yield fn.module.finding(
            "LIF001",
            Severity.ERROR,
            anchor,
            f"resource {var!r} acquired here may reach "
            f"{' and '.join(sorted(hows))} without release "
            f"(in {fn.qualname}); release it on every path or hand it off",
        )


def _handed_off(
    graph: CallGraph, site: CallSite, facts: "set[tuple[str, int]]"
) -> set[str]:
    """Tracked names this call closes or takes ownership of."""
    live = {f[0] for f in facts}
    passed = {
        a.id for a in site.call.args if isinstance(a, ast.Name) and a.id in live
    }
    passed |= {
        kw.value.id
        for kw in site.call.keywords
        if isinstance(kw.value, ast.Name) and kw.value.id in live
    }
    if not passed:
        return set()
    callees = graph.resolve(site)
    if not callees:
        # Unknown callee (or a container method): ownership escapes;
        # the benefit of the doubt keeps may-analysis findings honest.
        return passed
    gone: set[str] = set()
    for arg_name, callee_param in graph.argument_bindings(site, callees):
        if arg_name not in passed:
            continue
        for callee in callees:
            if callee_param in graph.closes_params(callee, CLOSE_OPS):
                gone.add(arg_name)
    return gone


def _escaping_names(stmt: ast.AST) -> set[str]:
    out: set[str] = set()
    if isinstance(stmt, (ast.Return,)) and stmt.value is not None:
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Name):
                out.add(node.id)
    for target in _assign_targets(stmt):
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            value = getattr(stmt, "value", None)
            if value is not None:
                for node in ast.walk(value):
                    if isinstance(node, ast.Name):
                        out.add(node.id)
    for node in walk_header(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
    return out


# ---------------------------------------------------------------------------
# LIF002 — begin_chunk must not be abandoned by an exception.
# ---------------------------------------------------------------------------


@register_project_rule(
    "LIF002",
    Severity.ERROR,
    "begin_chunk may be abandoned by an escaping shed-family exception "
    "before commit_chunk",
)
def abandoned_chunk(project: Project) -> Iterator[Finding]:
    graph = project.callgraph
    for fn in project.iter_functions():
        if not _in_scope(fn):
            continue
        sites = graph.call_sites(fn)
        if not any(s.name == "begin_chunk" for s in sites):
            continue
        cfg = build_cfg(
            fn.node,
            raises_of=graph.raises_callback(fn, TRACKED_EXCEPTIONS),
            catches=project.catches,
        )

        def transfer(
            node: object, state: "frozenset[tuple[str, int]]"
        ) -> "frozenset[tuple[str, int]]":
            stmt = getattr(node, "stmt", None)
            if stmt is None:
                return state
            facts = set(state)
            for site in graph.sites_in_statement(fn, stmt):
                if site.name == "commit_chunk" and site.receiver is not None:
                    facts = {f for f in facts if f[0] != site.receiver}
                elif site.name == "release" and site.receiver is not None:
                    # Releasing the whole request tears down the chunk.
                    root = site.receiver.split(".")[0]
                    facts = {
                        f
                        for f in facts
                        if f[0] != site.receiver
                        and f[0].split(".")[0] != root
                    }
            for site in graph.sites_in_statement(fn, stmt):
                if site.name == "begin_chunk" and site.receiver is not None:
                    facts.add((site.receiver, site.call.lineno))
            return frozenset(facts)

        states = run_forward(cfg, frozenset(), transfer, union_join)
        seen: set[tuple[str, int]] = set()
        for receiver, lineno in sorted(
            states.get(RAISE_EXIT, frozenset()), key=lambda f: f[1]
        ):
            if (receiver, lineno) in seen:
                continue
            seen.add((receiver, lineno))
            anchor = ast.stmt()
            anchor.lineno = lineno
            anchor.col_offset = 0
            yield fn.module.finding(
                "LIF002",
                Severity.ERROR,
                anchor,
                f"begin_chunk on {receiver!r} may be abandoned by an "
                f"escaping shed-family exception before commit_chunk "
                f"(in {fn.qualname}); catch it and commit or release",
            )


# ---------------------------------------------------------------------------
# LIF003 — every opening op needs its closer somewhere in the project.
# ---------------------------------------------------------------------------


@register_project_rule(
    "LIF003",
    Severity.ERROR,
    "an opening lifecycle op has no paired closing op anywhere in the "
    "project",
)
def unpaired_protocol(project: Project) -> Iterator[Finding]:
    graph = project.callgraph
    opener_sites: dict[int, list[CallSite]] = {i: [] for i in range(len(PROTOCOLS))}
    closer_classes: dict[int, list["str | None"]] = {
        i: [] for i in range(len(PROTOCOLS))
    }
    for fn in project.iter_functions():
        if not fn.module.is_repro:
            continue
        for site in graph.call_sites(fn):
            for idx, proto in enumerate(PROTOCOLS):
                if site.name in proto.openers:
                    if proto.typed:
                        cls = graph.receiver_class(site)
                        if cls is None or project.resolve_method(
                            cls, site.name
                        ) is None:
                            continue
                    opener_sites[idx].append(site)
                if site.name in proto.closers:
                    cls = graph.receiver_class(site)
                    closer_classes[idx].append(cls.name if cls else None)
    for idx, proto in enumerate(PROTOCOLS):
        for site in opener_sites[idx]:
            if _has_matching_closer(
                project, graph, proto, site, closer_classes[idx]
            ):
                continue
            yield site.caller.module.finding(
                "LIF003",
                Severity.ERROR,
                site.call,
                f"{proto.label}: {site.name!r} is opened here but "
                f"{_fmt_ops(proto.closers)} is never called anywhere in "
                f"the project — the protocol cannot terminate",
            )


def _has_matching_closer(
    project: Project,
    graph: CallGraph,
    proto: _Protocol,
    site: CallSite,
    closer_class_names: "list[str | None]",
) -> bool:
    if not proto.typed:
        return bool(closer_class_names)
    # Typed protocols accept a closer on any class that itself defines
    # one of the protocol's openers: the router's ``submit`` delegates
    # to the engine's, whose ``_finish`` terminates the request — the
    # obligation travels with the protocol family, not one class.
    for name in closer_class_names:
        if name is None:
            continue
        closer_cls = project.class_named(name)
        if closer_cls is None:
            continue
        if any(
            project.resolve_method(closer_cls, opener) is not None
            for opener in proto.openers
        ):
            return True
    return False


def _fmt_ops(ops: frozenset[str]) -> str:
    return "/".join(sorted(ops))
