"""ASY — async-safety lints for the event-driven front-end.

The serving front-end (`repro.serve.frontend`) multiplexes every client
on one asyncio loop over the shared virtual clock; a single blocking
call inside a coroutine stalls *all* tenants at once, and a coroutine
called without ``await`` silently does nothing.  Two rules:

* ASY001 — blocking calls inside ``async def``: ``time.sleep``, sync
  file I/O (``open``, ``Path.read_text``/``write_text``...),
  ``input``, ``os.system``, the ``subprocess`` family.  Nested ``def``
  bodies open their own (sync) scope and are skipped.
* ASY002 — a call to a locally-defined ``async def`` used as a bare
  expression statement: the coroutine object is created and dropped,
  never awaited.  (Assignments are exempt — handing a coroutine to
  ``asyncio.create_task``/``gather`` is normal.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import register_rule
from ..runner import ModuleInfo
from . import dotted, walk_skipping_defs

_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)
_BLOCKING_BUILTINS = frozenset({"open", "input"})
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


@register_rule(
    "ASY001",
    Severity.ERROR,
    "blocking call inside async def",
)
def blocking_in_async(module: ModuleInfo) -> Iterator[Finding]:
    for fn in ast.walk(module.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in walk_skipping_defs(fn.body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            blocked: str | None = None
            if isinstance(func, ast.Name) and func.id in _BLOCKING_BUILTINS:
                blocked = func.id
            elif isinstance(func, ast.Attribute):
                name = dotted(func)
                if name in _BLOCKING_DOTTED:
                    blocked = name
                elif func.attr in _BLOCKING_METHODS:
                    blocked = f"<obj>.{func.attr}"
            if blocked is not None:
                yield module.finding(
                    "ASY001",
                    Severity.ERROR,
                    node,
                    f"blocking call {blocked!r} inside 'async def "
                    f"{fn.name}' stalls the whole event loop (await an "
                    "async equivalent, or move it off-loop)",
                )


def _async_def_names(tree: ast.AST) -> frozenset[str]:
    return frozenset(
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    )


@register_rule(
    "ASY002",
    Severity.ERROR,
    "coroutine call never awaited",
)
def never_awaited(module: ModuleInfo) -> Iterator[Finding]:
    names = _async_def_names(module.tree)
    if not names:
        return
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        called: str | None = None
        if isinstance(func, ast.Name) and func.id in names:
            called = func.id
        elif isinstance(func, ast.Attribute) and func.attr in names:
            called = func.attr
        if called is not None:
            yield module.finding(
                "ASY002",
                Severity.ERROR,
                node,
                f"'{called}' is an async def: calling it builds a "
                "coroutine object and discards it — this statement "
                "does nothing without 'await'",
            )
