"""Bundled rule families.

Importing this package registers every rule (the modules register
themselves via :func:`repro.analysis.registry.register_rule`).  Shared
AST helpers live here so rule modules stay declarative.
"""

from __future__ import annotations

import ast
from typing import Iterator


def dotted(node: ast.AST) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to ``"a.b.c"``.

    Only pure name-rooted chains resolve; anything hanging off a call,
    subscript or literal returns ``None`` (we cannot know its module).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local alias -> imported module name (``import x as y``)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
    return aliases


def walk_skipping_defs(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function bodies.

    Used by scoped rules (async-safety, invariant discipline) where a
    nested ``def`` opens its own scope and is judged on its own.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# Registration side effects: each module calls register_rule (or
# register_project_rule) at import.
from . import (  # noqa: E402,F401
    async_safety,
    atomicity,
    determinism,
    invariants,
    layering,
    lifecycle,
    numerics,
    seeds,
)
