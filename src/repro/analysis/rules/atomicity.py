"""AWA — async atomicity: await points between a read and a write.

The front-end pumps one engine over an asyncio loop: every ``await`` is
a point where another coroutine may run and mutate shared engine state
(pool byte counters, scheduler queues, tenant buckets).  The classic
lost update looks innocent::

    depth = self.queue_depth          # read
    await self._drain_one()           # another submit() runs here
    self.queue_depth = depth - 1      # write of a stale value

These rules are the asyncio analogue of a race detector, as
reaching-definitions over the CFG with an *await-crossed* bit:

========  ==========================================================
AWA001    a write to ``self.X`` uses a local that was computed from
          ``self.X`` before an intervening ``await`` — the value is
          stale by the time it lands.
AWA002    a read-modify-write of ``self.X`` whose right-hand side
          contains ``await`` (``self.X += await f()``): the read
          happens before the suspension, the write after.
========  ==========================================================

Scope: ``async def`` functions inside ``src/repro/`` (the front-end and
anything engine-adjacent that grows ``async`` later).  Re-reading the
attribute after the await — what ``frontend._pump`` does with the
virtual clock — is the fix, and passes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import Node, build_cfg, walk_header
from ..dataflow import run_forward, union_join
from ..findings import Finding, Severity
from ..project import FunctionInfo, Project
from ..registry import register_project_rule
from . import walk_skipping_defs


def _self_attr_reads(expr: ast.AST) -> set[str]:
    """Names X for every ``self.X`` loaded inside ``expr``."""
    out: set[str] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            out.add(node.attr)
    return out


def _local_reads(expr: ast.AST) -> set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _has_await(stmt: ast.AST) -> bool:
    return any(isinstance(n, ast.Await) for n in walk_header(stmt))


def _self_attr_writes(stmt: ast.AST) -> list[tuple[str, ast.AST]]:
    """(attribute name, RHS) for every ``self.X = ...`` style store."""
    out: list[tuple[str, ast.AST]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            root = target
            if isinstance(root, ast.Subscript):
                root = root.value
            if (
                isinstance(root, ast.Attribute)
                and isinstance(root.value, ast.Name)
                and root.value.id == "self"
            ):
                out.append((root.attr, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        root = stmt.target
        if isinstance(root, ast.Subscript):
            root = root.value
        if (
            isinstance(root, ast.Attribute)
            and isinstance(root.value, ast.Name)
            and root.value.id == "self"
        ):
            out.append((root.attr, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        root2: ast.AST = stmt.target
        if (
            isinstance(root2, ast.Attribute)
            and isinstance(root2.value, ast.Name)
            and root2.value.id == "self"
        ):
            out.append((root2.attr, stmt.value))
    return out


@register_project_rule(
    "AWA001",
    Severity.ERROR,
    "a write to shared state uses a value read before an await "
    "(stale read-modify-write across a suspension point)",
)
def stale_write_across_await(project: Project) -> Iterator[Finding]:
    for fn in project.iter_functions():
        if not fn.is_async or not fn.module.is_repro:
            continue
        body_has_await = any(
            isinstance(n, ast.Await) for n in ast.walk(fn.node)
        )
        if not body_has_await:
            continue
        yield from _check_async_fn(fn)


def _check_async_fn(fn: FunctionInfo) -> Iterator[Finding]:
    cfg = build_cfg(fn.node)
    hits: dict[int, tuple[ast.AST, str, str]] = {}

    def transfer(
        node: Node, state: "frozenset[tuple[str, str, bool]]"
    ) -> "frozenset[tuple[str, str, bool]]":
        stmt = node.stmt
        if stmt is None:
            return state
        facts = set(state)
        awaited = _has_await(stmt)
        if awaited:
            facts = {(var, attr, True) for var, attr, _ in facts}
        # Detect hazardous writes *before* modeling this statement's own
        # assignments (the RHS is evaluated against the incoming state).
        for attr, rhs in _self_attr_writes(stmt):
            for var in _local_reads(rhs):
                if (var, attr, True) in facts:
                    hits[stmt.lineno] = (stmt, var, attr)
        # New taints from simple local assignments.
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is not None:
            direct = _self_attr_reads(value)
            inherited = {
                (attr, crossed or awaited)
                for var, attr, crossed in facts
                for read in _local_reads(value)
                if read == var
            }
            new_taints = {(a, awaited) for a in direct} | inherited
            for target in targets:
                if isinstance(target, ast.Name):
                    facts = {f for f in facts if f[0] != target.id}
                    facts |= {
                        (target.id, attr, crossed)
                        for attr, crossed in new_taints
                    }
        return frozenset(facts)

    run_forward(cfg, frozenset(), transfer, union_join)
    for lineno in sorted(hits):
        stmt, var, attr = hits[lineno]
        yield fn.module.finding(
            "AWA001",
            Severity.ERROR,
            stmt,
            f"write to 'self.{attr}' uses {var!r}, which was derived "
            f"from 'self.{attr}' before an await (in {fn.qualname}); "
            f"re-read the attribute after the suspension point",
        )


@register_project_rule(
    "AWA002",
    Severity.ERROR,
    "read-modify-write of shared state with an await on the right-hand "
    "side",
)
def rmw_with_await(project: Project) -> Iterator[Finding]:
    for fn in project.iter_functions():
        if not fn.is_async or not fn.module.is_repro:
            continue
        for stmt in walk_skipping_defs(fn.node.body):
            if not isinstance(stmt, ast.AugAssign):
                continue
            root: ast.AST = stmt.target
            if isinstance(root, ast.Subscript):
                root = root.value
            if not (
                isinstance(root, ast.Attribute)
                and isinstance(root.value, ast.Name)
                and root.value.id == "self"
            ):
                continue
            if any(isinstance(n, ast.Await) for n in ast.walk(stmt.value)):
                yield fn.module.finding(
                    "AWA002",
                    Severity.ERROR,
                    stmt,
                    f"'self.{root.attr} += <await ...>' reads the "
                    f"attribute before the suspension and writes after "
                    f"it (in {fn.qualname}); await into a local first, "
                    f"then apply the update",
                )
