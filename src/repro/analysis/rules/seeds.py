"""SEE — determinism taint: seeds must reach every RNG construction.

DET002 already bans *global-state* RNG (``np.random.normal``,
``random.random``).  What it cannot see is a locally constructed
generator with no seed::

    rng = np.random.default_rng()     # fresh OS entropy every run

which is exactly as replay-hostile as the global one, and worse when it
hides three calls below a serving entry point: the trace replays,
admission decisions differ, and the bit-exactness contract silently
becomes "usually".  These rules walk the call graph so the finding
lands at the construction site *with the chain that reaches it*:

========  ==========================================================
SEE001    an unseeded ``default_rng()`` / ``Random()`` /
          ``RandomState()`` construction reachable from a public
          serve/workload entry point (error; the call chain from the
          entry point is printed in the message).
SEE002    an unseeded construction elsewhere inside ``repro.*``
          (warning — not provably on a serving path, still
          replay-hostile).
========  ==========================================================

Seeded means a non-``None`` first argument or ``seed=`` keyword;
``default_rng(None)`` is spelled-out entropy and still fires.  Tests
and benchmarks are out of scope — they own their determinism story.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import CallGraph, CallSite
from ..findings import Finding, Severity
from ..project import FunctionInfo, Project
from ..registry import register_project_rule
from ..runner import ModuleInfo

#: Construction names that mint a generator.
_RNG_SUFFIXES = frozenset({"default_rng", "RandomState"})


def _imports_random_class(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            if any(alias.name == "Random" for alias in node.names):
                return True
    return False


def _is_rng_construction(call: ast.Call, name: str, module: ModuleInfo) -> bool:
    if name in _RNG_SUFFIXES:
        return True
    if name == "Random":
        if isinstance(call.func, ast.Attribute):
            root = call.func.value
            return isinstance(root, ast.Name) and root.id == "random"
        return _imports_random_class(module)
    return False


def _is_unseeded(call: ast.Call) -> bool:
    seed_args = [a for a in call.args if not isinstance(a, ast.Starred)]
    for kw in call.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
        if kw.arg is None:  # **kwargs — assume the caller knows
            return False
    if call.args and isinstance(call.args[0], ast.Starred):
        return False
    if not seed_args:
        return not call.keywords or all(k.arg != "seed" for k in call.keywords)
    first = seed_args[0]
    return isinstance(first, ast.Constant) and first.value is None


def _serve_roots(project: Project) -> list[FunctionInfo]:
    roots: list[FunctionInfo] = []
    for fn in project.iter_functions():
        mod = fn.module.repro_module or ""
        if not mod.startswith("serve"):
            continue
        if not fn.is_public:
            continue
        if fn.cls is not None and fn.cls.name.startswith("_"):
            continue
        roots.append(fn)
    return roots


def _short(fn: FunctionInfo) -> str:
    qual = fn.qualname.split("::", 1)[-1]
    mod = fn.module.repro_module
    return f"{mod}.{qual}" if mod else qual


def _unseeded_sites(
    project: Project, graph: CallGraph
) -> Iterator[tuple[CallSite, FunctionInfo]]:
    for fn in project.iter_functions():
        if not fn.module.is_repro:
            continue
        for site in graph.call_sites(fn):
            if _is_rng_construction(site.call, site.name, fn.module) and _is_unseeded(
                site.call
            ):
                yield site, fn


def _module_level_sites(
    module: ModuleInfo,
) -> Iterator[ast.Call]:
    """Unseeded constructions outside any function (import-time RNG)."""
    assert isinstance(module.tree, ast.Module)
    stack: list[ast.AST] = list(module.tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            from ..cfg import terminal_name

            name = terminal_name(node.func)
            if (
                name is not None
                and _is_rng_construction(node, name, module)
                and _is_unseeded(node)
            ):
                yield node
        stack.extend(ast.iter_child_nodes(node))


@register_project_rule(
    "SEE001",
    Severity.ERROR,
    "unseeded RNG construction reachable from a serve/workload entry "
    "point (seeds must flow from an explicit parameter or config)",
)
def unseeded_rng_on_serving_path(project: Project) -> Iterator[Finding]:
    graph = project.callgraph
    parent = graph.reachable_from(_serve_roots(project))
    for site, fn in _unseeded_sites(project, graph):
        if fn not in parent:
            continue
        chain = " -> ".join(_short(f) for f in CallGraph.chain(parent, fn))
        yield fn.module.finding(
            "SEE001",
            Severity.ERROR,
            site.call,
            f"unseeded {site.name}() on a serving path "
            f"(reached via {chain}); thread an explicit seed from the "
            f"caller's parameter or config",
        )
    # Import-time constructions in serve modules are trivially on the
    # serving path.
    for module in project.modules:
        mod = module.repro_module or ""
        if not mod.startswith("serve"):
            continue
        for call in _module_level_sites(module):
            yield module.finding(
                "SEE001",
                Severity.ERROR,
                call,
                f"unseeded RNG constructed at import time of repro.{mod}; "
                f"thread an explicit seed instead",
            )


@register_project_rule(
    "SEE002",
    Severity.WARNING,
    "unseeded RNG construction inside repro.* (replay-hostile even off "
    "the serving path)",
)
def unseeded_rng_in_repro(project: Project) -> Iterator[Finding]:
    graph = project.callgraph
    parent = graph.reachable_from(_serve_roots(project))
    for site, fn in _unseeded_sites(project, graph):
        if fn in parent:
            continue  # SEE001 already owns it
        yield fn.module.finding(
            "SEE002",
            Severity.WARNING,
            site.call,
            f"unseeded {site.name}() in {fn.qualname}; thread an "
            f"explicit seed so runs replay bit-exactly",
        )
    for module in project.modules:
        mod = module.repro_module
        if mod is None or mod.startswith("serve"):
            continue
        for call in _module_level_sites(module):
            yield module.finding(
                "SEE002",
                Severity.WARNING,
                call,
                f"unseeded RNG constructed at import time of "
                f"repro.{mod}; thread an explicit seed instead",
            )
