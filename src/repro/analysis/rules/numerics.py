"""NUM001 — float accumulation over unordered containers.

Float addition is not associative: ``sum(d.values())`` and
``sum(some_set)`` visit elements in hash/insertion order, so two runs
that build the container differently can disagree in the last ulp —
enough to flip a greedy rate-control decision or a regression-gate
comparison.  In the codec and metrics paths (where sums feed bit-exact
contracts and gated reports) the rule flags ``sum`` over ``.values()``,
``set(...)``, set literals/comprehensions, and generator/list
comprehensions drawing from one of those.  Fix by imposing an order
(``sum(sorted(...))``) or summing a deterministic sequence.

Heuristic (AST cannot see element types), so it ships as a *warning*:
integer sums are genuinely safe and earn an inline
``# repro: ignore[NUM001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import register_rule
from ..runner import ModuleInfo

#: Where float sums feed bit-exact or gated outputs.
NUMERIC_PATHS = (
    "src/repro/core/",
    "src/repro/entropy.py",
    "src/repro/perf.py",
    "src/repro/memsys.py",
    "src/repro/hardware/",
    "src/repro/obs/",
    "src/repro/serve/metrics.py",
)


def _is_unordered(node: ast.expr) -> str | None:
    """A human label if ``node`` iterates in hash/arbitrary order."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "values":
            return "dict.values()"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    return None


@register_rule(
    "NUM001",
    Severity.WARNING,
    "float sum over an unordered container",
)
def unordered_sum(module: ModuleInfo) -> Iterator[Finding]:
    if not module.relpath.startswith(NUMERIC_PATHS):
        return
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
        ):
            continue
        arg = node.args[0]
        label = _is_unordered(arg)
        if label is None and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            for gen in arg.generators:
                label = _is_unordered(gen.iter)
                if label is not None:
                    break
        if label is not None:
            yield module.finding(
                "NUM001",
                Severity.WARNING,
                node,
                f"sum over {label} accumulates in hash order — float "
                "results depend on insertion history; sort first "
                "(sum(sorted(...)))",
            )
