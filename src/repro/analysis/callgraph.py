"""Call resolution and interprocedural summaries over a :class:`Project`.

Resolution is deliberately modest — this is a linter's call graph, not a
compiler's.  A call resolves when the evidence is strong:

* ``f(...)`` — a module-level function in the caller's own module,
  else the unique module-level ``f`` project-wide;
* ``self.m(...)`` — method lookup through the caller's class MRO;
* ``self.attr.m(...)`` — via the class's inferred ``attr_types``;
* ``anything.m(...)`` — the unique class project-wide defining ``m``
  (capped: a name defined by many classes resolves to nothing, and
  builtin-collection method names like ``append`` never resolve).

Unresolved calls stay unresolved and the rules treat them
conservatively.  On top of resolution sit the three summaries the LIF
and SEE families consume:

* :meth:`CallGraph.raises_summary` — which *tracked* exceptions escape
  a function, through its callees, minus what local handlers certainly
  catch (this is what turns a ``pool.acquire`` call inside
  ``ingest_chunk`` into a ``BudgetExceededError`` edge in the caller's
  CFG);
* :meth:`CallGraph.closes_params` — parameters a callee may close
  (``kv`` handed to ``_finish`` counts as released because ``_finish``
  calls ``kv.release()``);
* :meth:`CallGraph.reachable_from` — BFS with parent pointers, so SEE
  findings print the entry-point call chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from .cfg import terminal_name, walk_header
from .project import ClassInfo, FunctionInfo, Project

#: Method names that belong to builtin collections; resolving these by
#: uniqueness would wire ``list.append`` to some project class.
_COLLECTION_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "copy",
        "sort", "reverse", "index", "count", "get", "setdefault", "update",
        "keys", "values", "items", "popitem", "add", "discard", "union",
        "join", "split", "strip", "format", "read", "write", "close",
        "flush", "encode", "decode", "startswith", "endswith",
    }
)

#: A bare method name defined by more classes than this is ambiguous.
_MAX_CANDIDATE_CLASSES = 4


@dataclass(frozen=True)
class CallSite:
    call: ast.Call
    caller: FunctionInfo
    #: Terminal name of the called expression (``self.pool.acquire`` →
    #: ``acquire``).
    name: str
    #: Dotted receiver (``self``, ``self.pool``, ``kv``) or ``None``
    #: for bare-name calls.
    receiver: str | None


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    def __init__(self, project: Project) -> None:
        self.project = project
        self._sites: dict[FunctionInfo, list[CallSite]] = {}
        self._raises_memo: dict[tuple[int, frozenset[str]], frozenset[str]] = {}
        self._raises_stack: set[tuple[int, frozenset[str]]] = set()
        self._closes_memo: dict[tuple[int, frozenset[str]], frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Call-site extraction.
    # ------------------------------------------------------------------
    def call_sites(self, fn: FunctionInfo) -> list[CallSite]:
        cached = self._sites.get(fn)
        if cached is not None:
            return cached
        sites: list[CallSite] = []
        for stmt in self._own_statements(fn):
            for node in walk_header(stmt):
                if not isinstance(node, ast.Call):
                    continue
                name = terminal_name(node.func)
                if name is None:
                    continue
                receiver = (
                    _dotted(node.func.value)
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                sites.append(
                    CallSite(call=node, caller=fn, name=name, receiver=receiver)
                )
        self._sites[fn] = sites
        return sites

    @staticmethod
    def _own_statements(fn: FunctionInfo) -> Iterator[ast.stmt]:
        """Statements of ``fn`` itself, not of nested ``def``s."""
        stack: list[ast.stmt] = list(fn.node.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield stmt
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.match_case):
                    stack.extend(child.body)

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------
    def resolve(self, site: CallSite) -> list[FunctionInfo]:
        project = self.project
        if site.receiver is None:
            local = [
                f
                for f in project.functions_by_name.get(site.name, [])
                if f.module is site.caller.module
            ]
            if local:
                return local[:1]
            everywhere = project.functions_by_name.get(site.name, [])
            return everywhere if len(everywhere) == 1 else []
        cls = self.receiver_class(site)
        if cls is not None:
            method = project.resolve_method(cls, site.name)
            return [method] if method is not None else []
        if site.name in _COLLECTION_METHODS:
            return []
        candidates = project.methods_by_name.get(site.name, [])
        owners = {id(f.cls) for f in candidates}
        if 0 < len(owners) <= _MAX_CANDIDATE_CLASSES:
            return list(candidates)
        return []

    def receiver_class(self, site: CallSite) -> ClassInfo | None:
        """The class a dotted receiver provably holds, if any."""
        receiver = site.receiver
        if receiver is None:
            return None
        caller_cls = site.caller.cls
        if receiver == "self":
            return caller_cls
        root, _, rest = receiver.partition(".")
        if root == "self" and caller_cls is not None and rest and "." not in rest:
            type_name = caller_cls.attr_types.get(rest)
            if type_name is not None:
                return self.project.class_named(type_name)
        if "." not in receiver and receiver[:1].isupper():
            # ClassName.method(...) — direct class reference.
            return self.project.class_named(receiver)
        return None

    # ------------------------------------------------------------------
    # Summaries.
    # ------------------------------------------------------------------
    def raises_summary(
        self, fn: FunctionInfo, tracked: frozenset[str]
    ) -> frozenset[str]:
        """Tracked exceptions that may escape ``fn`` (transitively)."""
        key = (id(fn.node), tracked)
        cached = self._raises_memo.get(key)
        if cached is not None:
            return cached
        if key in self._raises_stack:  # recursion: fixpoint-lite
            return frozenset()
        self._raises_stack.add(key)
        try:
            escaping: set[str] = set()
            self._collect_raises(fn, fn.node.body, tracked, (), escaping)
            result = frozenset(escaping)
        finally:
            self._raises_stack.discard(key)
        self._raises_memo[key] = result
        return result

    def _collect_raises(
        self,
        fn: FunctionInfo,
        body: Sequence[ast.stmt],
        tracked: frozenset[str],
        guards: tuple[tuple[tuple[str, ...] | None, ...], ...],
        escaping: set[str],
    ) -> None:
        def caught(exc: str) -> bool:
            for handlers in guards:
                for names in handlers:
                    if names is None:
                        return True
                    if self.project.catches(names, exc) is True:
                        return True
            return False

        def note(exc: str) -> None:
            if exc in tracked and not caught(exc):
                escaping.add(exc)

        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Raise):
                from .cfg import raise_name

                note(raise_name(stmt))
                continue
            for node in walk_header(stmt):
                if isinstance(node, ast.Call):
                    name = terminal_name(node.func)
                    if name is None:
                        continue
                    receiver = (
                        _dotted(node.func.value)
                        if isinstance(node.func, ast.Attribute)
                        else None
                    )
                    site = CallSite(
                        call=node, caller=fn, name=name, receiver=receiver
                    )
                    for callee in self.resolve(site):
                        for exc in self.raises_summary(callee, tracked):
                            note(exc)
            if isinstance(stmt, ast.Try):
                handler_specs = tuple(
                    self._handler_names(h) for h in stmt.handlers
                )
                self._collect_raises(
                    fn, stmt.body, tracked, guards + (handler_specs,), escaping
                )
                for handler in stmt.handlers:
                    self._collect_raises(
                        fn, handler.body, tracked, guards, escaping
                    )
                self._collect_raises(fn, stmt.orelse, tracked, guards, escaping)
                self._collect_raises(fn, stmt.finalbody, tracked, guards, escaping)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        self._collect_raises(
                            fn, [child], tracked, guards, escaping
                        )
                    elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                        self._collect_raises(
                            fn, child.body, tracked, guards, escaping
                        )

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> tuple[str, ...] | None:
        from .cfg import handler_type_names

        return handler_type_names(handler)

    def closes_params(
        self, fn: FunctionInfo, close_ops: frozenset[str]
    ) -> frozenset[str]:
        """Parameter names on which ``fn`` (transitively) may call one
        of ``close_ops`` — e.g. ``kv`` in ``_finish(self, kv)`` when the
        body runs ``kv.release()``."""
        key = (id(fn.node), close_ops)
        cached = self._closes_memo.get(key)
        if cached is not None:
            return cached
        self._closes_memo[key] = frozenset()  # cycle guard
        params = self._param_names(fn)
        closed: set[str] = set()
        for site in self.call_sites(fn):
            if site.name in close_ops and site.receiver in params:
                closed.add(site.receiver)
                continue
            callees = self.resolve(site)
            if not callees:
                continue
            for arg_name, callee_param in self.argument_bindings(site, callees):
                if arg_name not in params:
                    continue
                for callee in callees:
                    if callee_param in self.closes_params(callee, close_ops):
                        closed.add(arg_name)
        result = frozenset(closed)
        self._closes_memo[key] = result
        return result

    @staticmethod
    def _param_names(fn: FunctionInfo) -> frozenset[str]:
        args = fn.node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        return frozenset(n for n in names if n != "self")

    def argument_bindings(
        self, site: CallSite, callees: list[FunctionInfo]
    ) -> Iterator[tuple[str, str]]:
        """(caller local name, callee parameter name) pairs for simple
        name arguments at this site."""
        for callee in callees:
            args = callee.node.args
            params = [a.arg for a in [*args.posonlyargs, *args.args]]
            if callee.is_method and params and params[0] == "self":
                params = params[1:]
            for idx, arg in enumerate(site.call.args):
                if isinstance(arg, ast.Name) and idx < len(params):
                    yield arg.id, params[idx]
            for kw in site.call.keywords:
                if kw.arg is not None and isinstance(kw.value, ast.Name):
                    yield kw.value.id, kw.arg

    # ------------------------------------------------------------------
    # Reachability.
    # ------------------------------------------------------------------
    def reachable_from(
        self, roots: Sequence[FunctionInfo]
    ) -> dict[FunctionInfo, "FunctionInfo | None"]:
        """BFS parent map: reached function -> the caller it was first
        reached through (``None`` for roots)."""
        parent: dict[FunctionInfo, FunctionInfo | None] = {}
        queue: list[FunctionInfo] = []
        for root in roots:
            if root not in parent:
                parent[root] = None
                queue.append(root)
        while queue:
            fn = queue.pop(0)
            for site in self.call_sites(fn):
                for callee in self.resolve(site):
                    if callee not in parent:
                        parent[callee] = fn
                        queue.append(callee)
        return parent

    @staticmethod
    def chain(
        parent: dict[FunctionInfo, "FunctionInfo | None"], fn: FunctionInfo
    ) -> list[FunctionInfo]:
        """Root-first call chain ending at ``fn``."""
        out = [fn]
        cursor: FunctionInfo | None = parent.get(fn)
        while cursor is not None:
            out.append(cursor)
            cursor = parent.get(cursor)
        return list(reversed(out))

    # ------------------------------------------------------------------
    # CFG integration.
    # ------------------------------------------------------------------
    def sites_in_statement(
        self, fn: FunctionInfo, stmt: ast.AST
    ) -> Iterator[CallSite]:
        """Call sites in one statement's *header* (see ``header_exprs``)."""
        for node in walk_header(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name is None:
                continue
            receiver = (
                _dotted(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            yield CallSite(call=node, caller=fn, name=name, receiver=receiver)

    def raises_callback(
        self, fn: FunctionInfo, tracked: frozenset[str]
    ) -> Callable[[ast.AST], Sequence[str]]:
        """A ``raises_of`` for :func:`repro.analysis.cfg.build_cfg`: a
        statement may raise whatever its calls' summaries say escapes."""

        def raises_of(stmt: ast.AST) -> Sequence[str]:
            out: set[str] = set()
            for site in self.sites_in_statement(fn, stmt):
                for callee in self.resolve(site):
                    out |= self.raises_summary(callee, tracked)
            return sorted(out)

        return raises_of
