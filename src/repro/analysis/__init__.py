"""Codebase-native static analysis for the repro tree.

``python -m repro.analysis src tests benchmarks`` runs every registered
rule over the given trees and exits non-zero on error-severity findings
not covered by the checked-in baseline (``analysis-baseline.json``).

Five rule families, each encoding a contract this codebase actually
sells (see the rule modules for the full rationale):

=======  ==========================================================
LAY001   imports obey the declared layer matrix (``analysis.layers``)
DET001   no wall-clock reads outside ``repro.obs.timing``
DET002   no global-state RNG (legacy ``np.random``, stdlib ``random``)
DET003   no ``os.environ`` reads inside ``repro.*``
ASY001   no blocking calls inside ``async def``
ASY002   no coroutine calls that are never awaited
INV001   pool byte counters mutate only via ``_bump``
INV002   no bare ``except:``
INV003   shed-family exceptions never swallowed silently
INV004   no mutable default arguments inside ``repro.*``
NUM001   no float ``sum`` over unordered containers (warning)
=======  ==========================================================

Suppress a single judged-safe line inline::

    clock()  # repro: ignore[DET001] -- measured throughput, not replayed

Grandfather a finding (with a reason) in ``analysis-baseline.json`` —
``--write-baseline`` regenerates it from the current findings.  The
package is stdlib-only and imports nothing from the rest of ``repro``,
so the analyzer can never be broken by the code it judges.
"""

from __future__ import annotations

from .baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .findings import Finding, Severity
from .layers import LAYER_MATRIX, import_allowed, layer_of
from .registry import Rule, iter_rules, known_rule_ids, register_rule
from .runner import ModuleInfo, analyze_paths, analyze_source

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "LAYER_MATRIX",
    "ModuleInfo",
    "Rule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "import_allowed",
    "iter_rules",
    "known_rule_ids",
    "layer_of",
    "load_baseline",
    "register_rule",
    "write_baseline",
]
