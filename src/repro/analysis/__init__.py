"""Codebase-native static analysis for the repro tree.

``python -m repro.analysis src tests benchmarks`` runs every registered
rule over the given trees and exits non-zero on error-severity findings
not covered by the checked-in baseline (``analysis-baseline.json``).

Eight rule families, each encoding a contract this codebase actually
sells (see the rule modules for the full rationale):

=======  ==========================================================
LAY001   imports obey the declared layer matrix (``analysis.layers``)
DET001   no wall-clock reads outside ``repro.obs.timing``
DET002   no global-state RNG (legacy ``np.random``, stdlib ``random``)
DET003   no ``os.environ`` reads inside ``repro.*``
ASY001   no blocking calls inside ``async def``
ASY002   no coroutine calls that are never awaited
INV001   pool byte counters mutate only via ``_bump``
INV002   no bare ``except:``
INV003   shed-family exceptions never swallowed silently
INV004   no mutable default arguments inside ``repro.*``
NUM001   no float ``sum`` over unordered containers (warning)
LIF001   locally acquired resources released on every path
LIF002   ``begin_chunk`` not abandoned by a shed-family exception
LIF003   opening lifecycle ops have a paired closer in the project
AWA001   no stale read-modify-write of shared state across ``await``
AWA002   no ``self.X += await ...`` read-modify-write
SEE001   RNGs on serving paths constructed from explicit seeds
SEE002   unseeded RNG construction anywhere in ``repro.*`` (warning)
=======  ==========================================================

The LAY/DET/ASY/INV/NUM families judge one file at a time; LIF/AWA/SEE
are *interprocedural* — they run over a per-function CFG
(``analysis.cfg``), a project-wide call graph (``analysis.callgraph``)
and a worklist dataflow framework (``analysis.dataflow``) built once
per run from the same parsed modules.

Suppress a single judged-safe line inline::

    clock()  # repro: ignore[DET001] -- measured throughput, not replayed

Grandfather a finding (with a reason) in ``analysis-baseline.json`` —
``--write-baseline`` regenerates it from the current findings.  The
package is stdlib-only and imports nothing from the rest of ``repro``,
so the analyzer can never be broken by the code it judges.
"""

from __future__ import annotations

from .baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .findings import Finding, Severity
from .layers import LAYER_MATRIX, import_allowed, layer_of
from .registry import (
    ProjectRule,
    Rule,
    iter_project_rules,
    iter_rules,
    known_rule_ids,
    register_project_rule,
    register_rule,
)
from .runner import ModuleInfo, analyze_paths, analyze_source

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "LAYER_MATRIX",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "import_allowed",
    "iter_project_rules",
    "iter_rules",
    "known_rule_ids",
    "layer_of",
    "load_baseline",
    "register_project_rule",
    "register_rule",
    "write_baseline",
]
