"""Whole-project index: every class, method and function, cross-linked.

Per-module rules see one file at a time; the interprocedural rules
(LIF/AWA/SEE) need to know *who defines what* across the tree — which
class a ``self.pool`` attribute holds, what ``BudgetExceededError``
subclasses, which function a bare call name refers to.  :class:`Project`
builds that index once per run from the already-parsed
:class:`~repro.analysis.runner.ModuleInfo` list; the call graph
(:mod:`repro.analysis.callgraph`) layers resolution and summaries on
top of it.

Attribute types come from three honest sources, in priority order:
``self.X = SomeClass(...)`` constructor assignments, ``self.X = param``
where the parameter is annotated with a project class, and a small
curated table for the serve-layer names the LIF rules reason about.
Anything else is *unknown* — the rules treat unknown receivers
conservatively rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Union

from .cfg import BUILTIN_EXC_BASES, terminal_name
from .runner import ModuleInfo

if TYPE_CHECKING:  # pragma: no cover - cycle guard, types only
    from .callgraph import CallGraph

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Serve-layer attribute bindings the constructor scan cannot prove
#: (injected dependencies held behind protocols).  Curated, not guessed:
#: each name is unambiguous in this codebase.
CURATED_ATTR_TYPES: dict[str, str] = {
    "pool": "PagedKVPool",
    "kv": "RequestKV",
    "engine": "ServingEngine",
}


@dataclass
class FunctionInfo:
    """One ``def`` — module-level, method, or nested."""

    module: ModuleInfo
    node: FunctionNode
    name: str
    qualname: str
    cls: "ClassInfo | None" = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def __hash__(self) -> int:
        return id(self.node)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionInfo) and other.node is self.node


@dataclass
class ClassInfo:
    module: ModuleInfo
    node: ast.ClassDef
    name: str
    #: Terminal base-class names as written (``pool.BudgetExceededError``
    #: indexes as ``BudgetExceededError``).
    base_names: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X`` attribute name -> holding class name, where provable.
    attr_types: dict[str, str] = field(default_factory=dict)


class Project:
    """The cross-module index interprocedural rules run against."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self.by_path: dict[str, ModuleInfo] = {m.relpath: m for m in modules}
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: Module-level functions by bare name.
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        #: Methods by bare name, across every class.
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._callgraph: "CallGraph | None" = None
        for module in modules:
            self._index_module(module)
        for cls in self.classes:
            self._infer_attr_types(cls)

    # ------------------------------------------------------------------
    # Index construction.
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        assert isinstance(module.tree, ast.Module)

        def visit(
            body: list[ast.stmt], cls: ClassInfo | None, prefix: str
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{stmt.name}"
                    fn = FunctionInfo(
                        module=module,
                        node=stmt,
                        name=stmt.name,
                        qualname=f"{module.relpath}::{qual}",
                        cls=cls,
                    )
                    self.functions.append(fn)
                    if cls is not None and prefix == f"{cls.name}.":
                        cls.methods.setdefault(stmt.name, fn)
                        self.methods_by_name.setdefault(stmt.name, []).append(fn)
                    elif cls is None and prefix == "":
                        self.functions_by_name.setdefault(stmt.name, []).append(fn)
                    visit(stmt.body, cls, f"{qual}.")
                elif isinstance(stmt, ast.ClassDef):
                    info = ClassInfo(
                        module=module,
                        node=stmt,
                        name=stmt.name,
                        base_names=tuple(
                            name
                            for base in stmt.bases
                            if (name := terminal_name(base)) is not None
                        ),
                    )
                    self.classes.append(info)
                    self.classes_by_name.setdefault(stmt.name, []).append(info)
                    visit(stmt.body, info, f"{stmt.name}.")
                elif isinstance(stmt, (ast.If, ast.Try)):
                    # Conditional/guarded definitions still count.
                    visit(stmt.body, cls, prefix)
                    visit(stmt.orelse, cls, prefix)

        visit(module.tree.body, None, "")

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            annotations: dict[str, str] = {}
            args = method.node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None:
                    ann = terminal_name(arg.annotation)
                    if ann is not None and ann in self.classes_by_name:
                        annotations[arg.arg] = ann
            for stmt in ast.walk(method.node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    inferred: str | None = None
                    if isinstance(value, ast.Call):
                        name = terminal_name(value.func)
                        if name is not None and name in self.classes_by_name:
                            inferred = name
                    elif isinstance(value, ast.Name):
                        inferred = annotations.get(value.id)
                    if inferred is not None:
                        cls.attr_types.setdefault(target.attr, inferred)
        for attr, type_name in CURATED_ATTR_TYPES.items():
            if type_name in self.classes_by_name:
                cls.attr_types.setdefault(attr, type_name)

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------
    def class_named(self, name: str) -> ClassInfo | None:
        """The class called ``name``, when the project has exactly one."""
        found = self.classes_by_name.get(name, [])
        return found[0] if len(found) == 1 else None

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Approximate linearization: DFS over in-project bases."""
        out: list[ClassInfo] = []
        seen: set[int] = set()

        def walk(c: ClassInfo) -> None:
            if id(c) in seen:
                return
            seen.add(id(c))
            out.append(c)
            for base in c.base_names:
                parent = self.class_named(base)
                if parent is not None:
                    walk(parent)

        walk(cls)
        return out

    def resolve_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for owner in self.mro(cls):
            if name in owner.methods:
                return owner.methods[name]
        return None

    def exception_ancestors(self, exc: str) -> frozenset[str]:
        """``exc`` plus every base name, through in-project classes into
        the builtin table (``BudgetExceededError`` → ``ValueError`` →
        ``Exception`` → ``BaseException``)."""
        out: set[str] = set()
        work = [exc]
        while work:
            name = work.pop()
            if name in out:
                continue
            out.add(name)
            cls = self.class_named(name)
            if cls is not None:
                work.extend(cls.base_names)
            if name in BUILTIN_EXC_BASES:
                work.append(BUILTIN_EXC_BASES[name])
        return frozenset(out)

    def catches(self, handler_names: tuple[str, ...], exc: str) -> bool | None:
        """Hierarchy-aware handler matcher for the CFG builder."""
        from .cfg import WILDCARD

        if WILDCARD in handler_names:
            return None
        if exc == WILDCARD:
            if "Exception" in handler_names or "BaseException" in handler_names:
                return True
            return None
        ancestry = self.exception_ancestors(exc)
        if set(handler_names) & ancestry:
            return True
        known = lambda n: n in BUILTIN_EXC_BASES or self.class_named(n) is not None
        if all(known(n) or n == "BaseException" for n in handler_names):
            return False
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions)

    @property
    def callgraph(self) -> "CallGraph":
        """One shared :class:`~repro.analysis.callgraph.CallGraph` per
        project, so summaries memoize across rule families."""
        if self._callgraph is None:
            from .callgraph import CallGraph

            self._callgraph = CallGraph(self)
        return self._callgraph


def build_project(modules: list[ModuleInfo]) -> Project:
    return Project(modules)
