"""The checked-in baseline of grandfathered findings.

A baseline entry waives ``count`` occurrences of one fingerprint
(rule, path, stripped source line) — line numbers are deliberately not
part of the identity, so edits elsewhere in a file never invalidate the
waiver, while a *new* occurrence of the same pattern on a new line still
fires (the count is exceeded).

Every entry must carry a ``reason``: a baseline is a reviewed list of
judgment calls, not a mute button.  Entries whose pattern no longer
exists are reported as *stale* so the file shrinks as debt is paid.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    count: int
    reason: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)


class BaselineError(ValueError):
    """A baseline file that cannot be trusted (corrupt, wrong version)."""


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    raw = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as err:
        raise BaselineError(f"{path}: not valid JSON ({err})") from None
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a baseline document with version "
            f"{BASELINE_VERSION}, got {type(doc).__name__}"
        )
    entries: list[BaselineEntry] = []
    for item in doc.get("entries", []):
        try:
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    snippet=str(item["snippet"]),
                    count=int(item.get("count", 1)),
                    reason=str(item.get("reason", "")),
                )
            )
        except (KeyError, TypeError, ValueError) as err:
            raise BaselineError(f"{path}: malformed entry {item!r} ({err})") from None
    return entries


def write_baseline(
    path: str | Path, findings: list[Finding], reason: str = "grandfathered"
) -> list[BaselineEntry]:
    """Write a baseline waiving exactly the given findings."""
    counts = Counter(f.fingerprint for f in findings)
    entries = [
        BaselineEntry(rule=r, path=p, snippet=s, count=n, reason=reason)
        for (r, p, s), n in sorted(counts.items())
    ]
    doc = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "path": e.path,
                "snippet": e.snippet,
                "count": e.count,
                "reason": e.reason,
            }
            for e in entries
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return entries


def prune_baseline(
    path: str | Path,
    entries: list[BaselineEntry],
    stale: list[BaselineEntry],
) -> list[BaselineEntry]:
    """Rewrite the baseline at ``path`` without the stale entries.

    Counts and reasons on surviving entries are preserved verbatim —
    pruning removes paid-off debt, it never re-words the ledger.
    """
    stale_fps = {e.fingerprint for e in stale}
    kept = [e for e in entries if e.fingerprint not in stale_fps]
    doc = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "path": e.path,
                "snippet": e.snippet,
                "count": e.count,
                "reason": e.reason,
            }
            for e in sorted(kept, key=lambda e: e.fingerprint)
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return kept


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings into (new, stale-baseline-entries).

    Each entry absorbs up to ``count`` matching findings; anything past
    the count — or with no entry at all — stays live.  Entries that
    matched nothing come back as *stale* so they can be deleted.
    """
    budget: Counter[tuple[str, str, str]] = Counter()
    for entry in entries:
        budget[entry.fingerprint] += entry.count
    used: Counter[tuple[str, str, str]] = Counter()
    fresh: list[Finding] = []
    for finding in findings:
        fp = finding.fingerprint
        if used[fp] < budget[fp]:
            used[fp] += 1
        else:
            fresh.append(finding)
    stale = [e for e in entries if used[e.fingerprint] == 0]
    return fresh, stale
