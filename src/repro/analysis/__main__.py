"""CLI: ``python -m repro.analysis [paths...]``.

Human-readable report on stdout; ``--output FILE`` additionally writes
the machine-readable JSON document (CI uploads it as an artifact).
Exit status: 0 when no error-severity findings remain beyond the
baseline (warnings gate only under ``--strict``); 1 otherwise; 2 for
usage/configuration problems (unreadable baseline, missing paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .findings import Finding, Severity
from .registry import iter_rules

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "analysis-baseline.json"


def _report_json(
    findings: list[Finding], stale: list, baselined: int
) -> dict[str, object]:
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    return {
        "version": 1,
        "findings": [f.to_json() for f in findings],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "snippet": e.snippet}
            for e in stale
        ],
        "summary": {
            "errors": errors,
            "warnings": len(findings) - errors,
            "baselined": baselined,
            "stale_baseline_entries": len(stale),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or trees to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repo root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="stdout format (json prints the full findings document)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON findings document to this file",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings gate too (default: only errors fail the run)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.rule_id}  [{rule.severity.value:7s}]  {rule.summary}")
        return 0

    from .runner import analyze_paths

    try:
        findings = analyze_paths(args.paths, args.root)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = args.root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() else None

    if args.write_baseline:
        target = args.baseline or args.root / DEFAULT_BASELINE
        entries = write_baseline(target, findings)
        print(f"wrote {len(entries)} baseline entries to {target}")
        print("add a 'reason' to each entry before committing.")
        return 0

    stale: list = []
    baselined = 0
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except (BaselineError, OSError) as err:
            print(f"error: cannot read baseline: {err}", file=sys.stderr)
            return 2
        total = len(findings)
        findings, stale = apply_baseline(findings, entries)
        baselined = total - len(findings)

    doc = _report_json(findings, stale, baselined)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(doc, indent=2) + "\n")

    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        for finding in findings:
            print(finding.format())
        for entry in stale:
            print(
                f"stale baseline entry: {entry.rule} at {entry.path} "
                f"({entry.snippet!r} no longer found — delete it)"
            )
        summary = doc["summary"]
        print(
            f"{summary['errors']} errors, {summary['warnings']} warnings "  # type: ignore[index]
            f"({baselined} baselined, {len(stale)} stale baseline entries)"
        )

    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    gating = len(findings) if args.strict else errors
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
