"""CLI: ``python -m repro.analysis [paths...]``.

Human-readable report on stdout; ``--output FILE`` additionally writes
the machine-readable document (JSON findings by default, SARIF 2.1.0
under ``--format sarif``).  Results are cached under
``.cache/analysis/`` keyed by file content and analyzer source, so a
clean re-run is near-instant; ``--no-cache`` forces a cold judgment.

Exit status: 0 when no error-severity findings remain beyond the
baseline *and* the baseline carries no stale entries (warnings gate
only under ``--strict``; stale entries are debt already paid — run
``--prune-baseline`` to drop them); 1 otherwise; 2 for
usage/configuration problems (unreadable baseline, missing paths).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from .findings import Finding, Severity
from .registry import iter_project_rules, iter_rules

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "analysis-baseline.json"


def _report_json(
    findings: list[Finding], stale: list[BaselineEntry], baselined: int
) -> dict[str, object]:
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    return {
        "version": 1,
        "findings": [f.to_json() for f in findings],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "snippet": e.snippet}
            for e in stale
        ],
        "summary": {
            "errors": errors,
            "warnings": len(findings) - errors,
            "baselined": baselined,
            "stale_baseline_entries": len(stale),
        },
    }


def _changed_files(root: Path) -> set[str] | None:
    """Paths changed vs ``merge-base(HEAD, origin/main)`` plus untracked.

    ``None`` when git cannot answer (no repo, no origin/main) — the
    caller falls back to a full report rather than silently reporting
    nothing.
    """

    def _git(*argv: str) -> str:
        proc = subprocess.run(
            ["git", *argv],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
        return proc.stdout

    try:
        base = _git("merge-base", "HEAD", "origin/main").strip()
        diff = _git("diff", "--name-only", base)
        untracked = _git("ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        line.strip()
        for line in (diff + untracked).splitlines()
        if line.strip()
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or trees to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repo root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline without stale entries and exit 0",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="report only findings in files changed vs origin/main "
        "(interprocedural rules still judge the whole project; "
        "stale-baseline gating is disabled for this partial view)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="stdout format (json: full findings document; sarif: "
        "SARIF 2.1.0)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the machine-readable document to this file "
        "(JSON findings, or SARIF under --format sarif)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the .cache/analysis result cache",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings gate too (default: only errors fail the run)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    args = parser.parse_args(argv)

    if args.changed_only and (args.write_baseline or args.prune_baseline):
        print(
            "error: --changed-only sees a partial tree; baselines must "
            "be written/pruned from a full run",
            file=sys.stderr,
        )
        return 2

    if args.list_rules:
        for rule in iter_rules():
            print(
                f"{rule.rule_id}  [{rule.severity.value:7s}] [module ]  "
                f"{rule.summary}"
            )
        for prule in iter_project_rules():
            print(
                f"{prule.rule_id}  [{prule.severity.value:7s}] [project]  "
                f"{prule.summary}"
            )
        return 0

    from .cache import AnalysisCache, analyze_modules_cached
    from .runner import parse_paths

    try:
        modules, findings = parse_paths(args.paths, args.root)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    cache = None if args.no_cache else AnalysisCache(args.root)
    findings = sorted(
        findings + analyze_modules_cached(modules, cache),
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )
    if cache is not None:
        cache.save()

    changed_note: str | None = None
    if args.changed_only:
        changed = _changed_files(args.root)
        if changed is None:
            changed_note = (
                "note: --changed-only could not resolve "
                "merge-base(HEAD, origin/main); reporting everything"
            )
        else:
            findings = [f for f in findings if f.path in changed]

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = args.root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() else None

    if args.write_baseline:
        target = args.baseline or args.root / DEFAULT_BASELINE
        entries = write_baseline(target, findings)
        print(f"wrote {len(entries)} baseline entries to {target}")
        print("add a 'reason' to each entry before committing.")
        return 0

    stale: list[BaselineEntry] = []
    baselined = 0
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except (BaselineError, OSError) as err:
            print(f"error: cannot read baseline: {err}", file=sys.stderr)
            return 2
        total = len(findings)
        findings, stale = apply_baseline(findings, entries)
        baselined = total - len(findings)
        if args.prune_baseline:
            kept = prune_baseline(baseline_path, entries, stale)
            print(
                f"pruned {len(stale)} stale entries from {baseline_path} "
                f"({len(kept)} kept)"
            )
            return 0
    elif args.prune_baseline:
        print("error: --prune-baseline needs a baseline file", file=sys.stderr)
        return 2

    # A partial (--changed-only) run cannot judge staleness: an entry
    # for an unchanged file matches nothing simply because that file was
    # filtered out.
    stale_gates = not args.changed_only
    if not stale_gates:
        stale = []

    doc = _report_json(findings, stale, baselined)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        if args.format == "sarif":
            from .sarif import to_sarif

            args.output.write_text(
                json.dumps(to_sarif(findings), indent=2) + "\n"
            )
        else:
            args.output.write_text(json.dumps(doc, indent=2) + "\n")

    if args.format == "json":
        print(json.dumps(doc, indent=2))
    elif args.format == "sarif":
        from .sarif import to_sarif

        print(json.dumps(to_sarif(findings), indent=2))
    else:
        if changed_note is not None:
            print(changed_note)
        for finding in findings:
            print(finding.format())
        for entry in stale:
            print(
                f"stale baseline entry: {entry.rule} at {entry.path} "
                f"({entry.snippet!r} no longer found — run "
                f"--prune-baseline)"
            )
        summary = doc["summary"]
        print(
            f"{summary['errors']} errors, {summary['warnings']} warnings "  # type: ignore[index]
            f"({baselined} baselined, {len(stale)} stale baseline entries)"
        )

    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    gating = len(findings) if args.strict else errors
    if stale and stale_gates:
        return 1
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
