"""Finding and severity types shared by every rule.

A :class:`Finding` is one rule hit at one source location.  Its
*fingerprint* deliberately ignores the line number: baselines must
survive unrelated edits above a grandfathered line, so identity is
``(rule, path, stripped source line)`` — the same triple `ruff` and
`flake8` baselining tools converge on.  Two identical lines in one file
share a fingerprint; the baseline stores a *count* per fingerprint so
adding a third occurrence is still caught.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding gates the run.

    ``ERROR`` findings (beyond the baseline) fail the build; ``WARNING``
    findings are reported but only gate under ``--strict``.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity
    #: The stripped source line the finding anchors to (fingerprint key).
    snippet: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
            "snippet": self.snippet,
        }

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
