"""The declared layering matrix of the ``repro`` package.

This file *is* the architecture contract: ``LAYER_MATRIX`` maps each
top-level layer of ``repro`` to the set of layers it may import, and the
LAY001 rule enforces it over real ``import`` ASTs.  The shape mirrors
the ownership rules written down in PR 1 and re-stated in the README:

* ``core`` / ``entropy`` / ``quant`` / ``baselines`` are pure-numpy
  math — no model (``llm``) or serving (``serve``) dependencies, ever.
* ``llm`` owns training/eval; it builds on the math layers but never
  imports ``serve`` (the serving engine drives models, not vice versa).
* ``memsys`` / ``hardware`` / ``perf`` own every device constant;
  ``perf`` may read model *specs* (``llm.config``) but must not touch
  proxy-model code, so its grant is submodule-scoped.
* ``obs`` is a leaf importable by everything and importing nothing.
* ``analysis`` (this package) is stdlib-only and imports no sibling.

Grants are prefix-matched on dotted layer paths: ``"llm.config"``
allows exactly that submodule, ``"core"`` allows the whole package.
Same-layer imports are always allowed.  To let a new layer in, add an
explicit row here — the matrix is the documentation.
"""

from __future__ import annotations

#: layer -> dotted import prefixes (inside ``repro.``) it may use.
#: A layer's own name never needs listing; ``""`` is the package root
#: (``repro/__init__.py``), which must stay import-free to keep
#: ``import repro`` cheap.
LAYER_MATRIX: dict[str, frozenset[str]] = {
    "": frozenset(),
    "core": frozenset(),
    "entropy": frozenset(),
    "quant": frozenset(),
    "baselines": frozenset(),
    "llm": frozenset({"core", "entropy", "quant", "baselines"}),
    "memsys": frozenset(),
    "hardware": frozenset({"core"}),
    "perf": frozenset({"core", "memsys", "obs", "llm.config"}),
    "obs": frozenset(),
    "serve": frozenset({"core", "llm", "memsys", "perf", "obs"}),
    "analysis": frozenset(),
}


def layer_of(module: str) -> str | None:
    """Layer of a dotted ``repro``-internal module path.

    ``module`` is the path *inside* repro (``"serve.pool"`` -> layer
    ``"serve"``; ``""`` -> the package root).  Returns ``None`` for
    modules outside the declared matrix (a finding in itself).
    """
    top = module.split(".", 1)[0]
    return top if top in LAYER_MATRIX else None


def import_allowed(importer_module: str, imported_module: str) -> bool:
    """May ``repro.<importer_module>`` import ``repro.<imported_module>``?"""
    importer = layer_of(importer_module)
    target = layer_of(imported_module)
    if importer is None or target is None:
        return False
    if importer == target:
        return True
    for grant in LAYER_MATRIX[importer]:
        if imported_module == grant or imported_module.startswith(grant + "."):
            return True
        # A grant of a whole layer covers importing the bare package.
        if target == grant:
            return True
    return False
