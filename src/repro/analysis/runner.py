"""File discovery, parsing, suppression handling and rule dispatch.

The runner walks the target trees, parses each ``*.py`` once into a
:class:`ModuleInfo` (AST + source lines + suppression map + where the
file sits in the repo), hands that to every registered rule, and drops
findings whose anchor line carries a matching inline suppression::

    clock = time.monotonic  # repro: ignore[DET001] -- measured, not replayed
    risky()                 # repro: ignore          (suppresses every rule)

Suppressions are line-scoped and rule-scoped on purpose: a file-wide
waiver belongs in the checked-in baseline where reviewers see it
aggregated, not scattered through the source.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding, Severity

#: Directories never scanned (caches, VCS internals, build output).
SKIP_DIRS = frozenset({"__pycache__", ".git", ".cache", ".venv", "build", "dist"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules need to judge it."""

    relpath: str
    source: str
    tree: ast.AST
    #: Physical source lines (1-indexed via ``line_at``).
    lines: list[str] = field(default_factory=list)
    #: line number -> suppressed rule IDs; ``None`` means *all* rules.
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Location in the repo.
    # ------------------------------------------------------------------
    @property
    def is_repro(self) -> bool:
        """Inside the shipped package (``src/repro/``)?"""
        return self.relpath.startswith("src/repro/")

    @property
    def is_test(self) -> bool:
        return self.relpath.startswith("tests/")

    @property
    def is_benchmark(self) -> bool:
        return self.relpath.startswith("benchmarks/")

    @property
    def repro_module(self) -> str | None:
        """Dotted path inside ``repro`` (``"serve.pool"``; ``""`` for
        ``repro/__init__.py``) or ``None`` outside the package."""
        if not self.is_repro:
            return None
        parts = Path(self.relpath).with_suffix("").parts[2:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Helpers for rules.
    # ------------------------------------------------------------------
    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=lineno,
            col=col + 1,
            message=message,
            severity=severity,
            snippet=self.line_at(lineno),
        )

    def suppressed(self, finding: Finding) -> bool:
        marked = self.suppressions.get(finding.line, _NOT_MARKED)
        if marked is _NOT_MARKED:
            return False
        return marked is None or finding.rule in marked  # type: ignore[operator]


#: Sentinel distinguishing "no comment on this line" from "bare ignore".
_NOT_MARKED: frozenset[str] = frozenset({"\x00not-marked"})


def _parse_suppressions(lines: list[str]) -> dict[int, frozenset[str] | None]:
    out: dict[int, frozenset[str] | None] = {}
    for idx, line in enumerate(lines, start=1):
        if "repro:" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[idx] = None
        else:
            out[idx] = frozenset(
                r.strip() for r in rules.split(",") if r.strip()
            )
    return out


def parse_module(source: str, relpath: str) -> ModuleInfo | Finding:
    """Parse one file; a syntax error is itself a finding, not a crash."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as err:
        return Finding(
            rule="PARSE",
            path=relpath,
            line=err.lineno or 1,
            col=(err.offset or 0) + 1,
            message=f"syntax error: {err.msg}",
            severity=Severity.ERROR,
            snippet=lines[err.lineno - 1].strip() if err.lineno else "",
        )
    return ModuleInfo(
        relpath=relpath,
        source=source,
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(lines),
    )


def iter_python_files(paths: Iterable[Path], root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``paths`` (files or trees), sorted, deduped."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for target in paths:
        target = (root / target).resolve() if not target.is_absolute() else target
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = [target]
        elif target.is_dir():
            candidates = sorted(
                p
                for p in target.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                collected.append(path)
    return iter(sorted(collected))


def analyze_module(module: ModuleInfo) -> list[Finding]:
    """Run every per-module rule over one parsed module."""
    from .registry import iter_rules

    out: list[Finding] = []
    for rule in iter_rules():
        for finding in rule.check(module):
            if not module.suppressed(finding):
                out.append(finding)
    return sorted(out, key=lambda f: (f.path, f.line, f.col, f.rule))


def run_project_rules(modules: list[ModuleInfo]) -> list[Finding]:
    """Run every project-scoped (interprocedural) rule over the parsed
    modules as one project, honoring inline suppressions."""
    from .project import build_project
    from .registry import iter_project_rules

    project = build_project(modules)
    by_path = {m.relpath: m for m in modules}
    out: list[Finding] = []
    for rule in iter_project_rules():
        for finding in rule.check(project):
            owner = by_path.get(finding.path)
            if owner is None or not owner.suppressed(finding):
                out.append(finding)
    return sorted(out, key=lambda f: (f.path, f.line, f.col, f.rule))


def parse_paths(
    paths: Iterable[str | Path], root: str | Path
) -> tuple[list[ModuleInfo], list[Finding]]:
    """Parse every python file under ``paths``; syntax errors come back
    as findings, not crashes."""
    root = Path(root).resolve()
    modules: list[ModuleInfo] = []
    errors: list[Finding] = []
    for path in iter_python_files([Path(p) for p in paths], root):
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        parsed = parse_module(path.read_text(encoding="utf-8"), relpath)
        if isinstance(parsed, Finding):
            errors.append(parsed)
        else:
            modules.append(parsed)
    return modules, errors


def analyze_source(source: str, relpath: str) -> list[Finding]:
    """Analyze an in-memory snippet as if it lived at ``relpath``.

    The fixture entry point for tests: the path decides which rules and
    scopes apply (``src/repro/...`` vs ``benchmarks/...``).  The snippet
    is its own single-module project, so the interprocedural rules run
    against it too.
    """
    parsed = parse_module(source, relpath)
    if isinstance(parsed, Finding):
        return [parsed]
    findings = analyze_module(parsed) + run_project_rules([parsed])
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def analyze_paths(paths: Iterable[str | Path], root: str | Path) -> list[Finding]:
    """Analyze every python file under ``paths`` relative to ``root``:
    per-module rules file by file, then the project rules across the
    whole parsed set."""
    modules, findings = parse_paths(paths, root)
    for module in modules:
        findings.extend(analyze_module(module))
    findings.extend(run_project_rules(modules))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
