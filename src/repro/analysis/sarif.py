"""SARIF 2.1.0 export — findings in the format code-review UIs ingest.

One run, one driver (``repro-analysis``), every registered rule listed
under ``tool.driver.rules`` so viewers can render summaries, and one
``result`` per finding.  ``partialFingerprints`` carries the same
line-number-free identity the baseline uses (rule, path, snippet), so a
SARIF consumer's "new since last scan" matching agrees with ours.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from .findings import Finding, Severity
from .registry import iter_project_rules, iter_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptors() -> list[dict[str, object]]:
    descriptors: list[dict[str, object]] = []
    seen: set[str] = set()
    for rule in list(iter_rules()) + list(iter_project_rules()):
        if rule.rule_id in seen:
            continue
        seen.add(rule.rule_id)
        descriptors.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            }
        )
    return sorted(descriptors, key=lambda d: str(d["id"]))


def _fingerprint(finding: Finding) -> str:
    rule, path, snippet = finding.fingerprint
    digest = hashlib.sha256(
        f"{rule}\x00{path}\x00{snippet}".encode("utf-8")
    ).hexdigest()[:16]
    return f"{rule}:{digest}"


def _result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        "partialFingerprints": {"reproAnalysis/v1": _fingerprint(finding)},
    }


def to_sarif(findings: Iterable[Finding]) -> dict[str, object]:
    """The full SARIF document for one analyzer run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": _rule_descriptors(),
                    }
                },
                "results": [_result(f) for f in findings],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
