"""The rule registry: one decorated function per rule.

A rule is a callable ``(module: ModuleInfo) -> Iterable[Finding]``
registered under a stable ID (``LAY001``, ``DET002``, ...).  IDs are the
public contract — inline suppressions (``# repro: ignore[DET001]``) and
baseline entries refer to them — so renaming one is a breaking change.

Registration is import-driven: ``repro.analysis.rules`` imports every
rule module for its side effects, exactly like pytest plugins.  Rules
must be pure functions of the parsed module (no filesystem, no network,
no global mutable state) so a run is deterministic and order-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .project import Project
    from .runner import ModuleInfo

RuleFn = Callable[["ModuleInfo"], Iterable[Finding]]
ProjectRuleFn = Callable[["Project"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable ID, severity, one-line contract."""

    rule_id: str
    severity: Severity
    summary: str
    fn: RuleFn

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        yield from self.fn(module)


@dataclass(frozen=True)
class ProjectRule:
    """A rule that judges the whole project at once.

    Per-module rules see one file; project rules get the cross-module
    :class:`~repro.analysis.project.Project` index (call graph, class
    hierarchy), which is what the interprocedural LIF/AWA/SEE families
    run on.  Findings flow into the same fingerprint/baseline pipeline.
    """

    rule_id: str
    severity: Severity
    summary: str
    fn: ProjectRuleFn

    def check(self, project: "Project") -> Iterator[Finding]:
        yield from self.fn(project)


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register_project_rule(
    rule_id: str, severity: Severity, summary: str
) -> Callable[[ProjectRuleFn], ProjectRuleFn]:
    """Decorator registering ``fn`` as project-scoped rule ``rule_id``."""

    def deco(fn: ProjectRuleFn) -> ProjectRuleFn:
        if rule_id in _PROJECT_REGISTRY or rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _PROJECT_REGISTRY[rule_id] = ProjectRule(rule_id, severity, summary, fn)
        return fn

    return deco


def iter_project_rules() -> list[ProjectRule]:
    """All project-scoped rules, ordered by ID."""
    _ensure_loaded()
    return [_PROJECT_REGISTRY[k] for k in sorted(_PROJECT_REGISTRY)]


def register_rule(
    rule_id: str, severity: Severity, summary: str
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as rule ``rule_id``."""

    def deco(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY or rule_id in _PROJECT_REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id, severity, summary, fn)
        return fn

    return deco


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def iter_rules() -> list[Rule]:
    """All registered rules, ordered by ID (deterministic run order)."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def known_rule_ids() -> frozenset[str]:
    _ensure_loaded()
    return frozenset(_REGISTRY) | frozenset(_PROJECT_REGISTRY)


def _ensure_loaded() -> None:
    # Import the bundled rule modules exactly once, on first use, so
    # ``iter_rules`` works no matter which entry point ran first.
    from . import rules  # noqa: F401  (import for registration side effect)
