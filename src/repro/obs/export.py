"""Trace exporters: JSONL event logs and Chrome trace-event JSON.

Two formats over the same :class:`~repro.obs.trace.TraceRecorder`
buffer:

* **JSONL** — one :meth:`TraceEvent.to_obj` row per line, keys sorted,
  compact separators.  This is the deterministic archival format: two
  seeded replays produce byte-identical files (tested).
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` object
  format Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
  load directly.  Spans become ``ph:"X"`` complete events, instants
  ``ph:"i"``, counter samples ``ph:"C"``; every distinct track gets its
  own ``tid`` (assigned in first-seen order, named via ``thread_name``
  metadata), so each request renders as one timeline ribbon and each
  engine phase as its own row.  Times convert from clock seconds to the
  format's microseconds.

Both exporters append :meth:`TraceRecorder.open_state_spans`, so a
mid-run export shows in-flight requests' current states too.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "chrome_trace",
    "iter_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]


def _events(recorder_or_events):
    """Accept a recorder (buffer + open spans) or a plain iterable of
    :class:`TraceEvent`."""
    open_spans = getattr(recorder_or_events, "open_state_spans", None)
    events = getattr(recorder_or_events, "events", recorder_or_events)
    out = list(events)
    if open_spans is not None:
        out.extend(open_spans())
    return out


# ----------------------------------------------------------------------
# JSONL.
# ----------------------------------------------------------------------

def iter_jsonl(recorder_or_events):
    """Yield one compact, key-sorted JSON line per event (no newline)."""
    for event in _events(recorder_or_events):
        yield json.dumps(
            event.to_obj(), sort_keys=True, separators=(",", ":")
        )


def write_jsonl(recorder_or_events, path) -> int:
    """Write the JSONL event log; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as fh:
        for line in iter_jsonl(recorder_or_events):
            fh.write(line)
            fh.write("\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Chrome trace-event JSON.
# ----------------------------------------------------------------------

def chrome_trace(recorder_or_events) -> dict:
    """The Chrome trace-event object for a recorder or event list.

    One ``pid`` (0, named ``repro.serve``); one ``tid`` per distinct
    track, assigned in first-seen order so the export is deterministic.
    """
    trace_events: list[dict] = [
        {
            "args": {"name": "repro.serve"},
            "cat": "__metadata",
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
        }
    ]
    tids: dict[str, int] = {}

    def tid_of(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            trace_events.append(
                {
                    "args": {"name": str(track)},
                    "cat": "__metadata",
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "ts": 0,
                }
            )
        return tid

    for event in _events(recorder_or_events):
        record = {
            "cat": event.cat,
            "name": event.name,
            "pid": 0,
            "tid": tid_of(event.track),
            "ts": event.ts * 1e6,
        }
        if event.kind == "span":
            record["ph"] = "X"
            record["dur"] = event.dur * 1e6
        elif event.kind == "counter":
            record["ph"] = "C"
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant marker
        if event.args:
            record["args"] = {k: event.args[k] for k in sorted(event.args)}
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder_or_events, path) -> dict:
    """Write the Chrome trace JSON (key-sorted, deterministic bytes);
    returns the exported object."""
    doc = chrome_trace(recorder_or_events)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")))
    return doc
