"""Observability for the serving stack: tracing, metrics, exporters.

Three pieces, all deterministic under the virtual clock and all
zero-overhead when disabled:

* ``repro.obs.trace`` — :class:`TraceRecorder` records request
  lifecycle spans (submit -> queued -> admitted -> prefill chunks ->
  decode -> preempt/swap/shed/finish), engine step-phase spans
  (admit / preempt / prefill / decode / evict) and instant events
  against the shared clock, in a bounded ring buffer.
  :class:`NullRecorder` is the allocation-free default.
* ``repro.obs.registry`` — :class:`MetricsRegistry`: labeled counters,
  gauges and fixed-bucket histograms, snapshot-able mid-run.
  ``EngineMetrics`` and the front-end report are built on top of it.
* ``repro.obs.export`` / ``repro.obs.report`` — JSONL event logs,
  Chrome trace-event JSON (load at https://ui.perfetto.dev), and a
  text summarizer: ``python -m repro.obs.report trace.jsonl``.
"""

from .export import chrome_trace, iter_jsonl, write_chrome_trace, write_jsonl
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    MirroredCounters,
)
from .timing import WallTimer, wall_clock
from .trace import TERMINAL_STATES, NullRecorder, TraceEvent, TraceRecorder

_REPORT_NAMES = ("format_summary", "load_events", "summarize")


def __getattr__(name):
    # Lazy so ``python -m repro.obs.report`` does not import the module
    # twice (once here, once as __main__) and warn about it.
    if name in _REPORT_NAMES:
        from . import report

        return getattr(report, name)
    raise AttributeError(name)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MirroredCounters",
    "NullRecorder",
    "TERMINAL_STATES",
    "TraceEvent",
    "TraceRecorder",
    "WallTimer",
    "chrome_trace",
    "format_summary",
    "iter_jsonl",
    "load_events",
    "summarize",
    "wall_clock",
    "write_chrome_trace",
    "write_jsonl",
]
