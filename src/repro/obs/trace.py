"""Structured tracing for the serving stack: spans + instant events.

:class:`TraceRecorder` records OpenTelemetry-style events against the
engine's clock (normally a deterministic
:class:`~repro.serve.workload.VirtualClock`): *spans* with a start and a
duration (engine step phases, request lifecycle states), *instants*
(first token, an eviction, a retry) and *counter* samples (queue depth,
resident bytes).  Every serve-layer component takes an optional
recorder and defaults to :class:`NullRecorder`, whose every hook is a
no-op over shared singletons — the instrumented paths allocate nothing
when tracing is off, so observability is free by default and never
changes behaviour when it is on (the recorder reads the clock, it never
advances it, and it draws no randomness).

Request lifecycle tracking is stateful: :meth:`TraceRecorder.request_state`
closes the span for the request's previous state and opens one for the
new state, so a request's track renders as a gap-free ribbon of
``waiting -> prefilling -> running -> ... -> finished`` segments.
Terminal states (``finished``/``shed``) close the ribbon with an
instant.  Spans still open when an exporter runs are synthesized by
:meth:`TraceRecorder.open_state_spans` so a mid-run snapshot shows
in-flight requests too.

The event buffer is a bounded ring: past ``max_events`` the oldest
events drop (counted in ``dropped``), so a week-long replay cannot eat
the heap.  Event identity is deterministic — tracks are caller-supplied
names (request IDs, ``engine/decode``), timestamps come from the
deterministic clock, and buffer order is append order — so two seeded
replays produce byte-identical exports.
"""

from __future__ import annotations

from collections import deque

__all__ = ["NullRecorder", "TERMINAL_STATES", "TraceEvent", "TraceRecorder"]

#: Request lifecycle states that end the request's ribbon.
TERMINAL_STATES = frozenset({"finished", "shed"})

#: Shared empty args mapping: events without args all alias this one
#: dict, so an argless instant costs no allocation beyond the event.
_EMPTY_ARGS: dict = {}


class TraceEvent:
    """One recorded event.  ``kind`` is ``"span"`` (has a duration),
    ``"instant"`` or ``"counter"``; ``track`` is the timeline the event
    renders on (a request ID, an engine phase, ``"frontend"``); times
    are clock seconds."""

    __slots__ = ("kind", "name", "cat", "track", "ts", "dur", "args")

    def __init__(self, kind, name, cat, track, ts, dur=0.0, args=_EMPTY_ARGS):
        self.kind = kind
        self.name = name
        self.cat = cat
        self.track = track
        self.ts = ts
        self.dur = dur
        self.args = args

    def to_obj(self) -> dict:
        """A plain JSON-able dict (the JSONL export row)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
            "ts": self.ts,
            "dur": self.dur,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.kind} {self.cat}/{self.name} "
            f"track={self.track!r} ts={self.ts:.6f} dur={self.dur:.6f})"
        )


class _Span:
    """Context manager recording one complete span on exit."""

    __slots__ = ("_recorder", "name", "track", "cat", "args", "start_s")

    def __init__(self, recorder, name, track, cat, args):
        self._recorder = recorder
        self.name = name
        self.track = track
        self.cat = cat
        self.args = args
        self.start_s = 0.0

    def __enter__(self) -> "_Span":
        self.start_s = self._recorder.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder.complete(
            self.name,
            self.track,
            self.start_s,
            self._recorder.clock(),
            cat=self.cat,
            **self.args,
        )
        return False


class _NullSpan:
    """The do-nothing span: one shared instance serves every
    ``NullRecorder.span`` call, so disabled tracing allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default: every hook is a no-op.

    All instances are interchangeable (no state), ``events`` is the
    shared empty tuple, and :meth:`span` returns one module-level
    singleton context manager — instrumented hot paths pay a method
    call and nothing else when tracing is off.
    """

    __slots__ = ()

    enabled = False
    events: tuple = ()
    dropped = 0

    def __len__(self) -> int:
        return 0

    def instant(self, name, track, cat="event", **args) -> None:
        pass

    def counter(self, name, value, track, cat="counter") -> None:
        pass

    def complete(self, name, track, start_s, end_s, cat="span", **args) -> None:
        pass

    def span(self, name, track, cat="span", **args):
        return _NULL_SPAN

    def request_state(self, request_id, state, **args) -> None:
        pass

    def open_state_spans(self) -> list:
        return []


class TraceRecorder:
    """Bounded-ring trace recorder over a shared clock.

    ``clock`` is a zero-argument callable returning seconds (the
    engine's ``VirtualClock`` for deterministic replays).  The recorder
    never advances it.
    """

    enabled = True

    def __init__(self, clock, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.clock = clock
        self.max_events = int(max_events)
        self._events: deque[TraceEvent] = deque()
        #: Events dropped off the ring's old end once it filled.
        self.dropped = 0
        #: request track -> (state, since_s, args) for the open
        #: lifecycle span of each in-flight request.
        self._open: dict[str, tuple[str, float, dict]] = {}

    @property
    def events(self):
        """The retained events, oldest first."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def _append(self, event: TraceEvent) -> None:
        if len(self._events) >= self.max_events:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    # ------------------------------------------------------------------
    # Recording primitives.
    # ------------------------------------------------------------------
    def instant(self, name, track, cat="event", **args) -> None:
        """A zero-duration event at the current clock time."""
        self._append(
            TraceEvent(
                "instant", name, cat, track, self.clock(),
                args=args if args else _EMPTY_ARGS,
            )
        )

    def counter(self, name, value, track, cat="counter") -> None:
        """A counter-series sample (renders as a graph track)."""
        self._append(
            TraceEvent(
                "counter", name, cat, track, self.clock(),
                args={"value": value},
            )
        )

    def complete(self, name, track, start_s, end_s, cat="span", **args) -> None:
        """A finished span whose bounds the caller already knows."""
        self._append(
            TraceEvent(
                "span", name, cat, track, start_s,
                dur=max(0.0, end_s - start_s),
                args=args if args else _EMPTY_ARGS,
            )
        )

    def span(self, name, track, cat="span", **args):
        """Context manager: records a complete span from entry to exit."""
        return _Span(self, name, track, cat, args)

    # ------------------------------------------------------------------
    # Request lifecycle ribbons.
    # ------------------------------------------------------------------
    def request_state(self, request_id, state, **args) -> None:
        """The request entered ``state``: close its previous state span
        and open the new one (or close the ribbon with an instant when
        ``state`` is terminal)."""
        now = self.clock()
        prev = self._open.pop(request_id, None)
        if prev is not None:
            prev_state, since_s, prev_args = prev
            self._append(
                TraceEvent(
                    "span", prev_state, "request", request_id, since_s,
                    dur=max(0.0, now - since_s), args=prev_args,
                )
            )
        if state in TERMINAL_STATES:
            self._append(
                TraceEvent(
                    "instant", state, "request", request_id, now,
                    args=args if args else _EMPTY_ARGS,
                )
            )
        else:
            self._open[request_id] = (state, now, args if args else _EMPTY_ARGS)

    def open_state_spans(self) -> list[TraceEvent]:
        """Synthesized spans for lifecycle states still open at the
        current clock time (exporters append these so mid-run snapshots
        show in-flight requests; the recorder's own buffer is
        untouched)."""
        now = self.clock()
        return [
            TraceEvent(
                "span", state, "request", request_id, since_s,
                dur=max(0.0, now - since_s),
                args={**args, "open": True},
            )
            for request_id, (state, since_s, args) in self._open.items()
        ]
