"""Text summarizer for recorded serving traces.

Usage::

    python -m repro.obs.report trace.jsonl
    python -m repro.obs.report trace.json     # Chrome trace export

Reads a JSONL event log or a Chrome trace-event JSON (both written by
``repro.obs.export``) and prints the questions the terminal summary
dict cannot answer: which eviction causes dominated, why requests were
shed, where queue wait went, how step time split across engine phases,
and how many bytes swap moved per tier.  :func:`summarize` returns the
same breakdowns as a dict for programmatic use (tests, the ablation
harness).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter, defaultdict
from pathlib import Path

__all__ = ["format_summary", "load_events", "main", "summarize"]


def load_events(path) -> list[dict]:
    """Event dicts (the JSONL row shape) from either export format.

    Both formats open with ``{``, so sniffing by first character is not
    enough: a file is the Chrome export iff the *whole* text is one
    JSON object carrying ``traceEvents``; anything else is JSONL.
    """
    path = Path(path)
    text = path.read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _from_chrome(doc)
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _from_chrome(doc: dict) -> list[dict]:
    """Invert the Chrome export back to the JSONL row shape."""
    tracks = {0: "main"}
    events = []
    for record in doc.get("traceEvents", []):
        ph = record.get("ph")
        if ph == "M":
            if record.get("name") == "thread_name":
                tracks[record.get("tid", 0)] = record["args"]["name"]
            continue
        kind = {"X": "span", "C": "counter"}.get(ph, "instant")
        events.append(
            {
                "kind": kind,
                "name": record.get("name"),
                "cat": record.get("cat"),
                "track": tracks.get(record.get("tid", 0), "main"),
                "ts": record.get("ts", 0.0) / 1e6,
                "dur": record.get("dur", 0.0) / 1e6,
                "args": record.get("args", {}),
            }
        )
    return events


def _percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile of a non-empty list."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize(events: list[dict]) -> dict:
    """Aggregate one event log into the report's breakdowns."""
    counts: Counter = Counter()
    evictions: dict[str, dict] = defaultdict(lambda: {"pages": 0, "bytes": 0})
    sheds: Counter = Counter()
    queue_waits: list[float] = []
    state_time: dict[str, float] = defaultdict(float)
    phase_time: dict[str, dict] = defaultdict(lambda: {"spans": 0, "total_s": 0.0})
    swap: dict[str, dict] = defaultdict(
        lambda: {"out_bytes": 0, "in_bytes": 0, "events": 0}
    )
    requests: set = set()

    for event in events:
        kind, name, cat = event["kind"], event["name"], event["cat"]
        args = event.get("args", {})
        counts[f"{kind}:{cat}/{name}"] += 1
        if cat == "request":
            requests.add(event["track"])
            if kind == "span":
                state_time[name] += event["dur"]
                if name == "waiting":
                    queue_waits.append(event["dur"])
            elif name == "shed":
                sheds[args.get("reason", "policy")] += 1
        elif cat == "phase" and kind == "span":
            phase = phase_time[name]
            phase["spans"] += 1
            phase["total_s"] += event["dur"]
        elif cat == "pool" and kind == "instant":
            if name == "evict":
                bucket = evictions[args.get("reason", "unknown")]
                bucket["pages"] += 1
                bucket["bytes"] += int(args.get("nbytes", 0))
            elif name in ("swap_out", "swap_in"):
                tier = swap[args.get("tier", "host")]
                direction = "out_bytes" if name == "swap_out" else "in_bytes"
                tier[direction] += int(args.get("nbytes", 0))
                tier["events"] += 1
        elif cat == "frontend" and kind == "instant" and name == "shed":
            sheds[args.get("reason", "queue_full")] += 1

    queue_wait = {"count": len(queue_waits)}
    if queue_waits:
        queue_wait.update(
            total_s=sum(queue_waits),
            p50_s=_percentile(queue_waits, 50),
            p95_s=_percentile(queue_waits, 95),
            max_s=max(queue_waits),
        )
    return {
        "events": len(events),
        "requests_seen": len(requests),
        "event_counts": dict(sorted(counts.items())),
        "eviction_causes": dict(
            sorted(
                evictions.items(),
                key=lambda kv: kv[1]["bytes"],
                reverse=True,
            )
        ),
        "shed_reasons": dict(sheds.most_common()),
        "queue_wait": queue_wait,
        "state_time_s": dict(sorted(state_time.items())),
        "phase_time": dict(sorted(phase_time.items())),
        "swap_bytes_by_tier": dict(sorted(swap.items())),
    }


def format_summary(summary: dict) -> str:
    lines = [
        f"events: {summary['events']}  "
        f"requests seen: {summary['requests_seen']}",
    ]
    if summary["phase_time"]:
        lines.append("engine phase time:")
        for name, phase in sorted(
            summary["phase_time"].items(),
            key=lambda kv: kv[1]["total_s"],
            reverse=True,
        ):
            lines.append(
                f"  {name:<10} {phase['total_s']:.4f}s over "
                f"{phase['spans']} spans"
            )
    if summary["state_time_s"]:
        lines.append("request state time:")
        for state, total in sorted(
            summary["state_time_s"].items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {state:<12} {total:.4f}s")
    wait = summary["queue_wait"]
    if wait["count"]:
        lines.append(
            f"queue wait: {wait['count']} spans, total {wait['total_s']:.4f}s, "
            f"p50 {wait['p50_s']:.4f}s, p95 {wait['p95_s']:.4f}s, "
            f"max {wait['max_s']:.4f}s"
        )
    if summary["eviction_causes"]:
        lines.append("top eviction causes:")
        for reason, bucket in summary["eviction_causes"].items():
            lines.append(
                f"  {reason:<10} {bucket['pages']} pages, "
                f"{bucket['bytes']} B"
            )
    if summary["shed_reasons"]:
        lines.append("shed reasons:")
        for reason, count in summary["shed_reasons"].items():
            lines.append(f"  {reason:<12} {count}")
    if summary["swap_bytes_by_tier"]:
        lines.append("swap bytes by tier:")
        for tier, bucket in summary["swap_bytes_by_tier"].items():
            lines.append(
                f"  {tier:<6} out {bucket['out_bytes']} B, "
                f"in {bucket['in_bytes']} B ({bucket['events']} events)"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize a repro.obs trace (JSONL or Chrome JSON)."
    )
    parser.add_argument("trace", type=Path, help="trace file to summarize")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    args = parser.parse_args(argv)
    summary = summarize(load_events(args.trace))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
