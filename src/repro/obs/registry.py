"""A labeled metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-shaped, virtual-clock-friendly: metric families are dotted
names under a subsystem prefix (``engine.prefills``,
``pool.swap_bytes``, ``frontend.accepted``, ``request.ttft_s``) and a
family plus a sorted label set (``tenant=acme``, ``replica=1``,
``reason=ttl``) identifies one series.  Counters and gauges are plain
Python numbers (ints stay ints, so registry snapshots agree bit-for-bit
with the report dicts built from them); histograms have *fixed* upper
bucket edges declared per family, with the Prometheus ``le`` convention
— a sample equal to an edge lands in that edge's bucket — plus one
overflow bucket and running count/sum/min/max.

The registry is snapshot-able mid-run: :meth:`MetricsRegistry.snapshot`
returns a sorted, JSON-able dict, so replay drivers can emit a
time-series of snapshots instead of one terminal summary.

Key naming scheme (documented in the README's Observability section):

``<subsystem>.<metric>[{label=value,...}]``

where the subsystem is the component that owns the number (``engine``,
``pool``, ``trie``, ``frontend``, ``cluster``, ``request``, ``client``)
and labels carry the dimension a consumer would group by.  Unlabeled
series are totals; labeled series are per-dimension breakdowns and are
recorded *in addition to* the totals the reports read, never instead.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["DEFAULT_LATENCY_BUCKETS", "Histogram", "MetricsRegistry", "MirroredCounters"]

#: Default histogram edges (seconds), log-ish spaced around the serving
#: stack's simulated latencies: sub-millisecond decode steps up to
#: multi-second queue waits.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def series_key(name: str, labels: dict) -> str:
    """The canonical series key: ``name`` or ``name{k=v,...}`` with
    labels sorted, so the same label set always forms the same key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """A fixed-bucket histogram: ``le``-inclusive upper edges plus one
    overflow bucket, with running count/sum/min/max."""

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets):
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        v = float(value)
        # bisect_left: the first edge >= v, so v == edge lands in that
        # edge's bucket (Prometheus ``le`` semantics); v past the last
        # edge lands in the overflow bucket.
        self.counts[bisect_left(self.buckets, v)] += 1
        self.count += 1
        self.sum += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Counters, gauges and histograms keyed by (family, labels)."""

    def __init__(self):
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._hist_buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Counters.
    # ------------------------------------------------------------------
    def inc(self, name: str, value=1, **labels) -> None:
        key = series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def counter_set(self, name: str, value, **labels) -> None:
        """Overwrite a counter series (used to mirror externally-owned
        counters like the pool's stats dict)."""
        self._counters[series_key(name, labels)] = value

    def value(self, name: str, default=0, **labels):
        return self._counters.get(series_key(name, labels), default)

    # ------------------------------------------------------------------
    # Gauges.
    # ------------------------------------------------------------------
    def gauge_set(self, name: str, value, **labels) -> None:
        self._gauges[series_key(name, labels)] = value

    def gauge_max(self, name: str, value, **labels) -> None:
        """High-watermark gauge: keeps the maximum ever set."""
        key = series_key(name, labels)
        current = self._gauges.get(key)
        self._gauges[key] = value if current is None else max(current, value)

    def gauge(self, name: str, default=0, **labels):
        return self._gauges.get(series_key(name, labels), default)

    # ------------------------------------------------------------------
    # Histograms.
    # ------------------------------------------------------------------
    def define_histogram(self, name: str, buckets) -> None:
        """Declare a family's fixed bucket edges.  Redefinition must
        agree (histogram shapes are part of a family's contract)."""
        edges = tuple(float(b) for b in buckets)
        known = self._hist_buckets.get(name)
        if known is not None and known != edges:
            raise ValueError(
                f"histogram {name!r} already defined with edges {known}"
            )
        Histogram(edges)  # validates
        self._hist_buckets[name] = edges

    def observe(self, name: str, value, **labels) -> None:
        key = series_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = Histogram(
                self._hist_buckets.get(name, DEFAULT_LATENCY_BUCKETS)
            )
            self._histograms[key] = hist
        hist.observe(value)

    def histogram(self, name: str, **labels) -> Histogram | None:
        return self._histograms.get(series_key(name, labels))

    # ------------------------------------------------------------------
    # Snapshot.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Sorted, JSON-able view of every series — safe to take
        mid-run (pure read)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: hist.snapshot()
                for key, hist in sorted(self._histograms.items())
            },
        }


class MirroredCounters(dict):
    """A stats dict whose numeric writes mirror into a registry.

    Drop-in for the pool's ``self.stats`` dict: every
    ``stats[key] = value`` (and therefore ``stats[key] += n``) also
    lands in ``registry`` as ``<prefix><key>``, so the registry's view
    of the pool never goes stale and the ~30 existing mutation sites
    need no edits.  Non-numeric values stay dict-only.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, initial: dict, registry: MetricsRegistry, prefix: str):
        super().__init__()
        self._registry = registry
        self._prefix = prefix
        for key, value in initial.items():
            self[key] = value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if isinstance(value, (int, float)):
            self._registry.counter_set(self._prefix + key, value)
