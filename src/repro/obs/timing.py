"""The one blessed wall-clock accessor in the whole tree.

Determinism is this reproduction's core guarantee: replay runs on the
virtual clock, the codec is bit-exact, and the DET001 lint
(``repro.analysis``) forbids ``time.time``/``monotonic``/
``perf_counter`` everywhere — *except here*.  Code that genuinely
measures elapsed wall time (throughput benchmarks, the LRU clock of a
live pool) imports it from this module, so every wall-clock dependency
in the tree is greppable at one address and reviewed once.

* :func:`wall_clock` — a monotonic ``() -> float`` seconds callable,
  the drop-in default for ``clock=`` parameters.  Anything needing
  replayable time passes a ``VirtualClock.now`` instead.
* :class:`WallTimer` — a context manager accumulating elapsed wall
  seconds across one or more ``with`` blocks, for benchmark loops.
"""

from __future__ import annotations

import time

__all__ = ["WallTimer", "wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (the allowlisted accessor)."""
    return time.perf_counter()


class WallTimer:
    """Accumulate elapsed wall-clock seconds over ``with`` blocks.

    >>> timer = WallTimer()
    >>> with timer:
    ...     do_work()
    >>> timer.elapsed_s  # doctest: +SKIP
    0.0123

    Re-entering accumulates, so one timer can meter just the measured
    region of every loop iteration.
    """

    def __init__(self) -> None:
        self.elapsed_s: float = 0.0
        self._entered_at: float | None = None

    def __enter__(self) -> "WallTimer":
        self._entered_at = wall_clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._entered_at is None:
            raise RuntimeError("WallTimer exited without entering")
        self.elapsed_s += wall_clock() - self._entered_at
        self._entered_at = None
