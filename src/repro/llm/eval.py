"""Evaluation: held-out perplexity and multiple-choice accuracy."""

from __future__ import annotations

import numpy as np

from .model import ProxyModel

__all__ = ["perplexity", "multiple_choice_accuracy"]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def _collect_kv_stats(kv_quant, kv_stats: dict | None) -> None:
    """Surface a streaming KV hook's codec counters to the caller.

    Hooks built on the real block codec (``EccoStreamKVQuant``) expose a
    ``stats`` dict of tokens and byte counts; after an evaluation pass the
    caller-provided ``kv_stats`` dict receives a copy plus the achieved
    compression ratio.  Hooks without ``stats`` leave the dict untouched.
    """
    if kv_stats is None:
        return
    stats = getattr(kv_quant, "stats", None)
    if not isinstance(stats, dict):
        return
    kv_stats.update(stats)
    compressed = stats.get("compressed_nbytes", 0)
    if compressed:
        kv_stats["compression_ratio"] = stats["original_nbytes"] / compressed


def perplexity(
    model: ProxyModel,
    token_stream: np.ndarray,
    seq_len: int = 64,
    batch: int = 16,
    weights: dict | None = None,
    act_quant=None,
    kv_quant=None,
    kv_stats: dict | None = None,
) -> float:
    """Sliding-window next-token perplexity of a flat token stream.

    Pass ``kv_stats={}`` to receive the KV codec's token/byte counters
    when ``kv_quant`` is a streaming hook (see :func:`_collect_kv_stats`).
    """
    stream = np.asarray(token_stream, dtype=np.int64)
    window = seq_len + 1
    num_rows = stream.size // window
    rows = stream[: num_rows * window].reshape(num_rows, window)
    total_nll = 0.0
    total_tokens = 0
    for start in range(0, num_rows, batch):
        block = rows[start : start + batch]
        inputs, targets = block[:, :-1], block[:, 1:]
        logits = model.forward(
            inputs, weights=weights, act_quant=act_quant, kv_quant=kv_quant
        )
        logp = _log_softmax(logits)
        b_idx, t_idx = np.meshgrid(
            np.arange(block.shape[0]), np.arange(seq_len), indexing="ij"
        )
        total_nll += float(-logp[b_idx, t_idx, targets].sum())
        total_tokens += targets.size
    _collect_kv_stats(kv_quant, kv_stats)
    return float(np.exp(total_nll / max(total_tokens, 1)))


def _continuation_logprob(
    model: ProxyModel,
    prompt: np.ndarray,
    continuation: np.ndarray,
    **hooks,
) -> float:
    """Length-normalized log-likelihood of ``continuation`` after ``prompt``
    (the lm-eval-harness acc_norm protocol)."""
    tokens = np.concatenate([prompt, continuation])[None, :]
    logits = model.forward(tokens[:, :-1], **hooks)
    logp = _log_softmax(logits)[0]
    start = prompt.size - 1
    picks = logp[np.arange(start, start + continuation.size), continuation]
    return float(picks.mean())


def multiple_choice_accuracy(
    model: ProxyModel,
    items: list,
    weights: dict | None = None,
    act_quant=None,
    kv_quant=None,
    kv_stats: dict | None = None,
) -> float:
    """Fraction of items whose correct choice scores highest."""
    hooks = {"weights": weights, "act_quant": act_quant, "kv_quant": kv_quant}
    correct = 0
    for item in items:
        scores = [
            _continuation_logprob(model, item.prompt, choice, **hooks)
            for choice in item.choices
        ]
        if int(np.argmax(scores)) == item.answer:
            correct += 1
    _collect_kv_stats(kv_quant, kv_stats)
    return correct / max(len(items), 1)
