"""Calibration capture: activation statistics and KV-cache samples."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .model import ProxyModel

__all__ = ["ActStats", "CalibrationData", "calibrate"]


@dataclass
class ActStats:
    """Per-input-channel statistics of one projection's GEMM input."""

    mean_sq: np.ndarray  # E[x^2] per channel


@dataclass
class CalibrationData:
    """Everything the quantization schemes need from a calibration run."""

    act_stats: dict = field(default_factory=dict)  # name -> ActStats
    kv_samples: dict = field(default_factory=dict)  # "layers.N.k_cache" -> (T, d)
    num_tokens: int = 0


def calibrate(model: ProxyModel, tokens: np.ndarray) -> CalibrationData:
    """Run ``tokens`` (one (batch, seq+1) block) through the model and
    capture per-layer activation statistics and K/V samples."""
    tokens = np.asarray(tokens)
    inputs = tokens[:, :-1] if tokens.ndim == 2 else tokens[None, :-1]
    capture: dict = {}
    model.forward(inputs, capture=capture)
    data = CalibrationData(num_tokens=int(inputs.size))
    for name, (sq_sum, count) in capture.get("act_sq", {}).items():
        data.act_stats[name] = ActStats(
            mean_sq=(sq_sum / max(count, 1)).astype(np.float32)
        )
    data.kv_samples = capture.get("kv", {})
    return data
