"""Batched multi-request decode: one token per request per step.

A serving engine decodes many requests in lockstep: the projections and
the FFN run as one GEMM batched across requests, while attention walks
each request's own decoded KV history — the continuous-batching shape
production engines use.  KV state lives *outside* the model behind the
small :class:`BatchKV` append/read interface, so the same step function
drives any cache implementation: the paged compressed pool in
``repro.serve``, a plain fp16 cache, or a test double.

The math mirrors :meth:`ProxyModel.forward` exactly — RoPE at each
request's absolute position, the fixed per-channel KV gains on the cache
path, key smearing applied on *read* (the cache stores pre-smear keys,
as ``forward`` quantizes them) — so a request decoded incrementally
produces the same logits as the full-sequence forward pass, up to
float32 summation order.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .model import ProxyModel, _rmsnorm, _silu, _smear_heads

__all__ = ["BatchKV", "ChunkKV", "decode_step", "prefill_chunk"]


class BatchKV(Protocol):
    """Per-layer KV state for a batch of requests mid-decode.

    ``append`` receives the batch's new key/value rows (one row per
    request, gains applied, pre-smear — exactly what ``forward`` hands
    its ``kv_quant`` hook); ``read`` returns each request's full decoded
    history *including* the row just appended, as ``(T_r, n_heads *
    head_dim)`` arrays.  Histories may differ in length across requests.
    """

    def append(
        self, layer: int, keys: np.ndarray, values: np.ndarray
    ) -> None: ...

    def read(
        self, layer: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]: ...


class ChunkKV(Protocol):
    """One request's KV state mid-prefill (the chunked-prefill cache).

    ``append`` receives a whole chunk's key/value rows at once — gains
    applied, pre-smear, exactly what :meth:`ProxyModel.forward` hands its
    ``kv_quant`` hook — and must make them readable; ``read`` returns the
    request's full decoded history *including* the chunk just appended,
    as ``(T_total, n_heads * head_dim)`` arrays.
    """

    def append(
        self, layer: int, keys: np.ndarray, values: np.ndarray
    ) -> None: ...

    def read(self, layer: int) -> tuple[np.ndarray, np.ndarray]: ...


def prefill_chunk(
    model: ProxyModel,
    token_ids: np.ndarray,
    start_pos: int,
    kv: ChunkKV,
    weights: dict | None = None,
    act_quant=None,
) -> np.ndarray:
    """Ingest one prompt chunk for one request; returns (T, vocab) logits.

    ``token_ids`` are the chunk's tokens and ``start_pos`` the absolute
    position of the first one (= tokens already cached for the request).
    Every chunk position attends causally over the stored history plus
    the chunk's own (quantized-roundtrip) K/V — the same cache-read path
    :func:`decode_step` uses — so ingesting a prompt in slices stores
    byte-identical KV to the whole-prompt pass and yields the same
    first-token logits up to float32 summation order.  ``weights`` /
    ``act_quant`` are the usual quantization hooks.
    """
    spec = model.spec
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    T = token_ids.size
    if T == 0:
        raise ValueError("empty prefill chunk")
    start_pos = int(start_pos)
    H, hd = spec.n_heads, spec.head_dim
    aq = act_quant if act_quant is not None else (lambda x: x)

    half = hd // 2
    freqs = 10000.0 ** (-np.arange(half) / half)
    positions = start_pos + np.arange(T)
    angles = positions[:, None] * freqs[None, :]
    cos = np.cos(angles).astype(np.float32)[:, None, :]  # (T, 1, half)
    sin = np.sin(angles).astype(np.float32)[:, None, :]
    inv_sqrt = np.float32(1.0 / np.sqrt(hd))

    def rope(t: np.ndarray) -> np.ndarray:
        """Rotate (T, H, hd) at the chunk's absolute positions."""
        t1, t2 = t[..., :half], t[..., half:]
        return np.concatenate(
            [t1 * cos - t2 * sin, t1 * sin + t2 * cos], axis=-1
        )

    # Causal mask: chunk position t (absolute start_pos + t) may attend
    # to every stored token plus chunk positions <= t.
    total = start_pos + T
    key_pos = np.arange(total)[None, :]
    mask = np.where(
        key_pos > (start_pos + np.arange(T))[:, None], -np.inf, 0.0
    ).astype(np.float32)

    x = model.params["embed"].data[token_ids]  # (T, d)
    for layer in range(spec.num_layers):
        p = f"layers.{layer}."
        xn, _ = _rmsnorm(x)
        xq = aq(xn)
        q = xq @ model._weight(p + "attn.wq", weights).T
        k = xq @ model._weight(p + "attn.wk", weights).T
        v = xq @ model._weight(p + "attn.wv", weights).T
        q = rope(q.reshape(T, H, hd))
        k = rope(k.reshape(T, H, hd))
        v = v.reshape(T, H, hd)
        # The cache path: K/V stored (and compressed) with the fixed
        # per-channel gains; q and the wo input compensate exactly.
        gk = model.k_gain[layer].reshape(1, H, hd)
        gv = model.v_gain[layer].reshape(1, H, hd)
        q = (q / gk).astype(np.float32)
        k = (k * gk).astype(np.float32)
        v = (v * gv).astype(np.float32)
        kv.append(layer, k.reshape(T, H * hd), v.reshape(T, H * hd))
        keys, values = kv.read(layer)
        kh = keys.reshape(-1, H, hd).transpose(1, 0, 2)  # (H, total, hd)
        kh = _smear_heads(kh[None])[0]  # smear on read, like decode_step
        vh = values.reshape(-1, H, hd).transpose(1, 0, 2)
        scores = np.einsum("thd,hsd->hts", q, kh) * inv_sqrt
        scores += mask[None]
        scores -= scores.max(axis=-1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=-1, keepdims=True)
        ctx = np.einsum("hts,hsd->thd", probs, vh).reshape(T, H * hd)
        ctx = ctx / gv.reshape(1, H * hd)
        x = x + aq(ctx) @ model._weight(p + "attn.wo", weights).T

        xn2, _ = _rmsnorm(x)
        xq2 = aq(xn2)
        g = xq2 @ model._weight(p + "ffn.wg", weights).T
        u = xq2 @ model._weight(p + "ffn.wu", weights).T
        h = _silu(g) * u
        x = x + aq(h) @ model._weight(p + "ffn.wd", weights).T

    xf, _ = _rmsnorm(x)
    return xf @ model.params["embed"].data.T


def decode_step(
    model: ProxyModel,
    token_ids: np.ndarray,
    positions: np.ndarray,
    kv: BatchKV,
    weights: dict | None = None,
    act_quant=None,
) -> np.ndarray:
    """Advance every request by one token; returns (R, vocab) logits.

    ``token_ids[r]`` is request *r*'s newest token and ``positions[r]``
    its absolute position (= tokens already cached for that request).
    ``weights`` / ``act_quant`` are the same quantization hooks
    :meth:`ProxyModel.forward` takes, so a quantized model serves through
    the identical code path.
    """
    spec = model.spec
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    positions = np.asarray(positions, dtype=np.int64).reshape(-1)
    if token_ids.size != positions.size:
        raise ValueError(
            f"got {token_ids.size} token ids for {positions.size} positions"
        )
    R = token_ids.size
    H, hd = spec.n_heads, spec.head_dim
    aq = act_quant if act_quant is not None else (lambda x: x)

    half = hd // 2
    freqs = 10000.0 ** (-np.arange(half) / half)
    angles = positions[:, None] * freqs[None, :]
    cos = np.cos(angles).astype(np.float32)[:, None, :]  # (R, 1, half)
    sin = np.sin(angles).astype(np.float32)[:, None, :]
    inv_sqrt = np.float32(1.0 / np.sqrt(hd))

    def rope(t: np.ndarray) -> np.ndarray:
        """Rotate (R, H, hd) at each request's own absolute position."""
        t1, t2 = t[..., :half], t[..., half:]
        return np.concatenate(
            [t1 * cos - t2 * sin, t1 * sin + t2 * cos], axis=-1
        )

    x = model.params["embed"].data[token_ids]  # (R, d)
    for layer in range(spec.num_layers):
        p = f"layers.{layer}."
        xn, _ = _rmsnorm(x)
        xq = aq(xn)
        q = xq @ model._weight(p + "attn.wq", weights).T
        k = xq @ model._weight(p + "attn.wk", weights).T
        v = xq @ model._weight(p + "attn.wv", weights).T
        q = rope(q.reshape(R, H, hd))
        k = rope(k.reshape(R, H, hd))
        v = v.reshape(R, H, hd)
        # The cache path: K/V stored (and compressed) with the fixed
        # per-channel gains; q and the wo input compensate exactly.
        gk = model.k_gain[layer].reshape(1, H, hd)
        gv = model.v_gain[layer].reshape(1, H, hd)
        q = (q / gk).astype(np.float32)
        k = (k * gk).astype(np.float32)
        v = (v * gv).astype(np.float32)
        kv.append(layer, k.reshape(R, H * hd), v.reshape(R, H * hd))
        keys_list, values_list = kv.read(layer)
        ctx = np.empty((R, H * hd), dtype=np.float32)
        for r in range(R):
            kh = keys_list[r].reshape(-1, H, hd).transpose(1, 0, 2)
            kh = _smear_heads(kh[None])[0]  # (H, T, hd), smear on read
            vh = values_list[r].reshape(-1, H, hd).transpose(1, 0, 2)
            scores = np.einsum("hd,htd->ht", q[r], kh) * inv_sqrt
            scores -= scores.max(axis=-1, keepdims=True)
            probs = np.exp(scores)
            probs /= probs.sum(axis=-1, keepdims=True)
            ctx[r] = np.einsum("ht,htd->hd", probs, vh).reshape(H * hd)
        ctx = ctx / gv.reshape(1, H * hd)
        x = x + aq(ctx) @ model._weight(p + "attn.wo", weights).T

        xn2, _ = _rmsnorm(x)
        xq2 = aq(xn2)
        g = xq2 @ model._weight(p + "ffn.wg", weights).T
        u = xq2 @ model._weight(p + "ffn.wu", weights).T
        h = _silu(g) * u
        x = x + aq(h) @ model._weight(p + "ffn.wd", weights).T

    xf, _ = _rmsnorm(x)
    return xf @ model.params["embed"].data.T
