"""Model specifications: the real LLMs the performance models cover, and
the trained numpy proxy models the accuracy experiments use."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelSpec", "ProxySpec", "get_spec", "get_proxy_spec", "MODEL_SPECS",
           "PROXY_SPECS"]


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of a production LLM (LLaMA-family layout)."""

    name: str
    num_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    ffn_dim: int
    vocab_size: int = 32000

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim

    @property
    def params_per_layer(self) -> int:
        d, kv, f = self.d_model, self.kv_dim, self.ffn_dim
        return 2 * d * d + 2 * d * kv + 3 * d * f

    @property
    def num_params(self) -> int:
        return self.num_layers * self.params_per_layer + 2 * self.vocab_size * self.d_model

    @property
    def kv_bytes_per_token_fp16(self) -> int:
        """K + V bytes per generated token at FP16."""
        return 2 * self.num_layers * self.kv_dim * 2


MODEL_SPECS = {
    "llama-7b": ModelSpec("llama-7b", 32, 4096, 32, 32, 11008),
    "llama-13b": ModelSpec("llama-13b", 40, 5120, 40, 40, 13824),
    "llama-30b": ModelSpec("llama-30b", 60, 6656, 52, 52, 17920),
    "llama-65b": ModelSpec("llama-65b", 80, 8192, 64, 64, 22016),
    "llama2-7b": ModelSpec("llama2-7b", 32, 4096, 32, 32, 11008),
    "llama2-70b": ModelSpec("llama2-70b", 80, 8192, 64, 8, 28672),
    "mistral-7b": ModelSpec("mistral-7b", 32, 4096, 32, 8, 14336),
}


def get_spec(name: str) -> ModelSpec:
    """Look up a production model architecture by name."""
    try:
        return MODEL_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(MODEL_SPECS)}"
        ) from None


@dataclass(frozen=True)
class ProxySpec:
    """Architecture + training budget of a trained numpy proxy model."""

    name: str
    num_layers: int
    d_model: int
    n_heads: int
    ffn_dim: int
    vocab_size: int
    seq_len: int = 64
    train_steps: int = 900
    batch_size: int = 32
    learning_rate: float = 8e-3

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads


PROXY_SPECS = {
    "proxy-small": ProxySpec("proxy-small", num_layers=2, d_model=64,
                             n_heads=4, ffn_dim=128, vocab_size=64),
    "proxy-medium": ProxySpec("proxy-medium", num_layers=3, d_model=96,
                              n_heads=4, ffn_dim=192, vocab_size=64),
    "proxy-large": ProxySpec("proxy-large", num_layers=4, d_model=128,
                             n_heads=4, ffn_dim=256, vocab_size=64,
                             train_steps=1600, learning_rate=6e-3),
}


def get_proxy_spec(name: str) -> ProxySpec:
    try:
        return PROXY_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown proxy {name!r}; known: {sorted(PROXY_SPECS)}"
        ) from None
