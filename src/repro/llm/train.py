"""Training (and disk caching) of the proxy model zoo.

``get_trained_model`` returns a deterministic trained proxy: the first call
trains with Adam on the synthetic corpus and stores the weights under
``.cache/model_zoo/``; later calls (and other processes) load the cached
checkpoint.  ``finetune_steps`` continues training on a task-only mixture,
the Table 4 "instruct" stand-in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .config import ProxySpec, get_proxy_spec
from .data import SyntheticCorpus
from .model import ProxyModel

__all__ = ["TrainedModel", "get_trained_model", "train_proxy", "zoo_dir"]

_ZOO_VERSION = "v1"


def zoo_dir() -> Path:
    """The proxy-model cache directory (override with ECCO_CACHE_DIR)."""
    root = os.environ.get("ECCO_CACHE_DIR")
    if root is None:
        base = Path(__file__).resolve()
        for parent in base.parents:
            if (parent / "pyproject.toml").exists():
                root = parent / ".cache"
                break
        else:
            root = Path.cwd() / ".cache"
    path = Path(root) / "model_zoo"
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class TrainedModel:
    """A trained proxy plus its data generator and training summary."""

    model: ProxyModel
    generator: SyntheticCorpus
    spec: ProxySpec
    final_loss: float


class _Adam:
    def __init__(self, params: dict, lr: float):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self.m = {k: np.zeros_like(p.data) for k, p in params.items()}
        self.v = {k: np.zeros_like(p.data) for k, p in params.items()}
        self.t = 0

    def step(self) -> None:
        self.t += 1
        b1c = 1.0 - self.beta1**self.t
        b2c = 1.0 - self.beta2**self.t
        for name, param in self.params.items():
            g = param.grad
            self.m[name] = self.beta1 * self.m[name] + (1 - self.beta1) * g
            self.v[name] = self.beta2 * self.v[name] + (1 - self.beta2) * g * g
            update = (self.m[name] / b1c) / (
                np.sqrt(self.v[name] / b2c) + self.eps
            )
            param.data -= self.lr * update


def train_proxy(
    spec: ProxySpec,
    steps: int | None = None,
    seed: int = 0,
    task_fraction: float | None = None,
    model: ProxyModel | None = None,
    lr: float | None = None,
) -> tuple[ProxyModel, float]:
    """Train a proxy from scratch (or continue ``model``); returns the
    model and the mean loss over the final 20 steps."""
    steps = spec.train_steps if steps is None else steps
    lr = spec.learning_rate if lr is None else lr
    corpus = SyntheticCorpus()
    if task_fraction is not None:
        corpus = SyntheticCorpus(task_fraction=task_fraction)
    if model is None:
        model = ProxyModel(spec, seed=seed)
    optimizer = _Adam(model.params, lr=lr)
    window = spec.seq_len + 1

    # Pre-generate one large token pool and sample training windows from
    # it; sentence generation off the hot loop keeps training numpy-bound.
    pool_tokens = max(400_000, steps * spec.batch_size * 8)
    pool = corpus.token_stream(pool_tokens, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    recent: list[float] = []
    for step in range(steps):
        starts = rng.integers(0, pool.size - window, size=spec.batch_size)
        batch = np.stack([pool[s : s + window] for s in starts])
        model.zero_grads()
        loss = model.loss_and_grads(batch)
        # Linear warmup over the first 5% of steps.
        warmup = max(1, steps // 20)
        optimizer.lr = lr * min(1.0, (step + 1) / warmup)
        optimizer.step()
        recent.append(loss)
        if len(recent) > 20:
            recent.pop(0)
    return model, float(np.mean(recent))


def _checkpoint_path(name: str, finetune_steps: int) -> Path:
    suffix = f"-ft{finetune_steps}" if finetune_steps else ""
    return zoo_dir() / f"{name}{suffix}-{_ZOO_VERSION}.npz"


def get_trained_model(name: str, finetune_steps: int = 0) -> TrainedModel:
    """Load (or train and cache) a proxy model by name."""
    spec = get_proxy_spec(name)
    path = _checkpoint_path(name, finetune_steps)
    generator = SyntheticCorpus()
    if path.exists():
        blob = np.load(path)
        model = ProxyModel(spec, seed=0)
        for key, param in model.params.items():
            param.data = blob[key].astype(np.float32)
        return TrainedModel(
            model=model,
            generator=generator,
            spec=spec,
            final_loss=float(blob["final_loss"]),
        )

    if finetune_steps:
        # Task-heavy mixture, the fine-tuned ("instruct") variant —
        # continued from the cached base model.
        model = get_trained_model(name).model
        model, final_loss = train_proxy(
            spec, steps=finetune_steps, seed=7, task_fraction=1.0,
            model=model, lr=spec.learning_rate * 0.25,
        )
    else:
        model, final_loss = train_proxy(spec, seed=0)
    arrays = {key: param.data for key, param in model.params.items()}
    arrays["final_loss"] = np.float32(final_loss)
    tmp = path.with_suffix(".tmp.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)
    return TrainedModel(
        model=model, generator=generator, spec=spec, final_loss=final_loss
    )
