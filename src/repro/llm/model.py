"""A small LLaMA-style transformer in pure numpy, with manual backprop.

The proxy models are real trained networks — embeddings, RoPE attention,
SwiGLU FFNs, RMSNorm, tied output head — just small enough that training
runs in seconds on a CPU.  The forward pass takes the quantization hooks
the evaluation layer uses: ``weights`` overrides projection matrices,
``act_quant`` fake-quantizes GEMM inputs, ``kv_quant`` fake-quantizes each
layer's K/V tensors (the KV-cache read path), and ``capture`` records
calibration statistics.
"""

from __future__ import annotations

import numpy as np

from .config import ProxySpec

__all__ = ["Param", "ProxyModel", "LAYER_WEIGHT_KINDS"]

LAYER_WEIGHT_KINDS = [
    "attn.wq", "attn.wk", "attn.wv", "attn.wo", "ffn.wg", "ffn.wu", "ffn.wd",
]

_EPS = 1e-5


class Param:
    """A trainable tensor with its gradient slot."""

    def __init__(self, data: np.ndarray):
        self.data = data.astype(np.float32)
        self.grad = np.zeros_like(self.data)


def _rmsnorm(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    r = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + _EPS)
    return x / r, r


def _rmsnorm_backward(dy: np.ndarray, x: np.ndarray, r: np.ndarray) -> np.ndarray:
    d = x.shape[-1]
    return dy / r - x * np.sum(dy * x, axis=-1, keepdims=True) / (d * r**3)


def _rope_tables(seq_len: int, head_dim: int) -> tuple[np.ndarray, np.ndarray]:
    half = head_dim // 2
    freqs = 10000.0 ** (-np.arange(half) / half)
    angles = np.arange(seq_len)[:, None] * freqs[None, :]
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


def _rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate (B, T, H, hd) queries/keys; inverse = negate ``sin``."""
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    c = cos[None, :, None, :]
    s = sin[None, :, None, :]
    return np.concatenate([x1 * c - x2 * s, x1 * s + x2 * c], axis=-1)


#: Fraction of heads whose keys are smeared with the previous position's
#: key.  Smearing turns induction (match-then-copy-next) into a one-layer
#: circuit, which tiny models learn reliably (Olsson et al., 2022).
SMEAR = 0.5


def _smear_heads(kh: np.ndarray) -> np.ndarray:
    """Mix k[t-1] into k[t] on the second half of the heads; (B,H,T,hd)."""
    out = kh.copy()
    sm = kh.shape[1] // 2
    out[:, sm:, 1:] = (1.0 - SMEAR) * kh[:, sm:, 1:] + SMEAR * kh[:, sm:, :-1]
    return out


def _smear_heads_backward(dks: np.ndarray) -> np.ndarray:
    """Adjoint of :func:`_smear_heads`."""
    dk = dks.copy()
    sm = dks.shape[1] // 2
    dk[:, sm:, 1:] = (1.0 - SMEAR) * dks[:, sm:, 1:]
    dk[:, sm:, :-1] += SMEAR * dks[:, sm:, 1:]
    return dk


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def _silu_grad(x: np.ndarray) -> np.ndarray:
    sig = 1.0 / (1.0 + np.exp(-x))
    return sig * (1.0 + x * (1.0 - sig))


class ProxyModel:
    """Weights + forward/backward for one proxy spec.

    The KV-cache read/write path applies fixed per-channel gains (``q``
    compensates and the inverse folds into ``wo``), an exact
    reparameterization of the network: the function is unchanged, but the
    *cached* K/V tensors carry the strong per-channel scale disparity real
    LLM caches exhibit — which is the structure entropy-aware compression
    feeds on.
    """

    #: Log-std of the fixed per-channel KV gains.
    KV_GAIN_SPREAD = 0.6

    def __init__(self, spec: ProxySpec, seed: int = 0):
        self.spec = spec
        rng = np.random.default_rng(seed)
        d, f, v = spec.d_model, spec.ffn_dim, spec.vocab_size
        scale = 0.02
        out_scale = scale / np.sqrt(2.0 * spec.num_layers)
        gain_rng = np.random.default_rng(0xECC0 + spec.num_layers)
        self.k_gain = np.exp(
            gain_rng.normal(0.0, self.KV_GAIN_SPREAD, size=(spec.num_layers, d))
        ).astype(np.float32)
        self.v_gain = np.exp(
            gain_rng.normal(0.0, self.KV_GAIN_SPREAD, size=(spec.num_layers, d))
        ).astype(np.float32)
        self.params: dict[str, Param] = {
            "embed": Param(rng.normal(0.0, scale, size=(v, d)))
        }
        for layer in range(spec.num_layers):
            p = f"layers.{layer}."
            self.params[p + "attn.wq"] = Param(rng.normal(0.0, scale, size=(d, d)))
            self.params[p + "attn.wk"] = Param(rng.normal(0.0, scale, size=(d, d)))
            self.params[p + "attn.wv"] = Param(rng.normal(0.0, scale, size=(d, d)))
            self.params[p + "attn.wo"] = Param(
                rng.normal(0.0, out_scale, size=(d, d))
            )
            self.params[p + "ffn.wg"] = Param(rng.normal(0.0, scale, size=(f, d)))
            self.params[p + "ffn.wu"] = Param(rng.normal(0.0, scale, size=(f, d)))
            self.params[p + "ffn.wd"] = Param(
                rng.normal(0.0, out_scale, size=(d, f))
            )

    @property
    def weight_names(self) -> list:
        """The quantizable projection matrices, in layer order."""
        return [
            f"layers.{layer}.{kind}"
            for layer in range(self.spec.num_layers)
            for kind in LAYER_WEIGHT_KINDS
        ]

    def _weight(self, name: str, weights: dict | None) -> np.ndarray:
        if weights is not None and name in weights:
            return weights[name]
        return self.params[name].data

    # ------------------------------------------------------------------
    # Forward (with quantization hooks) — used by evaluation/calibration.
    # ------------------------------------------------------------------
    def forward(
        self,
        tokens: np.ndarray,
        weights: dict | None = None,
        act_quant=None,
        kv_quant=None,
        capture: dict | None = None,
    ) -> np.ndarray:
        """Logits for ``tokens`` of shape (B, T)."""
        spec = self.spec
        B, T = tokens.shape
        H, hd = spec.n_heads, spec.head_dim
        aq = act_quant if act_quant is not None else (lambda x: x)
        cos, sin = _rope_tables(T, hd)
        mask = np.triu(np.full((T, T), -np.inf, dtype=np.float32), k=1)

        x = self.params["embed"].data[tokens]
        for layer in range(spec.num_layers):
            p = f"layers.{layer}."
            xn, _ = _rmsnorm(x)
            xq = aq(xn)
            if capture is not None:
                self._record_stat(capture, p + "attn.wq", xn)
                self._record_stat(capture, p + "attn.wk", xn)
                self._record_stat(capture, p + "attn.wv", xn)
            q = xq @ self._weight(p + "attn.wq", weights).T
            k = xq @ self._weight(p + "attn.wk", weights).T
            v = xq @ self._weight(p + "attn.wv", weights).T
            q = _rope(q.reshape(B, T, H, hd), cos, sin)
            k = _rope(k.reshape(B, T, H, hd), cos, sin)
            v = v.reshape(B, T, H, hd)
            # The cache path: K/V are stored (and quantized) with the fixed
            # per-channel gains; q and the wo input compensate exactly.
            gk = self.k_gain[layer].reshape(1, 1, H, hd)
            gv = self.v_gain[layer].reshape(1, 1, H, hd)
            q = q / gk
            k = k * gk
            v = v * gv
            if capture is not None:
                capture.setdefault("kv", {})[p + "k_cache"] = k.reshape(
                    B * T, H * hd
                ).astype(np.float32)
                capture["kv"][p + "v_cache"] = v.reshape(B * T, H * hd).astype(
                    np.float32
                )
            if kv_quant is not None:
                k = kv_quant(p + "k_cache", k.reshape(B * T, H * hd)).reshape(
                    B, T, H, hd
                )
                v = kv_quant(p + "v_cache", v.reshape(B * T, H * hd)).reshape(
                    B, T, H, hd
                )
            qh = np.ascontiguousarray(q.transpose(0, 2, 1, 3))  # (B,H,T,hd)
            kh = _smear_heads(np.ascontiguousarray(k.transpose(0, 2, 1, 3)))
            vh = np.ascontiguousarray(v.transpose(0, 2, 1, 3))
            scores = (qh @ kh.transpose(0, 1, 3, 2)) / np.sqrt(hd) + mask[None, None]
            scores -= scores.max(axis=-1, keepdims=True)
            probs = np.exp(scores)
            probs /= probs.sum(axis=-1, keepdims=True)
            ctx = (probs @ vh).transpose(0, 2, 1, 3).reshape(B, T, H * hd)
            ctx = ctx / gv.reshape(1, 1, H * hd)
            if capture is not None:
                self._record_stat(capture, p + "attn.wo", ctx)
            x = x + aq(ctx) @ self._weight(p + "attn.wo", weights).T

            xn2, _ = _rmsnorm(x)
            if capture is not None:
                self._record_stat(capture, p + "ffn.wg", xn2)
                self._record_stat(capture, p + "ffn.wu", xn2)
            xq2 = aq(xn2)
            g = xq2 @ self._weight(p + "ffn.wg", weights).T
            u = xq2 @ self._weight(p + "ffn.wu", weights).T
            h = _silu(g) * u
            if capture is not None:
                self._record_stat(capture, p + "ffn.wd", h)
            x = x + aq(h) @ self._weight(p + "ffn.wd", weights).T

        xf, _ = _rmsnorm(x)
        return xf @ self.params["embed"].data.T

    @staticmethod
    def _record_stat(capture: dict, name: str, acts: np.ndarray) -> None:
        stats = capture.setdefault("act_sq", {})
        flat = acts.reshape(-1, acts.shape[-1])
        entry = stats.get(name)
        sq = np.sum(flat.astype(np.float64) ** 2, axis=0)
        if entry is None:
            stats[name] = [sq, flat.shape[0]]
        else:
            entry[0] += sq
            entry[1] += flat.shape[0]

    # ------------------------------------------------------------------
    # Training step: forward with saved intermediates + manual backward.
    # ------------------------------------------------------------------
    def loss_and_grads(self, batch: np.ndarray) -> float:
        """Mean next-token cross-entropy; gradients land in ``.grad``."""
        spec = self.spec
        inputs, targets = batch[:, :-1], batch[:, 1:]
        B, T = inputs.shape
        H, hd = spec.n_heads, spec.head_dim
        cos, sin = _rope_tables(T, hd)
        neg_sin = -sin
        mask = np.triu(np.full((T, T), -np.inf, dtype=np.float32), k=1)
        E = self.params["embed"].data

        x = E[inputs]
        saved = []
        for layer in range(spec.num_layers):
            p = f"layers.{layer}."
            Wq = self.params[p + "attn.wq"].data
            Wk = self.params[p + "attn.wk"].data
            Wv = self.params[p + "attn.wv"].data
            Wo = self.params[p + "attn.wo"].data
            Wg = self.params[p + "ffn.wg"].data
            Wu = self.params[p + "ffn.wu"].data
            Wd = self.params[p + "ffn.wd"].data

            xn, r1 = _rmsnorm(x)
            q = _rope((xn @ Wq.T).reshape(B, T, H, hd), cos, sin)
            k = _rope((xn @ Wk.T).reshape(B, T, H, hd), cos, sin)
            v = (xn @ Wv.T).reshape(B, T, H, hd)
            qh = np.ascontiguousarray(q.transpose(0, 2, 1, 3))  # (B,H,T,hd)
            kh = _smear_heads(np.ascontiguousarray(k.transpose(0, 2, 1, 3)))
            vh = np.ascontiguousarray(v.transpose(0, 2, 1, 3))
            scores = (qh @ kh.transpose(0, 1, 3, 2)) / np.sqrt(hd) + mask[None, None]
            scores -= scores.max(axis=-1, keepdims=True)
            probs = np.exp(scores)
            probs /= probs.sum(axis=-1, keepdims=True)
            ctx = (probs @ vh).transpose(0, 2, 1, 3).reshape(B, T, H * hd)
            x_attn = x + ctx @ Wo.T

            xn2, r2 = _rmsnorm(x_attn)
            g = xn2 @ Wg.T
            u = xn2 @ Wu.T
            h = _silu(g) * u
            x_out = x_attn + h @ Wd.T
            saved.append(
                (x, xn, r1, qh, kh, vh, probs, ctx, x_attn, xn2, r2, g, u, h)
            )
            x = x_out

        xf, rf = _rmsnorm(x)
        logits = xf @ E.T

        # Softmax cross-entropy over every position.
        logits -= logits.max(axis=-1, keepdims=True)
        exp = np.exp(logits)
        probs_lm = exp / exp.sum(axis=-1, keepdims=True)
        n = B * T
        idx_b, idx_t = np.meshgrid(np.arange(B), np.arange(T), indexing="ij")
        nll = -np.log(probs_lm[idx_b, idx_t, targets] + 1e-12)
        loss = float(np.mean(nll))

        dlogits = probs_lm.copy()
        dlogits[idx_b, idx_t, targets] -= 1.0
        dlogits /= n

        dE = dlogits.reshape(-1, E.shape[0]).T @ xf.reshape(-1, E.shape[1])
        dxf = dlogits @ E
        dx = _rmsnorm_backward(dxf, x, rf)

        for layer in reversed(range(spec.num_layers)):
            p = f"layers.{layer}."
            (x_in, xn, r1, qh, kh, vh, probs, ctx, x_attn, xn2, r2, g, u, h) = saved[
                layer
            ]
            Wo = self.params[p + "attn.wo"].data
            Wq = self.params[p + "attn.wq"].data
            Wk = self.params[p + "attn.wk"].data
            Wv = self.params[p + "attn.wv"].data
            Wg = self.params[p + "ffn.wg"].data
            Wu = self.params[p + "ffn.wu"].data
            Wd = self.params[p + "ffn.wd"].data

            # FFN block.
            dh = dx @ Wd
            self.params[p + "ffn.wd"].grad += (
                dx.reshape(-1, dx.shape[-1]).T @ h.reshape(-1, h.shape[-1])
            )
            dg = dh * u * _silu_grad(g)
            du = dh * _silu(g)
            dxn2 = dg @ Wg + du @ Wu
            self.params[p + "ffn.wg"].grad += (
                dg.reshape(-1, dg.shape[-1]).T @ xn2.reshape(-1, xn2.shape[-1])
            )
            self.params[p + "ffn.wu"].grad += (
                du.reshape(-1, du.shape[-1]).T @ xn2.reshape(-1, xn2.shape[-1])
            )
            dx_attn = dx + _rmsnorm_backward(dxn2, x_attn, r2)

            # Attention block.
            dctx = dx_attn @ Wo
            self.params[p + "attn.wo"].grad += (
                dx_attn.reshape(-1, dx_attn.shape[-1]).T
                @ ctx.reshape(-1, ctx.shape[-1])
            )
            dctx_h = np.ascontiguousarray(
                dctx.reshape(B, T, H, hd).transpose(0, 2, 1, 3)
            )
            dprobs = dctx_h @ vh.transpose(0, 1, 3, 2)
            dv_h = probs.transpose(0, 1, 3, 2) @ dctx_h
            dscores = probs * (
                dprobs - np.sum(dprobs * probs, axis=-1, keepdims=True)
            )
            dq_h = (dscores @ kh) / np.sqrt(hd)
            dk_h = _smear_heads_backward(
                (dscores.transpose(0, 1, 3, 2) @ qh) / np.sqrt(hd)
            )
            dq = _rope(dq_h.transpose(0, 2, 1, 3), cos, neg_sin)
            dk = _rope(dk_h.transpose(0, 2, 1, 3), cos, neg_sin)
            dv = dv_h.transpose(0, 2, 1, 3)
            dq = dq.reshape(B, T, H * hd)
            dk = dk.reshape(B, T, H * hd)
            dv = dv.reshape(B, T, H * hd)
            dxn = dq @ Wq + dk @ Wk + dv @ Wv
            flat_xn = xn.reshape(-1, xn.shape[-1])
            self.params[p + "attn.wq"].grad += (
                dq.reshape(-1, dq.shape[-1]).T @ flat_xn
            )
            self.params[p + "attn.wk"].grad += (
                dk.reshape(-1, dk.shape[-1]).T @ flat_xn
            )
            self.params[p + "attn.wv"].grad += (
                dv.reshape(-1, dv.shape[-1]).T @ flat_xn
            )
            dx = dx_attn + _rmsnorm_backward(dxn, x_in, r1)

        onehot = (
            inputs.ravel()[:, None] == np.arange(E.shape[0])[None, :]
        ).astype(np.float32)
        dE_embed = onehot.T @ dx.reshape(-1, E.shape[1])
        self.params["embed"].grad += dE + dE_embed
        return loss

    def zero_grads(self) -> None:
        for param in self.params.values():
            param.grad[...] = 0.0
