"""Model layer: trained numpy proxy LLMs, calibration and evaluation."""

from .calibration import ActStats, CalibrationData, calibrate
from .config import ModelSpec, ProxySpec, get_proxy_spec, get_spec
from .data import TASK_NAMES, MCItem, SyntheticCorpus
from .decode import BatchKV, ChunkKV, decode_step, prefill_chunk
from .eval import multiple_choice_accuracy, perplexity
from .model import Param, ProxyModel
from .quantize import (
    NAMED_SCHEMES,
    EccoStreamKVQuant,
    QuantizedModel,
    apply_named_scheme,
    fit_kv_codec,
    quantize_model,
)
from .train import TrainedModel, get_trained_model, train_proxy

__all__ = [
    "ActStats",
    "BatchKV",
    "CalibrationData",
    "ChunkKV",
    "EccoStreamKVQuant",
    "MCItem",
    "ModelSpec",
    "NAMED_SCHEMES",
    "Param",
    "ProxyModel",
    "ProxySpec",
    "QuantizedModel",
    "SyntheticCorpus",
    "TASK_NAMES",
    "TrainedModel",
    "apply_named_scheme",
    "calibrate",
    "decode_step",
    "fit_kv_codec",
    "get_proxy_spec",
    "get_spec",
    "get_trained_model",
    "multiple_choice_accuracy",
    "perplexity",
    "prefill_chunk",
    "quantize_model",
    "train_proxy",
]
