"""Synthetic corpus and task suite for the proxy language models.

The vocabulary is 64 tokens; the corpus is a stream of short "sentences",
most of which are instances of five structured tasks (the zero-shot suite
of Table 2).  Each task is a deterministic mapping the model must learn:

* ``agreement`` — a subject token's class (singular/plural) selects the
  verb class after a span of distractors;
* ``selection`` — answer with the largest (or smallest, per the probe
  marker) digit in the list;
* ``counting``  — answer with how many times the probe symbol occurred;
* ``copy``      — repeat a span verbatim after a separator;
* ``sorting``   — emit the span's digits in ascending order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TASK_NAMES", "MCItem", "SyntheticCorpus"]

TASK_NAMES = ["agreement", "selection", "counting", "copy", "sorting"]

# Token map (vocab = 64).
DIGITS = list(range(0, 10))  # value tokens 0..9
ITEMS = list(range(10, 20))  # list-item symbols
SUBJ_SG = list(range(20, 25))
SUBJ_PL = list(range(25, 30))
VERB_SG = list(range(30, 35))
VERB_PL = list(range(35, 40))
FILLER = list(range(40, 50))
TASK_MARKS = {"agreement": 50, "selection": 51, "counting": 52,
              "copy": 53, "sorting": 54}
MAX_MARK = 55
MIN_MARK = 56
QUERY = 60
SEP = 61
BOS = 62
EOS = 63

VOCAB_SIZE = 64


@dataclass
class MCItem:
    """One multiple-choice item scored by continuation likelihood."""

    prompt: np.ndarray
    choices: list  # list of token arrays
    answer: int
    task: str = ""


def _agreement(rng: np.random.Generator) -> tuple[list, list, list]:
    plural = bool(rng.integers(2))
    subj = (SUBJ_PL[0] if plural else SUBJ_SG[0]) + int(rng.integers(5))
    verb = (VERB_PL[0] if plural else VERB_SG[0]) + int(rng.integers(5))
    wrong = (VERB_SG[0] if plural else VERB_PL[0]) + int(rng.integers(5))
    span = (FILLER[0] + rng.integers(0, 10, size=int(rng.integers(2, 7)))).tolist()
    prompt = [TASK_MARKS["agreement"], subj, *span, QUERY]
    return prompt, [verb], [wrong]


def _selection(rng: np.random.Generator) -> tuple[list, list, list]:
    m = int(rng.integers(3, 6))
    digits = [int(t) for t in rng.permutation(10)[:m]]
    want_max = bool(rng.integers(2))
    mark = MAX_MARK if want_max else MIN_MARK
    answer = max(digits) if want_max else min(digits)
    others = [d for d in digits if d != answer]
    wrong = others[int(rng.integers(len(others)))]
    prompt = [TASK_MARKS["selection"], *digits, QUERY, mark]
    return prompt, [answer], [wrong]


def _counting(rng: np.random.Generator) -> tuple[list, list, list]:
    target = ITEMS[0] + int(rng.integers(4))
    count = int(rng.integers(1, 5))
    span = [target] * count + (
        ITEMS[4] + rng.integers(0, 4, size=int(rng.integers(1, 4)))
    ).tolist()
    rng.shuffle(span)
    wrong = count + 1 if count < 4 else count - 1
    prompt = [TASK_MARKS["counting"], *span, QUERY, target]
    return prompt, [DIGITS[count]], [DIGITS[wrong]]


def _copy(rng: np.random.Generator) -> tuple[list, list, list]:
    m = int(rng.integers(3, 6))
    span = (ITEMS[0] + rng.integers(0, 10, size=m)).tolist()
    corrupt = list(span)
    pos = int(rng.integers(0, m))
    corrupt[pos] = ITEMS[0] + int((span[pos] - ITEMS[0] + 1 + rng.integers(9)) % 10)
    prompt = [TASK_MARKS["copy"], *span, SEP]
    return prompt, span, corrupt


def _sorting(rng: np.random.Generator) -> tuple[list, list, list]:
    m = int(rng.integers(3, 6))
    digits = sorted(int(t) for t in rng.permutation(10)[:m])
    shuffled = list(digits)
    while shuffled == digits:
        rng.shuffle(shuffled)
    prompt = [TASK_MARKS["sorting"], *shuffled, SEP]
    wrong = list(digits)
    i, j = rng.permutation(m)[:2]
    wrong[i], wrong[j] = wrong[j], wrong[i]
    return prompt, digits, wrong


_GENERATORS = {
    "agreement": _agreement,
    "selection": _selection,
    "counting": _counting,
    "copy": _copy,
    "sorting": _sorting,
}


@dataclass
class SyntheticCorpus:
    """Deterministic corpus/task generator for one proxy model."""

    vocab_size: int = VOCAB_SIZE
    task_fraction: float = 0.85

    def _sentence(self, rng: np.random.Generator) -> list:
        if rng.random() < self.task_fraction:
            task = TASK_NAMES[int(rng.integers(len(TASK_NAMES)))]
            prompt, answer, _ = _GENERATORS[task](rng)
            return [BOS, *prompt, *answer, EOS]
        span = (FILLER[0] + rng.integers(0, 10, size=int(rng.integers(3, 9)))).tolist()
        return [BOS, *span, EOS]

    def token_stream(self, num_tokens: int, seed: int = 0) -> np.ndarray:
        """A flat held-out token stream for perplexity evaluation."""
        rng = np.random.default_rng(seed)
        out: list = []
        while len(out) < num_tokens:
            out.extend(self._sentence(rng))
        return np.array(out[:num_tokens], dtype=np.int64)

    def batches(
        self, num_tokens: int, batch: int, seq_len: int, seed: int = 0
    ) -> list:
        """Training/calibration batches of shape ``(batch, seq_len + 1)``.

        Each row holds ``seq_len`` inputs plus the shifted targets, the
        usual next-token layout.
        """
        stream = self.token_stream(num_tokens, seed=seed)
        window = seq_len + 1
        num_rows = stream.size // window
        rows = stream[: num_rows * window].reshape(num_rows, window)
        return [rows[i : i + batch] for i in range(0, num_rows, batch)
                if rows[i : i + batch].shape[0] == batch]

    def task_items(self, task: str, count: int, seed: int = 0) -> list:
        """Multiple-choice items for one task (the lm-eval protocol)."""
        if task not in _GENERATORS:
            raise KeyError(f"unknown task {task!r}; known: {TASK_NAMES}")
        rng = np.random.default_rng(seed)
        items = []
        for _ in range(count):
            prompt, answer, wrong = _GENERATORS[task](rng)
            order = int(rng.integers(2))
            choices = [answer, wrong] if order == 0 else [wrong, answer]
            items.append(
                MCItem(
                    prompt=np.array([BOS, *prompt], dtype=np.int64),
                    choices=[np.array(c, dtype=np.int64) for c in choices],
                    answer=order,
                    task=task,
                )
            )
        return items
