"""Fake-quantization schemes: Ecco and the baselines it is compared with.

Every scheme produces a :class:`QuantizedModel` whose ``hooks()`` feed the
evaluation functions: a ``weights`` override dict, and optional
``act_quant`` / ``kv_quant`` callables.  All schemes are faithful
simplified models of their namesakes — enough structure that their error
profiles order the way the paper's Table 1/2 rows do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import (
    ActivationCodec,
    KV_CONFIG,
    KVCacheCodec,
    WEIGHT_CONFIG,
    EccoConfig,
    fit_tensor_meta,
    simulate_roundtrip,
)
from repro.quant import awq_weight, uniform_quantize

from .calibration import CalibrationData
from .model import ProxyModel

__all__ = ["QuantizedModel", "quantize_model", "apply_named_scheme",
           "NAMED_SCHEMES", "EccoStreamKVQuant", "fit_kv_codec"]

_CALIB_GROUPS = 384


def fit_kv_codec(sample: np.ndarray) -> KVCacheCodec:
    """The one shared recipe for fitting a streaming KV codec from a
    calibration sample.  The evaluation hook (:class:`EccoStreamKVQuant`)
    and the serving backend (``repro.serve.storage.EccoKVBackend``) both
    build their codecs here, so their compressed bytes always agree."""
    meta = fit_tensor_meta(
        sample, config=KV_CONFIG, max_calibration_groups=_CALIB_GROUPS
    )
    return KVCacheCodec(meta)


@dataclass
class QuantizedModel:
    """A scheme's evaluation hooks."""

    name: str
    weights: dict | None = None
    act_quant: object = None
    kv_quant: object = None

    def hooks(self) -> dict:
        out: dict = {}
        if self.weights is not None:
            out["weights"] = self.weights
        if self.act_quant is not None:
            out["act_quant"] = self.act_quant
        if self.kv_quant is not None:
            out["kv_quant"] = self.kv_quant
        return out


# ----------------------------------------------------------------------
# Weight quantizers.
# ----------------------------------------------------------------------

def _act_mean_sq(calib: CalibrationData, name: str) -> np.ndarray | None:
    stats = calib.act_stats.get(name)
    return None if stats is None else stats.mean_sq


def _ecco_weight(weight: np.ndarray, mean_sq: np.ndarray | None,
                 config: EccoConfig = WEIGHT_CONFIG) -> np.ndarray:
    act_weights = None
    if mean_sq is not None:
        act_weights = np.broadcast_to(mean_sq[None, :], weight.shape)
    meta = fit_tensor_meta(
        weight, act_weights=act_weights, config=config,
        max_calibration_groups=_CALIB_GROUPS,
    )
    return simulate_roundtrip(meta, weight, act_weights=act_weights).values


def _olive_weight(weight: np.ndarray) -> np.ndarray:
    """OliVe-style outlier-victim pairing: outliers keep extended range by
    sacrificing ("victimizing") their neighbor's slot."""
    q = uniform_quantize(weight, 4, group_size=128)
    flat = weight.ravel().copy()
    qflat = q.ravel()
    thresh = np.quantile(np.abs(flat), 0.99)
    is_outlier = np.abs(flat) > thresh
    # Pair granularity: within an (even, odd) pair only the larger value
    # can be the outlier; its partner becomes the victim either way.
    partners = np.arange(flat.size) ^ 1
    partners = np.clip(partners, 0, flat.size - 1)
    loses_pair = is_outlier[partners] & (
        (np.abs(flat) < np.abs(flat[partners]))
        | ((np.abs(flat) == np.abs(flat[partners])) & (np.arange(flat.size) % 2 == 1))
    )
    outliers = np.flatnonzero(is_outlier & ~loses_pair)
    out = qflat.copy()
    # Outliers become exact-ish (8-bit) but the adjacent victim is zeroed.
    out[partners[outliers]] = 0.0
    out[outliers] = uniform_quantize(flat[outliers], 8)
    return out.reshape(weight.shape).astype(np.float32)


def _gptq_weight(weight: np.ndarray, mean_sq: np.ndarray | None) -> np.ndarray:
    """GPTQ-R: per-group INT4 with sequential error feedback, columns
    processed in descending activation importance."""
    w = weight.astype(np.float64).copy()
    out = np.zeros_like(w)
    cols = np.arange(w.shape[1])
    if mean_sq is not None:
        cols = np.argsort(-mean_sq)
    group = 128
    qmax = 7.0
    for start in range(0, cols.size, group):
        sel = cols[start : start + group]
        block = w[:, sel]
        scale = np.abs(block).max(axis=1, keepdims=True) / qmax
        scale = np.where(scale > 0, scale, 1.0)
        err = np.zeros(w.shape[0])
        for j, c in enumerate(sel):
            col = w[:, c] + err
            q = np.clip(np.round(col / scale[:, 0]), -8, 7) * scale[:, 0]
            out[:, c] = q
            # Half the residual rides onto the next column (the OBQ update
            # collapsed to its leading term).
            err = 0.5 * (col - q)
        del err
    return out.astype(np.float32)


def _quarot_rotation(dim: int, seed: int = 1234) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((dim, dim))
    qmat, _ = np.linalg.qr(a)
    return qmat.astype(np.float32)


def _quarot_weight(weight: np.ndarray, rot: np.ndarray) -> np.ndarray:
    """Quantize in the rotated basis (outliers spread out), rotate back."""
    rotated = weight @ rot
    q = uniform_quantize(rotated, 4, group_size=128)
    return (q @ rot.T).astype(np.float32)


def _qoq_weight(weight: np.ndarray, mean_sq: np.ndarray | None) -> np.ndarray:
    """QoQ progressive quantization: per-channel INT8 then group INT4."""
    w8 = uniform_quantize(weight, 8, axis=1)
    if mean_sq is not None:
        return awq_weight(w8, mean_sq)
    return uniform_quantize(w8, 4, group_size=128)


# ----------------------------------------------------------------------
# Activation / KV quantizers.
# ----------------------------------------------------------------------

def _per_row_quant(bits: int):
    def fn(x: np.ndarray) -> np.ndarray:
        return uniform_quantize(x, bits, axis=-1)
    return fn


def _ecco_act_quant():
    codec = ActivationCodec()
    def fn(x: np.ndarray) -> np.ndarray:
        return codec.roundtrip(x)
    return fn


def _rtn_kv_quant(bits: int = 4):
    def fn(name: str, kv: np.ndarray) -> np.ndarray:
        return uniform_quantize(kv, bits, axis=-1)
    return fn


def _quarot_kv_quant(rot_cache: dict, bits: int = 4):
    def fn(name: str, kv: np.ndarray) -> np.ndarray:
        dim = kv.shape[-1]
        if dim not in rot_cache:
            rot_cache[dim] = _quarot_rotation(dim, seed=99)
        rot = rot_cache[dim]
        return (uniform_quantize(kv @ rot, bits, axis=-1) @ rot.T).astype(
            np.float32
        )
    return fn


class EccoStreamKVQuant:
    """Bit-exact streaming Ecco KV hook: the decode-loop pipeline in eval.

    Unlike :func:`_ecco_kv_quant` (which simulates the roundtrip with the
    vectorized fast path), this hook pushes every layer's K/V tensor
    through the real block codec — one batched ``encode_tokens`` planning
    pass and one vectorized ``decode_tokens`` per call — and keeps the
    per-tensor codec (with its cached decode tables) across calls.  The
    ``stats`` dict it maintains feeds ``kv_stats`` in the eval functions.
    """

    def __init__(self, calib: CalibrationData):
        self._calib = calib
        self._codecs: dict[str, KVCacheCodec] = {}
        self.stats = {"tokens": 0, "original_nbytes": 0, "compressed_nbytes": 0}

    def _codec(self, name: str, kv: np.ndarray) -> KVCacheCodec:
        codec = self._codecs.get(name)
        if codec is None:
            sample = self._calib.kv_samples.get(name, kv)
            codec = fit_kv_codec(sample)
            self._codecs[name] = codec
        return codec

    def __call__(self, name: str, kv: np.ndarray) -> np.ndarray:
        codec = self._codec(name, kv)
        compressed = codec.encode_tokens(kv)
        out = codec.decode_tokens(compressed)
        self.stats["tokens"] += int(kv.shape[0])
        self.stats["original_nbytes"] += int(kv.size) * 2
        self.stats["compressed_nbytes"] += int(compressed.nbytes)
        return out.astype(np.float32)


def _ecco_kv_quant(calib: CalibrationData):
    """Online Ecco KV compression: per-tensor metadata from calibration,
    min/max pattern selection at runtime (the hardware path)."""
    meta_cache: dict = {}

    def fn(name: str, kv: np.ndarray) -> np.ndarray:
        meta = meta_cache.get(name)
        if meta is None:
            sample = calib.kv_samples.get(name, kv)
            meta = fit_tensor_meta(
                sample, config=KV_CONFIG, max_calibration_groups=_CALIB_GROUPS
            )
            meta_cache[name] = meta
        return simulate_roundtrip(meta, kv).values

    return fn


# ----------------------------------------------------------------------
# Scheme registry.
# ----------------------------------------------------------------------

def _weights_for(model: ProxyModel, calib: CalibrationData, method: str) -> dict:
    out = {}
    rot_cache: dict = {}
    for name in model.weight_names:
        weight = model.params[name].data
        mean_sq = _act_mean_sq(calib, name)
        if method == "rtn":
            out[name] = uniform_quantize(weight, 4, axis=1)
        elif method == "gptq":
            out[name] = _gptq_weight(weight, mean_sq)
        elif method == "olive":
            out[name] = _olive_weight(weight)
        elif method == "awq":
            out[name] = awq_weight(weight, mean_sq)
        elif method == "quarot":
            dim = weight.shape[1]
            if dim not in rot_cache:
                rot_cache[dim] = _quarot_rotation(dim)
            out[name] = _quarot_weight(weight, rot_cache[dim])
        elif method == "qoq":
            out[name] = _qoq_weight(weight, mean_sq)
        elif method == "ecco":
            out[name] = _ecco_weight(weight, mean_sq)
        elif method == "atom":
            out[name] = uniform_quantize(weight, 4, group_size=128)
        else:
            raise KeyError(f"unknown weight method {method!r}")
    return out


def _build_hooks(act_bits, kv_method, calib: CalibrationData) -> tuple:
    """Shared act/kv hook dispatch for both quantization entry points."""
    if act_bits == "ecco":
        act_quant = _ecco_act_quant()
    elif act_bits is not None:
        act_quant = _per_row_quant(int(act_bits))
    else:
        act_quant = None
    if kv_method == "rtn":
        kv_quant = _rtn_kv_quant(4)
    elif kv_method == "quarot":
        kv_quant = _quarot_kv_quant({})
    elif kv_method == "ecco":
        kv_quant = _ecco_kv_quant(calib)
    elif kv_method == "ecco-stream":
        kv_quant = EccoStreamKVQuant(calib)
    elif kv_method is None:
        kv_quant = None
    else:
        raise KeyError(f"unknown kv method {kv_method!r}")
    return act_quant, kv_quant


def quantize_model(
    model: ProxyModel,
    calib: CalibrationData,
    weight_method: str = "awq",
    act_bits: int | None = None,
    kv_method: str | None = None,
) -> QuantizedModel:
    """Build a QuantizedModel from components (the generic entry point)."""
    weights = _weights_for(model, calib, weight_method)
    act_quant, kv_quant = _build_hooks(act_bits, kv_method, calib)
    name = f"{weight_method}-w4" + (f"a{act_bits}" if act_bits else "")
    return QuantizedModel(
        name=name, weights=weights, act_quant=act_quant, kv_quant=kv_quant
    )


#: scheme name -> (weight method, act bits, kv method, ecco act codec?)
NAMED_SCHEMES = {
    "fp16": None,
    "gptq-r-w4": ("gptq", None, None),
    "olive-w4": ("olive", None, None),
    "awq-w4": ("awq", None, None),
    "ecco-w4": ("ecco", None, None),
    "rtn-w4a8kv4": ("rtn", 8, "rtn"),
    "awq-w4a8kv4": ("awq", 8, "rtn"),
    "quarot-w4a8kv4": ("quarot", 8, "quarot"),
    "qoq-w4a8kv4": ("qoq", 8, "rtn"),
    "ecco-w4a8kv4": ("ecco", "ecco", "ecco"),
    # Same accuracy point as ecco-w4a8kv4, but the KV path runs the real
    # block codec (batched encode + cached-table decode), not the fast-path
    # simulation — use it to validate the streaming pipeline end to end.
    "ecco-stream-w4a8kv4": ("ecco", "ecco", "ecco-stream"),
    "atom-w4a4": ("atom", 4, "rtn"),
}


def apply_named_scheme(
    model: ProxyModel, scheme: str, calib: CalibrationData
) -> QuantizedModel:
    """Instantiate one of the paper's named quantization configurations."""
    if scheme not in NAMED_SCHEMES:
        raise KeyError(
            f"unknown scheme {scheme!r}; known: {sorted(NAMED_SCHEMES)}"
        )
    recipe = NAMED_SCHEMES[scheme]
    if recipe is None:
        return QuantizedModel(name="fp16")
    weight_method, act_bits, kv_method = recipe
    weights = _weights_for(model, calib, weight_method)
    act_quant, kv_quant = _build_hooks(act_bits, kv_method, calib)
    return QuantizedModel(
        name=scheme, weights=weights, act_quant=act_quant, kv_quant=kv_quant
    )
