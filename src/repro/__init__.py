"""Reproduction of *Ecco: Improving Memory Bandwidth and Capacity for LLMs
via Entropy-Aware Cache Compression* (ISCA 2025).

The package is layered; higher layers only depend on lower ones:

* ``repro.core``     — the entropy-aware codec (patterns, codebooks, blocks)
* ``repro.entropy``, ``repro.quant``, ``repro.baselines`` — analysis helpers
* ``repro.llm``      — trained numpy proxy LLMs, calibration and evaluation
* ``repro.memsys``, ``repro.hardware``, ``repro.perf`` — memory-system,
  microarchitecture and end-to-end performance models
"""

__version__ = "0.1.0"
