"""Lossless-compression baselines (the paper's §2.4 argument).

Base-Delta-Immediate (BDI) is the classic hardware cache-line compressor.
On FP16 LLM tensors its ratio is far below Ecco's fixed 4x — the sign,
exponent and mantissa bits of nearby values share too little structure —
which is why the paper argues lossless compression cannot relieve the LLM
memory wall.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bdi_compressed_size", "bdi_compression_ratio"]

_LINE_BYTES = 64

# (base bytes, delta bytes) candidates from the BDI paper, best-first tried
# in order of compressed size.
_BDI_MODES = [(8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1)]


def _fits(values: np.ndarray, base: np.int64, delta_bytes: int) -> bool:
    delta = values.astype(np.int64) - base
    bound = np.int64(1) << (8 * delta_bytes - 1)
    return bool(np.all(delta >= -bound) and np.all(delta < bound))


def _line_compressed_size(line: np.ndarray) -> int:
    """Compressed byte size of one 64-byte line under the best BDI mode."""
    if not np.any(line):
        return 1  # all-zero line
    best = _LINE_BYTES
    for base_bytes, delta_bytes in _BDI_MODES:
        count = _LINE_BYTES // base_bytes
        words = line.view(f"<i{base_bytes}")
        base = np.int64(words[0])
        if _fits(words, base, delta_bytes):
            size = base_bytes + count * delta_bytes + 1  # +1 mode tag
            best = min(best, size)
    if np.unique(line.view("<i2")).size == 1:
        best = min(best, 3)  # repeated fp16 value
    return best


def bdi_compressed_size(tensor: np.ndarray) -> int:
    """Total BDI-compressed bytes of ``tensor`` stored as FP16 lines."""
    raw = np.asarray(tensor, dtype=np.float16).tobytes()
    pad = (-len(raw)) % _LINE_BYTES
    raw += b"\x00" * pad
    lines = np.frombuffer(raw, dtype=np.uint8).reshape(-1, _LINE_BYTES)
    return int(sum(_line_compressed_size(line) for line in lines))


def bdi_compression_ratio(tensor: np.ndarray) -> float:
    """FP16 bytes over BDI-compressed bytes (>= 1.0)."""
    original = np.asarray(tensor).size * 2
    return original / bdi_compressed_size(tensor)
