"""Entropy analysis of quantized tensors (the Figure 2 measurements).

The paper's motivation: uniform quantization at coarse granularity wastes
most of its bit budget — the quantized indices carry far less entropy than
the container bits.  These helpers quantify that gap for tensor-wise,
channel-wise and group-wise uniform quantization, and for Ecco's own
entropy-coded indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizationProfile",
    "group_entropy",
    "unique_counts",
    "profile_uniform_quantization",
]

#: Values per group for the group-wise granularity (matches the codec).
GROUP_SIZE = 128

#: 4-bit container: 16 uniform levels.
NUM_LEVELS = 16


@dataclass
class QuantizationProfile:
    """Entropy bookkeeping for one quantization granularity."""

    name: str
    average_entropy: float  # mean per-group Shannon entropy of the indices
    real_bit_overhead: float  # bits actually spent per value (incl. scales)
    unique_value_counts: np.ndarray  # per-group distinct index counts

    @property
    def efficiency(self) -> float:
        """Fraction of the spent bits that carry information."""
        if self.real_bit_overhead <= 0:
            return 0.0
        return self.average_entropy / self.real_bit_overhead


def group_entropy(indices: np.ndarray, group_size: int = GROUP_SIZE) -> np.ndarray:
    """Per-group Shannon entropy (bits/value) of an index matrix.

    ``indices`` is reshaped to groups of ``group_size`` when 1-D; a 2-D
    input is treated as one group per row.
    """
    indices = np.asarray(indices)
    if indices.ndim == 1:
        indices = indices[: indices.size - indices.size % group_size]
        indices = indices.reshape(-1, group_size)
    num_groups = indices.shape[0]
    out = np.zeros(num_groups, dtype=np.float64)
    for g in range(num_groups):
        counts = np.bincount(indices[g].ravel().astype(np.int64))
        probs = counts[counts > 0] / indices[g].size
        out[g] = float(-np.sum(probs * np.log2(probs)))
    return out


def unique_counts(indices: np.ndarray, group_size: int = GROUP_SIZE) -> np.ndarray:
    """Distinct index values per group (the Figure 2 scatter quantity)."""
    indices = np.asarray(indices)
    if indices.ndim == 1:
        indices = indices[: indices.size - indices.size % group_size]
        indices = indices.reshape(-1, group_size)
    return np.array([np.unique(row).size for row in indices], dtype=np.float64)


def _uniform_indices(values: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Symmetric 4-bit uniform quantization indices in [0, 15]."""
    safe = np.where(scales > 0, scales, 1.0)
    q = np.clip(np.round(values / safe * (NUM_LEVELS // 2)), -8, 7)
    return (q + 8).astype(np.int64)


def profile_uniform_quantization(
    tensor: np.ndarray, granularity: str
) -> QuantizationProfile:
    """Profile 4-bit uniform quantization at a given scale granularity.

    ``granularity`` is ``"tensor"`` (one fp16 scale), ``"channel"`` (one
    per row) or ``"group"`` (one per 128 values).  The real bit overhead is
    the 4 container bits plus the amortized fp16 scales.
    """
    tensor = np.asarray(tensor, dtype=np.float32)
    if granularity == "tensor":
        scales = np.full_like(tensor, np.abs(tensor).max())
        scale_bits = 16.0 / tensor.size
    elif granularity == "channel":
        per_row = np.abs(tensor).max(axis=1, keepdims=True)
        scales = np.broadcast_to(per_row, tensor.shape)
        scale_bits = 16.0 * tensor.shape[0] / tensor.size
    elif granularity == "group":
        flat = tensor.ravel()
        usable = flat[: flat.size - flat.size % GROUP_SIZE]
        groups = usable.reshape(-1, GROUP_SIZE)
        per_group = np.abs(groups).max(axis=1, keepdims=True)
        scales = np.broadcast_to(per_group, groups.shape)
        indices = _uniform_indices(groups, scales)
        return QuantizationProfile(
            name="group",
            average_entropy=float(group_entropy(indices).mean()),
            real_bit_overhead=4.0 + 16.0 / GROUP_SIZE,
            unique_value_counts=unique_counts(indices),
        )
    else:
        raise ValueError(f"unknown granularity: {granularity!r}")

    indices = _uniform_indices(tensor, scales)
    flat = indices.ravel()
    return QuantizationProfile(
        name=granularity,
        average_entropy=float(group_entropy(flat).mean()),
        real_bit_overhead=4.0 + scale_bits,
        unique_value_counts=unique_counts(flat),
    )
