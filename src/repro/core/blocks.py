"""Bit-exact packing of one group into one fixed 64-byte block.

Block layout (512 bits, MSB-first within each byte):

====================  ====
field                 bits
====================  ====
group scale (fp16)      16
scale position           8
pattern id               8
codebook id              4
outlier count            6
Huffman payload          —   (one code per non-scale value, in order)
outlier slots         16×n   (8-bit position + 8-bit signed correction)
zero padding             —   (to 512)
====================  ====
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader", "pack_block", "unpack_block"]


class BitWriter:
    """MSB-first bit stream writer with a fixed byte budget."""

    def __init__(self, num_bytes: int):
        self.buffer = bytearray(num_bytes)
        self.pos = 0
        self.limit = num_bytes * 8

    def write(self, value: int, bits: int) -> None:
        if self.pos + bits > self.limit:
            raise OverflowError("block budget exceeded")
        value &= (1 << bits) - 1
        for shift in range(bits - 1, -1, -1):
            if (value >> shift) & 1:
                self.buffer[self.pos >> 3] |= 0x80 >> (self.pos & 7)
            self.pos += 1

    def bytes(self) -> bytes:
        return bytes(self.buffer)


class BitReader:
    """MSB-first bit stream reader."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read(self, bits: int) -> int:
        value = 0
        for _ in range(bits):
            byte = self.data[self.pos >> 3]
            value = (value << 1) | ((byte >> (7 - (self.pos & 7))) & 1)
            self.pos += 1
        return value

    def read_signed(self, bits: int) -> int:
        raw = self.read(bits)
        if raw >= 1 << (bits - 1):
            raw -= 1 << bits
        return raw


def pack_block(
    config,
    scale: np.float32,
    scale_pos: int,
    pattern_id: int,
    codebook_id: int,
    symbols: np.ndarray,
    code_lengths: np.ndarray,
    code_values: np.ndarray,
    outlier_pos: np.ndarray,
    outlier_q: np.ndarray,
) -> bytes:
    """Serialize one group into its 64-byte block."""
    writer = BitWriter(config.block_bytes)
    writer.write(int(np.float16(scale).view(np.uint16)), 16)
    writer.write(int(scale_pos), config.scale_pos_bits)
    writer.write(int(pattern_id), config.pattern_id_bits)
    writer.write(int(codebook_id), config.codebook_id_bits)
    writer.write(len(outlier_pos), config.outlier_count_bits)
    for pos in range(config.group_size):
        if pos == scale_pos:
            continue
        sym = int(symbols[pos])
        writer.write(int(code_values[sym]), int(code_lengths[sym]))
    for pos, q in zip(outlier_pos, outlier_q):
        writer.write(int(pos), config.scale_pos_bits)
        writer.write(int(q), 8)
    return writer.bytes()


def decode_tables(code_lengths: np.ndarray) -> list:
    """(length, code) -> symbol lookup per codebook, built once per meta."""
    from .huffman import canonical_codes

    tables = []
    for lengths in code_lengths:
        codes = canonical_codes(lengths)
        tables.append(
            {
                (int(lengths[s]), int(codes[s])): s
                for s in range(lengths.size)
                if lengths[s] > 0
            }
        )
    return tables


def unpack_block(config, data: bytes, code_lengths: np.ndarray, tables=None):
    """Deserialize one block back into its integer fields.

    ``code_lengths`` has shape (H, num_symbols); Huffman decoding walks the
    canonical code of the block's codebook bit by bit (the software twin of
    the hardware's speculative window decode).  Pass ``tables`` (from
    :func:`decode_tables`) to reuse the codebook lookups across blocks.
    """
    reader = BitReader(data)
    scale = np.uint16(reader.read(16)).view(np.float16).astype(np.float32)
    scale_pos = reader.read(config.scale_pos_bits)
    pattern_id = reader.read(config.pattern_id_bits)
    codebook_id = reader.read(config.codebook_id_bits)
    num_outliers = reader.read(config.outlier_count_bits)

    if tables is None:
        tables = decode_tables(code_lengths)
    table = tables[codebook_id]
    symbols = np.zeros(config.group_size, dtype=np.int64)
    for pos in range(config.group_size):
        if pos == scale_pos:
            symbols[pos] = config.pattern_values  # the scale slot
            continue
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read(1)
            length += 1
            sym = table.get((length, code))
            if sym is not None:
                symbols[pos] = sym
                break
            if length > config.max_code_len:
                raise ValueError("corrupt block: no canonical code matched")

    outlier_pos = np.zeros(num_outliers, dtype=np.int64)
    outlier_q = np.zeros(num_outliers, dtype=np.int64)
    for i in range(num_outliers):
        outlier_pos[i] = reader.read(config.scale_pos_bits)
        outlier_q[i] = reader.read_signed(8)
    return scale, scale_pos, pattern_id, codebook_id, symbols, outlier_pos, outlier_q
