"""Bit-exact packing of one group into one fixed 64-byte block.

Block layout (512 bits, MSB-first within each byte):

====================  ====
field                 bits
====================  ====
group scale (fp16)      16
scale position           8
pattern id               8
codebook id              4
outlier count            6
Huffman payload          —   (one code per non-scale value, in order)
outlier slots         16×n   (8-bit position + 8-bit signed correction)
zero padding             —   (to 512)
====================  ====

Two implementations share this layout:

* :func:`pack_block` / :func:`unpack_block` — the scalar reference, one
  Python-level bit at a time.  Kept as the executable specification the
  vectorized path is tested against.
* :func:`pack_blocks` / :func:`unpack_blocks` — the production path: all
  groups at once through ``np.packbits`` / ``np.unpackbits`` bit planes
  and 256-entry speculative-window Huffman tables (the software twin of
  the hardware's 8-bit window decode).  Byte-for-byte identical output.
"""

from __future__ import annotations

import numpy as np

from .patterns import SCALE_SYMBOL

__all__ = [
    "BitWriter",
    "BitReader",
    "pack_block",
    "unpack_block",
    "pack_blocks",
    "unpack_blocks",
    "decode_tables",
    "window_tables",
]


class BitWriter:
    """MSB-first bit stream writer with a fixed byte budget."""

    def __init__(self, num_bytes: int):
        self.buffer = bytearray(num_bytes)
        self.pos = 0
        self.limit = num_bytes * 8

    def write(self, value: int, bits: int) -> None:
        if self.pos + bits > self.limit:
            raise OverflowError("block budget exceeded")
        value &= (1 << bits) - 1
        for shift in range(bits - 1, -1, -1):
            if (value >> shift) & 1:
                self.buffer[self.pos >> 3] |= 0x80 >> (self.pos & 7)
            self.pos += 1

    def bytes(self) -> bytes:
        return bytes(self.buffer)


class BitReader:
    """MSB-first bit stream reader."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read(self, bits: int) -> int:
        value = 0
        for _ in range(bits):
            byte = self.data[self.pos >> 3]
            value = (value << 1) | ((byte >> (7 - (self.pos & 7))) & 1)
            self.pos += 1
        return value

    def read_signed(self, bits: int) -> int:
        raw = self.read(bits)
        if raw >= 1 << (bits - 1):
            raw -= 1 << bits
        return raw


def pack_block(
    config,
    scale: np.float32,
    scale_pos: int,
    pattern_id: int,
    codebook_id: int,
    symbols: np.ndarray,
    code_lengths: np.ndarray,
    code_values: np.ndarray,
    outlier_pos: np.ndarray,
    outlier_q: np.ndarray,
) -> bytes:
    """Serialize one group into its 64-byte block (scalar reference)."""
    writer = BitWriter(config.block_bytes)
    writer.write(int(np.float16(scale).view(np.uint16)), 16)
    writer.write(int(scale_pos), config.scale_pos_bits)
    writer.write(int(pattern_id), config.pattern_id_bits)
    writer.write(int(codebook_id), config.codebook_id_bits)
    writer.write(len(outlier_pos), config.outlier_count_bits)
    for pos in range(config.group_size):
        if pos == scale_pos:
            continue
        sym = int(symbols[pos])
        writer.write(int(code_values[sym]), int(code_lengths[sym]))
    for pos, q in zip(outlier_pos, outlier_q):
        writer.write(int(pos), config.scale_pos_bits)
        writer.write(int(q), 8)
    return writer.bytes()


def decode_tables(code_lengths: np.ndarray) -> list:
    """(length, code) -> symbol lookup per codebook, built once per meta."""
    from .huffman import canonical_codes

    tables = []
    for lengths in code_lengths:
        codes = canonical_codes(lengths)
        tables.append(
            {
                (int(lengths[s]), int(codes[s])): s
                for s in range(lengths.size)
                if lengths[s] > 0
            }
        )
    return tables


def window_tables(code_lengths: np.ndarray, window_bits: int) -> tuple:
    """Speculative-window Huffman decode tables, one row per codebook.

    For every ``window_bits``-wide bit window the tables give the symbol
    whose canonical code prefixes the window and that code's length (0
    marks an invalid window).  Because canonical codes are prefix-free the
    window ranges never collide — this is exactly the hardware's 8-bit
    window decoder as two (H, 2**window_bits) arrays.  The returned tuple
    also carries the same tables as nested Python lists, which the
    small-stack scalar decode indexes without per-call conversion.
    """
    from .huffman import canonical_codes

    H, num_symbols = code_lengths.shape
    sym_table = np.zeros((H, 1 << window_bits), dtype=np.int64)
    len_table = np.zeros((H, 1 << window_bits), dtype=np.int64)
    for h in range(H):
        lengths = code_lengths[h]
        codes = canonical_codes(lengths)
        for s in range(num_symbols):
            length = int(lengths[s])
            if length == 0 or length > window_bits:
                continue
            lo = int(codes[s]) << (window_bits - length)
            hi = (int(codes[s]) + 1) << (window_bits - length)
            sym_table[h, lo:hi] = s
            len_table[h, lo:hi] = length
    return sym_table, len_table, sym_table.tolist(), len_table.tolist()


def _scatter_bits(
    bits: np.ndarray,
    values: np.ndarray,
    widths: np.ndarray,
    starts: np.ndarray,
    rows: np.ndarray,
    max_width: int,
) -> None:
    """Write ``values`` (``widths`` bits wide, MSB-first) at bit offsets
    ``starts`` of per-group rows of the (G, block_bits) bit plane."""
    jj = np.arange(max_width)
    valid = jj < widths[..., None]
    shift = np.maximum(widths[..., None] - 1 - jj, 0)
    bitvals = (values[..., None] >> shift) & 1
    target = rows[..., None] * bits.shape[1] + starts[..., None] + jj
    bits.ravel()[target[valid]] = bitvals[valid].astype(np.uint8)


def pack_blocks(
    config,
    scales: np.ndarray,
    scale_pos: np.ndarray,
    pattern_ids: np.ndarray,
    codebook_ids: np.ndarray,
    symbols: np.ndarray,
    corrections: np.ndarray,
    code_lengths: np.ndarray,
    code_values: np.ndarray,
) -> np.ndarray:
    """Serialize every group at once; rows match :func:`pack_block` exactly.

    ``corrections`` is the dense (G, group_size) outlier matrix (0 = no
    slot); slots are emitted in ascending position order, the same order
    the planner found them.
    """
    G, group_size = symbols.shape
    block_bits = config.block_bits
    header_bits = config.header_bits
    if header_bits > 64:
        raise ValueError("header wider than 64 bits; scalar path required")
    bits = np.zeros((G, block_bits), dtype=np.uint8)
    rows = np.arange(G, dtype=np.int64)

    out_counts = (corrections != 0).sum(axis=1).astype(np.uint64)

    # Header: one uint64 per group, field-packed then spread MSB-first.
    header = np.float16(scales).view(np.uint16).astype(np.uint64)
    header = (header << np.uint64(config.scale_pos_bits)) | scale_pos.astype(
        np.uint64
    )
    header = (header << np.uint64(config.pattern_id_bits)) | pattern_ids.astype(
        np.uint64
    )
    header = (header << np.uint64(config.codebook_id_bits)) | codebook_ids.astype(
        np.uint64
    )
    header = (header << np.uint64(config.outlier_count_bits)) | out_counts
    hj = np.arange(header_bits)
    bits[:, :header_bits] = (
        (header[:, None] >> (header_bits - 1 - hj).astype(np.uint64)) & np.uint64(1)
    ).astype(np.uint8)

    # Huffman payload: per-value code bits at cumulative offsets.
    coded = symbols != SCALE_SYMBOL
    safe = np.where(coded, symbols, 0)
    cl = code_lengths[codebook_ids].astype(np.int64)  # (G, num_symbols)
    cv = code_values[codebook_ids].astype(np.int64)
    val_len = np.take_along_axis(cl, safe, axis=1) * coded
    val_code = np.take_along_axis(cv, safe, axis=1) * coded
    starts = header_bits + np.cumsum(val_len, axis=1) - val_len
    payload_end = header_bits + val_len.sum(axis=1)

    block_end = payload_end + out_counts.astype(np.int64) * config.outlier_bits
    if np.any(block_end > block_bits):
        raise OverflowError("block budget exceeded")

    _scatter_bits(
        bits,
        val_code,
        val_len,
        starts,
        np.broadcast_to(rows[:, None], (G, group_size)),
        int(config.max_code_len),
    )

    # Outlier slots: stable partition brings outlier positions (ascending)
    # to the front of each row.
    max_count = int(out_counts.max()) if G else 0
    if max_count:
        order = np.argsort(corrections == 0, axis=1, kind="stable")
        slot_pos = order[:, :max_count].astype(np.int64)
        slot_q = np.take_along_axis(corrections, order, axis=1)[:, :max_count]
        slot_valid = np.arange(max_count) < out_counts[:, None].astype(np.int64)
        w = config.outlier_bits
        slot_val = (slot_pos << 8) | (slot_q.astype(np.int64) & 0xFF)
        slot_start = payload_end[:, None] + np.arange(max_count) * w
        widths = np.where(slot_valid, w, 0)
        _scatter_bits(
            bits,
            slot_val,
            widths,
            slot_start,
            np.broadcast_to(rows[:, None], (G, max_count)),
            w,
        )

    return np.packbits(bits, axis=1)


def _gather_bits(
    bits: np.ndarray, starts: np.ndarray, width: int, rows: np.ndarray
) -> np.ndarray:
    """Read ``width``-bit MSB-first integers at per-row bit offsets."""
    window = bits[rows[:, None], starts[:, None] + np.arange(width)]
    weights = 1 << np.arange(width - 1, -1, -1)
    return (window.astype(np.int64) * weights).sum(axis=1)


#: Below this many blocks the per-group big-integer decode beats the fixed
#: overhead of the vectorized lockstep loop (the decode-loop steady state
#: of one new token per read sits far under it).
_SMALL_DECODE_BLOCKS = 32


def _unpack_blocks_small(config, blocks, sym_lists, len_lists):
    """Scalar twin of the vectorized unpack for small block counts.

    Each block becomes one Python big integer; window extraction is then
    two shift/mask operations per value, which for a handful of blocks is
    far cheaper than launching the vectorized machinery.  ``sym_lists`` /
    ``len_lists`` are the list forms from :func:`window_tables`.
    """
    G = blocks.shape[0]
    total_bits = blocks.shape[1] * 8
    window_bits = int(config.max_code_len)
    window_mask = (1 << window_bits) - 1
    group_size = config.group_size

    scale_u16 = np.empty(G, dtype=np.uint16)
    scale_pos = np.empty(G, dtype=np.int64)
    pattern_ids = np.empty(G, dtype=np.int64)
    codebook_ids = np.empty(G, dtype=np.int64)
    symbols = np.empty((G, group_size), dtype=np.int64)
    corrections = np.zeros((G, group_size), dtype=np.int64)

    for g in range(G):
        big = int.from_bytes(blocks[g].tobytes(), "big")
        off = 0

        def read(n):
            nonlocal off
            value = (big >> (total_bits - off - n)) & ((1 << n) - 1)
            off += n
            return value

        scale_u16[g] = read(16)
        spos = read(config.scale_pos_bits)
        scale_pos[g] = spos
        pattern_ids[g] = read(config.pattern_id_bits)
        cid = read(config.codebook_id_bits)
        codebook_ids[g] = cid
        count = read(config.outlier_count_bits)
        stab = sym_lists[cid]
        ltab = len_lists[cid]
        row = symbols[g]
        for pos in range(group_size):
            if pos == spos:
                row[pos] = SCALE_SYMBOL
                continue
            avail = total_bits - off
            if avail >= window_bits:
                window = (big >> (avail - window_bits)) & window_mask
            else:
                window = (big << (window_bits - avail)) & window_mask
            length = ltab[window]
            if length == 0:
                raise ValueError("corrupt block: no canonical code matched")
            row[pos] = stab[window]
            off += length
        for _ in range(count):
            pos = read(config.scale_pos_bits)
            q = read(8)
            corrections[g, pos] = q - 256 if q >= 128 else q

    scales = scale_u16.view(np.float16).astype(np.float32)
    return scales, scale_pos, pattern_ids, codebook_ids, symbols, corrections


def unpack_blocks(
    config,
    blocks: np.ndarray,
    code_lengths: np.ndarray,
    tables: tuple | None = None,
):
    """Deserialize a (G, block_bytes) stack of blocks at once.

    Returns ``(scales, scale_pos, pattern_ids, codebook_ids, symbols,
    corrections)`` with ``corrections`` as the dense (G, group_size)
    outlier matrix.  The Huffman stage advances all groups in lockstep —
    one vectorized window lookup per value position — so the Python-level
    work is O(group_size), not O(total bits).  Small stacks short-circuit
    to a per-group big-integer decode with the same tables.
    """
    window_bits = int(config.max_code_len)
    if tables is None:
        tables = window_tables(code_lengths, window_bits)
    sym_table, len_table = tables[0], tables[1]

    if blocks.shape[0] <= _SMALL_DECODE_BLOCKS:
        if len(tables) >= 4:
            sym_lists, len_lists = tables[2], tables[3]
        else:  # a bare (sym, len) array pair is still accepted
            sym_lists, len_lists = sym_table.tolist(), len_table.tolist()
        return _unpack_blocks_small(
            config, np.ascontiguousarray(blocks, dtype=np.uint8),
            sym_lists, len_lists,
        )

    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    G = blocks.shape[0]
    bits = np.unpackbits(blocks, axis=1)
    # Slack so speculative windows past the last code never index OOB.
    pad = max(window_bits, config.outlier_bits)
    bits = np.concatenate([bits, np.zeros((G, pad), dtype=np.uint8)], axis=1)
    rows = np.arange(G, dtype=np.int64)

    header_bits = config.header_bits
    hj = np.arange(header_bits)
    header = (
        bits[:, :header_bits].astype(np.uint64)
        << (header_bits - 1 - hj).astype(np.uint64)
    ).sum(axis=1)
    out_counts = (header & np.uint64(config.max_outliers)).astype(np.int64)
    header >>= np.uint64(config.outlier_count_bits)
    codebook_ids = (
        header & np.uint64((1 << config.codebook_id_bits) - 1)
    ).astype(np.int64)
    header >>= np.uint64(config.codebook_id_bits)
    pattern_ids = (
        header & np.uint64((1 << config.pattern_id_bits) - 1)
    ).astype(np.int64)
    header >>= np.uint64(config.pattern_id_bits)
    scale_pos = (
        header & np.uint64((1 << config.scale_pos_bits) - 1)
    ).astype(np.int64)
    header >>= np.uint64(config.scale_pos_bits)
    scales = (
        (header & np.uint64(0xFFFF))
        .astype(np.uint16)
        .view(np.float16)
        .astype(np.float32)
    )

    # Huffman payload: every group consumes one code per position, all
    # groups in lockstep.  All speculative windows are precomputed in one
    # vectorized sweep (every bit offset's next ``window_bits`` bits as an
    # integer), so each lockstep iteration is only gathers and adds.
    weights = 1 << np.arange(window_bits - 1, -1, -1)
    windows = np.lib.stride_tricks.sliding_window_view(bits, window_bits, axis=1)
    windows = windows @ weights  # (G, num_offsets)
    base = rows * windows.shape[1]
    flat_windows = windows.ravel()
    flat_syms = sym_table[codebook_ids]  # (G, 2**window_bits)
    flat_lens = len_table[codebook_ids]
    offsets = np.full(G, header_bits, dtype=np.int64)
    symbols = np.empty((G, config.group_size), dtype=np.int64)
    for pos in range(config.group_size):
        at_scale = scale_pos == pos
        window = flat_windows[base + offsets]
        sym = np.take_along_axis(flat_syms, window[:, None], axis=1)[:, 0]
        length = np.take_along_axis(flat_lens, window[:, None], axis=1)[:, 0]
        if np.any((length == 0) & ~at_scale):
            raise ValueError("corrupt block: no canonical code matched")
        symbols[:, pos] = np.where(at_scale, SCALE_SYMBOL, sym)
        offsets += np.where(at_scale, 0, length)

    # Outlier slots.
    corrections = np.zeros((G, config.group_size), dtype=np.int64)
    max_count = int(out_counts.max()) if G else 0
    for k in range(max_count):
        valid = k < out_counts
        starts = np.where(valid, offsets + k * config.outlier_bits, 0)
        slot = _gather_bits(bits, starts, config.outlier_bits, rows)
        out_pos = slot >> 8
        out_q = slot & 0xFF
        out_q = np.where(out_q >= 128, out_q - 256, out_q)
        vr = np.flatnonzero(valid)
        corrections[vr, out_pos[vr]] = out_q[vr]

    return scales, scale_pos, pattern_ids, codebook_ids, symbols, corrections


def unpack_block(config, data: bytes, code_lengths: np.ndarray, tables=None):
    """Deserialize one block back into its integer fields (scalar reference).

    ``code_lengths`` has shape (H, num_symbols); Huffman decoding walks the
    canonical code of the block's codebook bit by bit (the software twin of
    the hardware's speculative window decode).  Pass ``tables`` (from
    :func:`decode_tables`) to reuse the codebook lookups across blocks.
    """
    reader = BitReader(data)
    scale = np.uint16(reader.read(16)).view(np.float16).astype(np.float32)
    scale_pos = reader.read(config.scale_pos_bits)
    pattern_id = reader.read(config.pattern_id_bits)
    codebook_id = reader.read(config.codebook_id_bits)
    num_outliers = reader.read(config.outlier_count_bits)

    if tables is None:
        tables = decode_tables(code_lengths)
    table = tables[codebook_id]
    symbols = np.zeros(config.group_size, dtype=np.int64)
    for pos in range(config.group_size):
        if pos == scale_pos:
            symbols[pos] = SCALE_SYMBOL  # the scale slot
            continue
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read(1)
            length += 1
            sym = table.get((length, code))
            if sym is not None:
                symbols[pos] = sym
                break
            if length > config.max_code_len:
                raise ValueError("corrupt block: no canonical code matched")

    outlier_pos = np.zeros(num_outliers, dtype=np.int64)
    outlier_q = np.zeros(num_outliers, dtype=np.int64)
    for i in range(num_outliers):
        outlier_pos[i] = reader.read(config.scale_pos_bits)
        outlier_q[i] = reader.read_signed(8)
    return scale, scale_pos, pattern_id, codebook_id, symbols, outlier_pos, outlier_q
