"""Codec layer: entropy-aware compression into fixed 64-byte blocks."""

from .codec import (
    ActivationCodec,
    CompressedTensor,
    EccoTensorCodec,
    SimulationResult,
    compress_weight,
    plan_encoding,
    simulate_roundtrip,
)
from .config import ACT_CONFIG, KV_CONFIG, WEIGHT_CONFIG, EccoConfig
from .grouping import NormalizedGroups, normalize_groups, tensor_exponent, to_groups
from .kv import (
    KVCacheCodec,
    KVCacheStream,
    merge_token_segments,
    split_token_segment,
)
from .patterns import (
    SCALE_SYMBOL,
    TensorMeta,
    calibrate_kv_meta,
    fit_tensor_meta,
    select_patterns_minmax,
    select_patterns_mse,
)

__all__ = [
    "ACT_CONFIG",
    "ActivationCodec",
    "CompressedTensor",
    "EccoConfig",
    "EccoTensorCodec",
    "KVCacheCodec",
    "KVCacheStream",
    "KV_CONFIG",
    "NormalizedGroups",
    "SCALE_SYMBOL",
    "SimulationResult",
    "TensorMeta",
    "WEIGHT_CONFIG",
    "calibrate_kv_meta",
    "compress_weight",
    "fit_tensor_meta",
    "merge_token_segments",
    "split_token_segment",
    "normalize_groups",
    "plan_encoding",
    "select_patterns_minmax",
    "select_patterns_mse",
    "simulate_roundtrip",
    "tensor_exponent",
    "to_groups",
]
