"""Online KV-cache compression for the decode loop.

``KVCacheCodec`` wraps the block codec with the online (min/max) pattern
library; ``KVCacheStream`` is the per-(layer, head) cache that compresses
every generated token's key and value vectors as they are appended and
serves decompressed reads back to attention.

The decode loop is amortized O(new tokens): each compressed segment is
decoded exactly once into a decoded-segment cache, and attention reads
only concatenate already-decoded tokens with whatever arrived since the
last read.  ``invalidate_decoded`` is the hook a future eviction pass uses
to drop stale decoded state after rewriting segments.
"""

from __future__ import annotations

import numpy as np

from .codec import CompressedTensor, EccoTensorCodec, plan_encoding, reconstruct
from .patterns import TensorMeta

__all__ = [
    "KVCacheCodec",
    "KVCacheStream",
    "merge_token_segments",
    "split_token_segment",
]


def merge_token_segments(segments: list[CompressedTensor]) -> CompressedTensor:
    """Concatenate token segments into one segment, bit for bit.

    Per-token group padding makes a multi-token segment's block stack the
    exact concatenation of its tokens' blocks, so merging is pure
    bookkeeping: no decode, no re-encode, and the merged segment decodes
    to the same values as the parts.  This is what turns a run of
    one-token decode appends into a page-granular segment.
    """
    if not segments:
        raise ValueError("no segments to merge")
    shapes = {c.token_shape for c in segments if c.token_shape is not None}
    if any(c.token_shape is None for c in segments):
        raise ValueError("segments must be token batches (token_shape set)")
    dims = {shape[1] for shape in shapes}
    padded_dims = {c.shape[1] for c in segments}
    if len(dims) != 1 or len(padded_dims) != 1:
        raise ValueError("segments must share one token dim")
    if len(segments) == 1:
        return segments[0]
    (dim,) = dims
    (padded_dim,) = padded_dims
    num_tokens = sum(c.token_shape[0] for c in segments)
    sizes = np.array([float(np.prod(c.shape)) for c in segments])
    total = float(sizes.sum())
    return CompressedTensor(
        blocks=np.concatenate([c.blocks for c in segments], axis=0),
        shape=(num_tokens, padded_dim),
        pad=0,
        clipping_ratio=float(
            sum(c.clipping_ratio * s for c, s in zip(segments, sizes)) / total
        ),
        padding_ratio=float(
            sum(c.padding_ratio * s for c, s in zip(segments, sizes)) / total
        ),
        token_shape=(num_tokens, dim),
    )


def split_token_segment(
    segment: CompressedTensor, num_head_tokens: int
) -> tuple[CompressedTensor, CompressedTensor]:
    """Cut a token segment at a token boundary into two, bit for bit.

    The inverse of :func:`merge_token_segments`: per-token group padding
    makes a segment's block stack the exact concatenation of its tokens'
    blocks, so splitting is pure bookkeeping — slice the block rows at
    the token boundary and both halves decode to exactly the rows the
    whole segment would have produced (and, because every group is
    encoded independently, to exactly the blocks a fresh encode of each
    half would emit).  This is what lets a prefix-cache page be split at
    a divergence point without re-encoding either side.

    The block slices are copied so evicting one half actually frees its
    bytes instead of pinning the parent's whole block stack.
    """
    if segment.token_shape is None:
        raise ValueError("not a token segment (token_shape unset)")
    num_tokens, dim = segment.token_shape
    if not 0 < num_head_tokens < num_tokens:
        raise ValueError(
            f"split point {num_head_tokens} must lie strictly inside "
            f"the segment's {num_tokens} tokens"
        )
    padded_dim = segment.shape[1]
    groups = segment.blocks.shape[0]
    if groups % num_tokens:
        raise ValueError(
            f"{groups} block groups do not divide evenly over "
            f"{num_tokens} tokens; not a per-token-padded segment"
        )
    groups_per_token = groups // num_tokens
    cut = num_head_tokens * groups_per_token

    def part(blocks: np.ndarray, tokens: int) -> CompressedTensor:
        return CompressedTensor(
            blocks=blocks.copy(),
            shape=(tokens, padded_dim),
            pad=0,
            # The per-group ratios are stats, not decode state; the
            # parent's averages are the best per-half estimate available
            # without re-planning.
            clipping_ratio=segment.clipping_ratio,
            padding_ratio=segment.padding_ratio,
            token_shape=(tokens, dim),
        )

    head = part(segment.blocks[:cut], num_head_tokens)
    tail = part(segment.blocks[cut:], num_tokens - num_head_tokens)
    return head, tail


class KVCacheCodec(EccoTensorCodec):
    """Block codec bound to an online-calibrated KV pattern library."""

    def __init__(self, meta: TensorMeta):
        if meta.config.pattern_select != "minmax":
            raise ValueError(
                "KV codecs use the hardware min/max selector; calibrate with "
                "calibrate_kv_meta()"
            )
        super().__init__(meta)

    def _pad_tokens(self, vectors: np.ndarray) -> np.ndarray:
        """Zero-pad each token row to a whole number of groups.

        Per-token padding (rather than padding the flattened batch once)
        keeps every token's group boundaries — and therefore its packed
        blocks — identical to what the one-token-at-a-time path produces.
        """
        group_size = self.meta.config.group_size
        pad = (-vectors.shape[1]) % group_size
        if not pad:
            return vectors
        return np.concatenate(
            [vectors, np.zeros((vectors.shape[0], pad), dtype=vectors.dtype)],
            axis=1,
        )

    def encode_token(self, vector: np.ndarray) -> CompressedTensor:
        """Compress one token's K or V vector (padded to whole groups)."""
        return self.encode_tokens(
            np.asarray(vector, dtype=np.float32).reshape(1, -1)
        )

    def encode_tokens(self, vectors: np.ndarray) -> CompressedTensor:
        """Compress a (num_tokens, dim) batch in one planning pass.

        All tokens' groups go through a single :func:`plan_encoding` call
        and one vectorized pack, instead of one Python iteration per
        token; the emitted blocks are byte-identical to per-token encodes.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        num_tokens, dim = vectors.shape
        padded = self._pad_tokens(vectors)
        plan = plan_encoding(self.meta, padded)
        compressed = self.encode_plan(plan)
        compressed.token_shape = (num_tokens, dim)
        return compressed

    def decode_tokens(self, compressed: CompressedTensor) -> np.ndarray:
        """Decode a batched-token segment back to (num_tokens, dim)."""
        if compressed.token_shape is None:
            raise ValueError("not a token segment; use decode()")
        values = self.decode(compressed)
        num_tokens, dim = compressed.token_shape
        return values.reshape(num_tokens, -1)[:, :dim]

    def decode_all(self, segments: list[CompressedTensor]) -> np.ndarray:
        """Decode many token segments with one vectorized unpack.

        Stacks every segment's blocks and runs a single
        :meth:`plan_from_blocks` + reconstruction over all of them, so the
        per-call overhead is paid once regardless of segment count.
        """
        if not segments:
            return np.zeros((0, 0), dtype=np.float32)
        dims = {c.token_shape[1] for c in segments if c.token_shape is not None}
        if len(dims) != 1 or any(c.token_shape is None for c in segments):
            raise ValueError("segments must be token batches of one dim")
        (dim,) = dims
        blocks = (
            segments[0].blocks
            if len(segments) == 1
            else np.concatenate([c.blocks for c in segments], axis=0)
        )
        group_size = self.meta.config.group_size
        num_tokens = sum(c.token_shape[0] for c in segments)
        padded_dim = blocks.shape[0] * group_size // num_tokens
        plan = self.plan_from_blocks(blocks, (num_tokens, padded_dim), 0)
        return reconstruct(self.meta, plan)[:, :dim]


class KVCacheStream:
    """An append-only compressed KV cache for one attention head group.

    Reads return (num_tokens, dim) arrays — the shape attention consumes.
    Decoded segments are cached: ``read_keys``/``read_values`` decode only
    segments appended since the previous read, so a T-step decode loop
    performs O(T) total block decodes instead of O(T^2).  The
    ``decoded_tokens`` counters expose exactly how much decode work was
    done, and ``invalidate_decoded`` drops the cache (the hook eviction or
    segment-rewriting passes must call).
    """

    def __init__(self, key_codec: KVCacheCodec, value_codec: KVCacheCodec):
        self.key_codec = key_codec
        self.value_codec = value_codec
        self._segments: dict[str, list[CompressedTensor]] = {
            "keys": [], "values": []
        }
        self._cache: dict[str, np.ndarray | None] = {
            "keys": None, "values": None
        }
        #: Decoded-cache coverage in tokens, per side.  Always sits on a
        #: segment boundary of the current segment list (reads decode whole
        #: segments; invalidation rounds down to a boundary).
        self._cached_tokens = {"keys": 0, "values": 0}
        #: Tokens actually run through block decode, per side (the decode
        #: work counter the O(new tokens) guarantee is tested against).
        self.decoded_tokens = {"keys": 0, "values": 0}
        self._num_tokens = 0
        self.original_nbytes = 0
        self.compressed_nbytes = 0

    def __len__(self) -> int:
        return self._num_tokens

    @property
    def num_segments(self) -> int:
        return len(self._segments["keys"])

    @staticmethod
    def _prefix_index(
        segments: list[CompressedTensor], token_limit: int
    ) -> tuple[int, int]:
        """(index, tokens) of the longest segment prefix of <= token_limit
        tokens — the boundary a mid-segment position rounds down to."""
        covered = 0
        for idx, segment in enumerate(segments):
            tokens = segment.token_shape[0]
            if covered + tokens > token_limit:
                return idx, covered
            covered += tokens
        return len(segments), covered

    def append(self, key: np.ndarray, value: np.ndarray) -> None:
        """Append one token's K and V vectors."""
        self.append_tokens(
            np.asarray(key, dtype=np.float32).reshape(1, -1),
            np.asarray(value, dtype=np.float32).reshape(1, -1),
        )

    def append_tokens(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append a (num_tokens, dim) batch of K and V vectors at once."""
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        if keys.ndim == 1:
            keys = keys.reshape(1, -1)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        if keys.shape[0] != values.shape[0]:
            raise ValueError(
                f"keys and values must cover the same tokens: got "
                f"{keys.shape[0]} key tokens but {values.shape[0]} value tokens"
            )
        ck = self.key_codec.encode_tokens(keys)
        cv = self.value_codec.encode_tokens(values)
        self.append_compressed(ck, cv)

    def append_compressed(
        self, key_segment: CompressedTensor, value_segment: CompressedTensor
    ) -> None:
        """Append pre-encoded K and V token segments (no re-encode).

        This is the page-sharing path: a segment encoded once for one
        stream (e.g. a shared prompt page) is appended by reference to
        every other stream that covers the same tokens.
        """
        if key_segment.token_shape is None or value_segment.token_shape is None:
            raise ValueError("segments must be token batches (token_shape set)")
        kt, vt = key_segment.token_shape[0], value_segment.token_shape[0]
        if kt != vt:
            raise ValueError(
                f"keys and values must cover the same tokens: got "
                f"{kt} key tokens but {vt} value tokens"
            )
        self._segments["keys"].append(key_segment)
        self._segments["values"].append(value_segment)
        self._num_tokens += kt
        self.original_nbytes += (
            kt * key_segment.token_shape[1] + vt * value_segment.token_shape[1]
        ) * 2
        self.compressed_nbytes += key_segment.nbytes + value_segment.nbytes

    @property
    def compression_ratio(self) -> float:
        if self.compressed_nbytes == 0:
            return 1.0
        return self.original_nbytes / self.compressed_nbytes

    def _refresh(self, side: str, codec: KVCacheCodec) -> np.ndarray | None:
        segments = self._segments[side]
        idx, covered = self._prefix_index(segments, self._cached_tokens[side])
        if covered < self._cached_tokens[side]:
            # Defensive: a rewrite left the boundary mid-segment; roll the
            # cache back to the last whole-segment boundary.
            self._truncate_cache(side, covered)
        fresh = segments[idx:]
        if fresh:
            decoded = codec.decode_all(fresh).astype(np.float32)
            self.decoded_tokens[side] += decoded.shape[0]
            cache = self._cache[side]
            cache = (
                decoded
                if cache is None
                else np.concatenate([cache, decoded], axis=0)
            )
            cache.flags.writeable = False
            self._cache[side] = cache
            self._cached_tokens[side] = covered + sum(
                c.token_shape[0] for c in fresh
            )
        return self._cache[side]

    def _truncate_cache(self, side: str, tokens: int) -> None:
        if self._cached_tokens[side] <= tokens:
            return
        cache = self._cache[side]
        self._cache[side] = cache[:tokens] if tokens else None
        self._cached_tokens[side] = tokens

    def read_keys(self) -> np.ndarray:
        """The decoded (num_tokens, dim) key cache attention reads.

        Only tokens appended since the last read are decoded; the rest
        come from the decoded-segment cache.  The returned array is
        read-only (it is the cache itself, not a copy).
        """
        cache = self._refresh("keys", self.key_codec)
        if cache is None:
            return np.zeros((0, 0), dtype=np.float32)
        return cache

    def read_values(self) -> np.ndarray:
        """The decoded (num_tokens, dim) value cache attention reads."""
        cache = self._refresh("values", self.value_codec)
        if cache is None:
            return np.zeros((0, 0), dtype=np.float32)
        return cache

    def invalidate_decoded(self, from_token: int | None = None) -> None:
        """Drop cached decoded state from ``from_token`` onward.

        With no argument everything is dropped (the blunt eviction hook:
        the next read re-decodes the whole stream).  With ``from_token``
        only the tail is dropped — the hook page-granular eviction and
        segment rewrites use so they do not throw away the decoded prefix.
        ``from_token`` rounds *down* to a segment boundary (decode is
        segment-granular), so at most one extra segment is re-decoded.
        The compressed segments are untouched either way.
        """
        if from_token is None or from_token <= 0:
            for side in ("keys", "values"):
                self._cache[side] = None
                self._cached_tokens[side] = 0
            return
        for side in ("keys", "values"):
            _, covered = self._prefix_index(self._segments[side], from_token)
            self._truncate_cache(side, covered)

    def coalesce(
        self, from_token: int
    ) -> tuple[CompressedTensor, CompressedTensor]:
        """Merge every segment from ``from_token`` to the end into one
        page-granular segment per side; returns the (key, value) pair.

        ``from_token`` must lie on a segment boundary.  Merging is a pure
        block concatenation (see :func:`merge_token_segments`) so decoded
        values are unchanged bit for bit; decoded-cache state whose
        boundary fell strictly inside the merged range is dropped back to
        ``from_token`` (segment-granular reads could no longer resume from
        it), which is the only re-decode this rewrite can cost.
        """
        segments = self._segments["keys"]
        idx, covered = self._prefix_index(segments, from_token)
        if covered != from_token:
            raise ValueError(
                f"from_token {from_token} is not a segment boundary"
            )
        if idx >= len(segments):
            raise ValueError(f"no segments at or after token {from_token}")
        merged_k = merge_token_segments(segments[idx:])
        merged_v = merge_token_segments(self._segments["values"][idx:])
        self._segments["keys"][idx:] = [merged_k]
        self._segments["values"][idx:] = [merged_v]
        for side in ("keys", "values"):
            if from_token < self._cached_tokens[side] < self._num_tokens:
                self._truncate_cache(side, from_token)
        return merged_k, merged_v
