"""Online KV-cache compression for the decode loop.

``KVCacheCodec`` wraps the block codec with the online (min/max) pattern
library; ``KVCacheStream`` is the per-(layer, head) cache that compresses
every generated token's key and value vectors as they are appended and
serves decompressed reads back to attention.

The decode loop is amortized O(new tokens): each compressed segment is
decoded exactly once into a decoded-segment cache, and attention reads
only concatenate already-decoded tokens with whatever arrived since the
last read.  ``invalidate_decoded`` is the hook a future eviction pass uses
to drop stale decoded state after rewriting segments.
"""

from __future__ import annotations

import numpy as np

from .codec import CompressedTensor, EccoTensorCodec, plan_encoding, reconstruct
from .patterns import TensorMeta

__all__ = ["KVCacheCodec", "KVCacheStream"]


class KVCacheCodec(EccoTensorCodec):
    """Block codec bound to an online-calibrated KV pattern library."""

    def __init__(self, meta: TensorMeta):
        if meta.config.pattern_select != "minmax":
            raise ValueError(
                "KV codecs use the hardware min/max selector; calibrate with "
                "calibrate_kv_meta()"
            )
        super().__init__(meta)

    def _pad_tokens(self, vectors: np.ndarray) -> np.ndarray:
        """Zero-pad each token row to a whole number of groups.

        Per-token padding (rather than padding the flattened batch once)
        keeps every token's group boundaries — and therefore its packed
        blocks — identical to what the one-token-at-a-time path produces.
        """
        group_size = self.meta.config.group_size
        pad = (-vectors.shape[1]) % group_size
        if not pad:
            return vectors
        return np.concatenate(
            [vectors, np.zeros((vectors.shape[0], pad), dtype=vectors.dtype)],
            axis=1,
        )

    def encode_token(self, vector: np.ndarray) -> CompressedTensor:
        """Compress one token's K or V vector (padded to whole groups)."""
        return self.encode_tokens(
            np.asarray(vector, dtype=np.float32).reshape(1, -1)
        )

    def encode_tokens(self, vectors: np.ndarray) -> CompressedTensor:
        """Compress a (num_tokens, dim) batch in one planning pass.

        All tokens' groups go through a single :func:`plan_encoding` call
        and one vectorized pack, instead of one Python iteration per
        token; the emitted blocks are byte-identical to per-token encodes.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        num_tokens, dim = vectors.shape
        padded = self._pad_tokens(vectors)
        plan = plan_encoding(self.meta, padded)
        compressed = self.encode_plan(plan)
        compressed.token_shape = (num_tokens, dim)
        return compressed

    def decode_tokens(self, compressed: CompressedTensor) -> np.ndarray:
        """Decode a batched-token segment back to (num_tokens, dim)."""
        if compressed.token_shape is None:
            raise ValueError("not a token segment; use decode()")
        values = self.decode(compressed)
        num_tokens, dim = compressed.token_shape
        return values.reshape(num_tokens, -1)[:, :dim]

    def decode_all(self, segments: list[CompressedTensor]) -> np.ndarray:
        """Decode many token segments with one vectorized unpack.

        Stacks every segment's blocks and runs a single
        :meth:`plan_from_blocks` + reconstruction over all of them, so the
        per-call overhead is paid once regardless of segment count.
        """
        if not segments:
            return np.zeros((0, 0), dtype=np.float32)
        dims = {c.token_shape[1] for c in segments if c.token_shape is not None}
        if len(dims) != 1 or any(c.token_shape is None for c in segments):
            raise ValueError("segments must be token batches of one dim")
        (dim,) = dims
        blocks = (
            segments[0].blocks
            if len(segments) == 1
            else np.concatenate([c.blocks for c in segments], axis=0)
        )
        group_size = self.meta.config.group_size
        num_tokens = sum(c.token_shape[0] for c in segments)
        padded_dim = blocks.shape[0] * group_size // num_tokens
        plan = self.plan_from_blocks(blocks, (num_tokens, padded_dim), 0)
        return reconstruct(self.meta, plan)[:, :dim]


class KVCacheStream:
    """An append-only compressed KV cache for one attention head group.

    Reads return (num_tokens, dim) arrays — the shape attention consumes.
    Decoded segments are cached: ``read_keys``/``read_values`` decode only
    segments appended since the previous read, so a T-step decode loop
    performs O(T) total block decodes instead of O(T^2).  The
    ``decoded_tokens`` counters expose exactly how much decode work was
    done, and ``invalidate_decoded`` drops the cache (the hook eviction or
    segment-rewriting passes must call).
    """

    def __init__(self, key_codec: KVCacheCodec, value_codec: KVCacheCodec):
        self.key_codec = key_codec
        self.value_codec = value_codec
        self._key_segments: list[CompressedTensor] = []
        self._value_segments: list[CompressedTensor] = []
        self._key_cache: np.ndarray | None = None
        self._value_cache: np.ndarray | None = None
        self._key_cached_segments = 0
        self._value_cached_segments = 0
        #: Tokens actually run through block decode, per side (the decode
        #: work counter the O(new tokens) guarantee is tested against).
        self.decoded_tokens = {"keys": 0, "values": 0}
        self._num_tokens = 0
        self.original_nbytes = 0
        self.compressed_nbytes = 0

    def __len__(self) -> int:
        return self._num_tokens

    def append(self, key: np.ndarray, value: np.ndarray) -> None:
        """Append one token's K and V vectors."""
        self.append_tokens(
            np.asarray(key, dtype=np.float32).reshape(1, -1),
            np.asarray(value, dtype=np.float32).reshape(1, -1),
        )

    def append_tokens(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append a (num_tokens, dim) batch of K and V vectors at once."""
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        if keys.ndim == 1:
            keys = keys.reshape(1, -1)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        if keys.shape[0] != values.shape[0]:
            raise ValueError("keys and values must cover the same tokens")
        ck = self.key_codec.encode_tokens(keys)
        cv = self.value_codec.encode_tokens(values)
        self._key_segments.append(ck)
        self._value_segments.append(cv)
        self._num_tokens += keys.shape[0]
        self.original_nbytes += (keys.size + values.size) * 2
        self.compressed_nbytes += ck.nbytes + cv.nbytes

    @property
    def compression_ratio(self) -> float:
        if self.compressed_nbytes == 0:
            return 1.0
        return self.original_nbytes / self.compressed_nbytes

    def _refresh(
        self,
        codec: KVCacheCodec,
        segments: list[CompressedTensor],
        cache: np.ndarray | None,
        cached_segments: int,
        counter: str,
    ) -> tuple[np.ndarray | None, int]:
        fresh = segments[cached_segments:]
        if fresh:
            decoded = codec.decode_all(fresh).astype(np.float32)
            self.decoded_tokens[counter] += decoded.shape[0]
            cache = (
                decoded
                if cache is None
                else np.concatenate([cache, decoded], axis=0)
            )
            cache.flags.writeable = False
        return cache, len(segments)

    def read_keys(self) -> np.ndarray:
        """The decoded (num_tokens, dim) key cache attention reads.

        Only tokens appended since the last read are decoded; the rest
        come from the decoded-segment cache.  The returned array is
        read-only (it is the cache itself, not a copy).
        """
        self._key_cache, self._key_cached_segments = self._refresh(
            self.key_codec,
            self._key_segments,
            self._key_cache,
            self._key_cached_segments,
            "keys",
        )
        if self._key_cache is None:
            return np.zeros((0, 0), dtype=np.float32)
        return self._key_cache

    def read_values(self) -> np.ndarray:
        """The decoded (num_tokens, dim) value cache attention reads."""
        self._value_cache, self._value_cached_segments = self._refresh(
            self.value_codec,
            self._value_segments,
            self._value_cache,
            self._value_cached_segments,
            "values",
        )
        if self._value_cache is None:
            return np.zeros((0, 0), dtype=np.float32)
        return self._value_cache

    def invalidate_decoded(self) -> None:
        """Drop all cached decoded state (the eviction/rewrite hook).

        The compressed segments are untouched; the next read re-decodes
        everything.  Any pass that rewrites or evicts segments must call
        this so reads never serve stale decodes.
        """
        self._key_cache = None
        self._value_cache = None
        self._key_cached_segments = 0
        self._value_cached_segments = 0
