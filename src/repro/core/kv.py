"""Online KV-cache compression for the decode loop.

``KVCacheCodec`` wraps the block codec with the online (min/max) pattern
library; ``KVCacheStream`` is the per-(layer, head) cache that compresses
every generated token's key and value vectors as they are appended and
serves decompressed reads back to attention.
"""

from __future__ import annotations

import numpy as np

from .codec import CompressedTensor, EccoTensorCodec
from .patterns import TensorMeta

__all__ = ["KVCacheCodec", "KVCacheStream"]


class KVCacheCodec(EccoTensorCodec):
    """Block codec bound to an online-calibrated KV pattern library."""

    def __init__(self, meta: TensorMeta):
        if meta.config.pattern_select != "minmax":
            raise ValueError(
                "KV codecs use the hardware min/max selector; calibrate with "
                "calibrate_kv_meta()"
            )
        super().__init__(meta)

    def encode_token(self, vector: np.ndarray) -> CompressedTensor:
        """Compress one token's K or V vector (padded to whole groups)."""
        return self.encode(np.asarray(vector, dtype=np.float32).ravel())


class KVCacheStream:
    """An append-only compressed KV cache for one attention head group."""

    def __init__(self, key_codec: KVCacheCodec, value_codec: KVCacheCodec):
        self.key_codec = key_codec
        self.value_codec = value_codec
        self._keys: list[CompressedTensor] = []
        self._values: list[CompressedTensor] = []
        self.original_nbytes = 0
        self.compressed_nbytes = 0

    def __len__(self) -> int:
        return len(self._keys)

    def append(self, key: np.ndarray, value: np.ndarray) -> None:
        ck = self.key_codec.encode_token(key)
        cv = self.value_codec.encode_token(value)
        self._keys.append(ck)
        self._values.append(cv)
        self.original_nbytes += (np.asarray(key).size + np.asarray(value).size) * 2
        self.compressed_nbytes += ck.nbytes + cv.nbytes

    @property
    def compression_ratio(self) -> float:
        if self.compressed_nbytes == 0:
            return 1.0
        return self.original_nbytes / self.compressed_nbytes

    def read_keys(self) -> np.ndarray:
        """Decompress the whole key cache (what attention reads)."""
        if not self._keys:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(
            [self.key_codec.decode(c).ravel() for c in self._keys]
        )

    def read_values(self) -> np.ndarray:
        if not self._values:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(
            [self.value_codec.decode(c).ravel() for c in self._values]
        )
