"""Configuration for the Ecco codec.

Every compressed unit is one *group* of ``group_size`` values packed into a
fixed 64-byte *block* — the size of two 32-byte memory sectors, which is what
lets the hardware address compressed data with no indirection tables.  A
tensor shares a small library of ``num_patterns`` k-means patterns (15
centroids each; the 16th code is the group's scale slot) and
``num_codebooks`` Huffman codebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["EccoConfig", "WEIGHT_CONFIG", "KV_CONFIG", "ACT_CONFIG"]


@dataclass(frozen=True)
class EccoConfig:
    """Knobs of the codec; the defaults are the paper's weight settings."""

    group_size: int = 128
    num_patterns: int = 64  # S: shared k-means patterns per tensor
    num_codebooks: int = 4  # H: shared Huffman codebooks per tensor
    pattern_values: int = 15  # centroids per pattern (code 15 = scale slot)
    block_bytes: int = 64  # fixed compressed block size
    pattern_select: str = "mse"  # "mse" (offline) or "minmax" (hardware)
    scale_index: int = 0  # |value| rank used as the group scale (0 = absmax)
    max_code_len: int = 8  # Huffman length limit (8-bit decode windows)
    correction_scale: int = 64  # residual quantization step = scale / 64
    # Outlier slots the rate control keeps free in every block: symbols are
    # shed (cheaply, via the lambda ladder) until this much payload is
    # spare, and the slots then hold 8-bit corrections for the block's
    # worst residuals.  Trading marginal symbol precision for targeted
    # outlier precision is the clip/pad balance of the paper's Step 9.
    outlier_reserve_slots: int = 2
    mse_candidates: int = 8  # patterns short-listed before the exact MSE pass
    # Entropy-aware pattern shaping: each fitted pattern is blended toward
    # a uniform grid spanning its own range.  Pure k-means (blend 0)
    # minimizes distortion but its near-balanced symbol usage defeats the
    # Huffman stage; a grid-leaning blend keeps the per-group span/shape
    # adaptivity while the skewed code usage buys back the rate that the
    # outlier slots then spend on the worst residuals.  The default suits
    # near-Gaussian weight tensors; the KV preset keeps more k-means
    # character for the outlier-heavy cache distributions.
    grid_blend: float = 0.95

    @property
    def block_bits(self) -> int:
        return self.block_bytes * 8

    @property
    def scale_pos_bits(self) -> int:
        return max(1, (self.group_size - 1).bit_length())

    #: Fixed-width id fields (byte-aligned library of up to 256 patterns
    #: and 16 codebooks), so the block format is invariant to S and H.
    pattern_id_bits: int = 8
    codebook_id_bits: int = 4

    #: Outlier-count field width (up to 31 slots; a block never fits more).
    outlier_count_bits: int = 5

    @property
    def max_outliers(self) -> int:
        return (1 << self.outlier_count_bits) - 1

    @property
    def outlier_bits(self) -> int:
        """One outlier slot: position + 8-bit quantized correction."""
        return self.scale_pos_bits + 8

    @property
    def header_bits(self) -> int:
        """Per-block header: fp16 signed scale + scale position + pattern
        id + codebook id + outlier count, all at minimal widths."""
        return (
            16
            + self.scale_pos_bits
            + self.pattern_id_bits
            + self.codebook_id_bits
            + self.outlier_count_bits
        )

    @property
    def payload_bits(self) -> int:
        """Bits available for Huffman codes and outlier slots."""
        return self.block_bits - self.header_bits

    @property
    def num_symbols(self) -> int:
        """Distinct Huffman symbols (the scale slot is not entropy-coded)."""
        return self.pattern_values

    def replace(self, **kwargs) -> "EccoConfig":
        return replace(self, **kwargs)


#: Offline weight compression: large pattern library, full-MSE selection.
#: Weight groups are near-Gaussian, so the patterns lean almost fully to
#: per-span grids (low code entropy) and only one outlier slot is held.
WEIGHT_CONFIG = EccoConfig(outlier_reserve_slots=1)

#: Online KV-cache compression: the 16-pattern hardware library with the
#: sorted-landmark (min/max) pattern selector the compressor implements.
#: KV tensors carry per-channel outliers, so more slots are reserved.
KV_CONFIG = EccoConfig(
    num_patterns=16,
    pattern_select="minmax",
    outlier_reserve_slots=3,
    grid_blend=0.7,
)

#: The 2x activation path (FP16 -> 8-bit blocks, no Huffman stage).
ACT_CONFIG = EccoConfig(num_patterns=1, num_codebooks=1)
