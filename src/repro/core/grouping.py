"""Grouping and per-group normalization.

A tensor is flattened row-major and cut into groups of ``group_size``
values.  Each group is normalized by its *scale element* — the value whose
|magnitude| rank equals ``config.scale_index`` (the absolute maximum by
default).  The scale is stored in the block header as a signed fp16, so
normalization here already rounds through fp16 to keep the software model
bit-exact with the packed format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["to_groups", "normalize_groups", "NormalizedGroups", "tensor_exponent"]


def to_groups(tensor: np.ndarray, group_size: int) -> tuple[np.ndarray, int]:
    """Flatten ``tensor`` into ``(num_groups, group_size)``.

    Returns the group matrix and the number of zero elements appended to
    fill the final partial group (0 when the size divides evenly).
    """
    flat = np.asarray(tensor, dtype=np.float32).ravel()
    pad = (-flat.size) % group_size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
    return flat.reshape(-1, group_size), pad


def tensor_exponent(tensor: np.ndarray) -> int:
    """Shared power-of-two exponent conditioning the fp16 group scales."""
    peak = float(np.max(np.abs(tensor), initial=0.0))
    if peak <= 0.0:
        return 0
    return int(np.ceil(np.log2(peak)))


@dataclass
class NormalizedGroups:
    """Per-group normalization state shared by both codec paths."""

    normalized: np.ndarray  # (G, group_size) values in ~[-1, 1]
    absmax_pos: np.ndarray  # (G,) position of the scale element
    scales: np.ndarray  # (G,) signed scale, already rounded through fp16
    tensor_exp: int

    @property
    def abs_scales(self) -> np.ndarray:
        return np.abs(self.scales)


def normalize_groups(groups: np.ndarray, tensor_exp: int, config) -> NormalizedGroups:
    """Normalize each group by its (fp16-rounded) scale element."""
    scaled = groups * np.float32(2.0 ** -tensor_exp)
    order = np.argsort(-np.abs(scaled), axis=1, kind="stable")
    absmax_pos = order[:, min(config.scale_index, groups.shape[1] - 1)]
    rows = np.arange(groups.shape[0])
    raw_scale = scaled[rows, absmax_pos]
    # Round through fp16: this is exactly what the block header stores.
    scales = np.float16(raw_scale).astype(np.float32)
    safe = np.where(np.abs(scales) > 0, np.abs(scales), np.float32(1.0))
    normalized = np.clip(scaled / safe[:, None], -1.0, 1.0).astype(np.float32)
    return NormalizedGroups(
        normalized=normalized,
        absmax_pos=absmax_pos.astype(np.int64),
        scales=scales,
        tensor_exp=tensor_exp,
    )
