"""Shared k-means pattern library and Huffman codebook calibration.

``fit_tensor_meta`` is the offline calibration pass (Steps 1-6 of the
paper's flow): sample groups, normalize by the per-group scale element,
cluster the groups' value distributions into ``S`` shared patterns (each a
sorted vector of 15 centroids), then fit ``H`` Huffman codebooks over the
resulting symbol streams with a Lloyd iteration in code-length space.

``calibrate_kv_meta`` is the online variant: the 16-pattern hardware
library with min/max pattern selection, fit on captured KV-cache data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import KV_CONFIG, WEIGHT_CONFIG, EccoConfig
from .grouping import normalize_groups, tensor_exponent, to_groups
from .huffman import canonical_codes, limited_code_lengths

__all__ = [
    "TensorMeta",
    "fit_tensor_meta",
    "calibrate_kv_meta",
    "select_patterns_mse",
    "select_patterns_minmax",
    "nearest_symbols",
]

#: Symbol value reserved for the group's scale element (not entropy-coded).
SCALE_SYMBOL = 15


@dataclass
class TensorMeta:
    """Per-tensor shared metadata: the pattern library and codebooks."""

    patterns: np.ndarray  # (S, 15) sorted centroids in ~[-1, 1]
    codebook_lengths: np.ndarray  # (H, 15) Huffman code lengths in bits
    tensor_exp: int
    config: EccoConfig
    codebook_codes: np.ndarray = field(default=None)  # (H, 15) canonical codes

    def __post_init__(self):
        if self.codebook_codes is None:
            self.codebook_codes = np.stack(
                [canonical_codes(row) for row in self.codebook_lengths]
            )

    @property
    def num_patterns(self) -> int:
        return int(self.patterns.shape[0])

    @property
    def num_codebooks(self) -> int:
        return int(self.codebook_lengths.shape[0])

    def metadata_bits(self) -> int:
        """Size of the shared metadata (what rides along with the tensor).

        Patterns are stored as fp16 centroids, codebooks as 4-bit code
        lengths (canonical codes are implied), plus the 8-bit shared
        exponent and one byte each for S and H.
        """
        pattern_bits = self.patterns.size * 16
        codebook_bits = self.codebook_lengths.size * 4
        return pattern_bits + codebook_bits + 8 + 16


def nearest_symbols(values: np.ndarray, pattern: np.ndarray) -> np.ndarray:
    """Nearest-centroid symbols for ``values`` under one sorted pattern."""
    mids = (pattern[1:] + pattern[:-1]) / 2.0
    return np.searchsorted(mids, values).astype(np.int64)


def select_patterns_mse(
    normalized: np.ndarray,
    absmax_pos: np.ndarray,
    patterns: np.ndarray,
    scale_index: int = 0,
    act_weights: np.ndarray | None = None,
    max_candidates: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Full-MSE pattern selection (the offline weight path).

    Returns ``(pattern_ids, symbols)`` where ``symbols`` is the per-value
    code matrix with :data:`SCALE_SYMBOL` marking each group's scale slot
    (rank ``scale_index`` by magnitude, whose position is ``absmax_pos``).

    With a large library, each group first short-lists ``max_candidates``
    patterns by quantile-descriptor distance, then runs the exact MSE only
    on the short list.  The short-list metric is unweighted, so when
    ``act_weights`` are given the prefilter is skipped — a mismatched
    shortlist would systematically miss the weighted-best pattern.
    """
    if act_weights is not None:
        max_candidates = None
    num_groups, group_size = normalized.shape
    num_patterns = patterns.shape[0]
    rows = np.arange(num_groups)
    mask = np.ones_like(normalized, dtype=bool)
    mask[rows, absmax_pos] = False
    weights = mask.astype(np.float32)
    if act_weights is not None:
        weights = weights * act_weights.astype(np.float32)

    best_cost = np.full(num_groups, np.inf, dtype=np.float64)
    pattern_ids = np.zeros(num_groups, dtype=np.int64)
    symbols = np.zeros((num_groups, group_size), dtype=np.int64)

    if max_candidates is not None and num_patterns > max_candidates:
        # Short-list by distance between the group's sorted-value profile
        # and each pattern (both are sorted 15-vectors).
        srt = np.sort(normalized, axis=1)
        idx = np.round(np.linspace(0, group_size - 1, patterns.shape[1])).astype(int)
        desc = srt[:, idx]
        d2 = np.sum((desc[:, None, :] - patterns[None, :, :]) ** 2, axis=2)
        cand = np.argpartition(d2, max_candidates - 1, axis=1)[:, :max_candidates]
        for k in range(max_candidates):
            pid = cand[:, k]
            pats = patterns[pid]  # (G, 15), a different pattern per group
            mids = (pats[:, 1:] + pats[:, :-1]) / 2.0
            syms = np.sum(normalized[:, :, None] > mids[:, None, :], axis=2)
            cvals = np.take_along_axis(pats, syms, axis=1)
            cost = np.sum((normalized - cvals) ** 2 * weights, axis=1)
            better = cost < best_cost
            best_cost[better] = cost[better]
            pattern_ids[better] = pid[better]
            symbols[better] = syms[better]
    else:
        for pid, pattern in enumerate(patterns):
            syms = nearest_symbols(normalized, pattern)
            err = (normalized - pattern[syms]) ** 2
            cost = np.sum(err * weights, axis=1)
            better = cost < best_cost
            best_cost[better] = cost[better]
            pattern_ids[better] = pid
            symbols[better] = syms[better]
    symbols[rows, absmax_pos] = SCALE_SYMBOL
    return pattern_ids, symbols


def select_patterns_minmax(
    normalized: np.ndarray,
    absmax_pos: np.ndarray,
    patterns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hardware order-statistic pattern selection (the online KV path).

    The compressor's 128-input bitonic sorter produces the fully sorted
    group, so the selector compares a ladder of sorted landmarks — the
    min, the max, and evenly spaced interior order statistics — against
    each pattern's centroids and picks the closest.  This is the
    simplified in-pipeline selection (no per-value search like the
    offline MSE path), at a small fidelity cost the §5 ablation
    quantifies.  Returns ``(pattern_ids, symbols, fitness)``.
    """
    num_groups, group_size = normalized.shape
    num_values = patterns.shape[1]
    rows = np.arange(num_groups)
    work = normalized.copy()
    med = np.median(normalized, axis=1)
    work[rows, absmax_pos] = med
    landmarks = np.sort(work, axis=1)[
        :, np.round(np.linspace(0, group_size - 1, num_values)).astype(int)
    ]
    fitness = np.sum(
        (landmarks[:, None, :] - patterns[None, :, :]) ** 2, axis=2
    )
    # The two best-fitness patterns go through a trial quantization and
    # the lower-error one wins (the compressor's parallel encoders make
    # the second trial free); everything stays one pipeline pass.
    if patterns.shape[0] > 1:
        cand = np.argpartition(fitness, 1, axis=1)[:, :2]
    else:
        cand = np.zeros((num_groups, 1), dtype=np.int64)
    mask = np.ones_like(normalized, dtype=bool)
    mask[rows, absmax_pos] = False
    best_cost = np.full(num_groups, np.inf)
    pattern_ids = np.zeros(num_groups, dtype=np.int64)
    symbols = np.zeros((num_groups, group_size), dtype=np.int64)
    for k in range(cand.shape[1]):
        pid = cand[:, k]
        pats = patterns[pid]
        mids = (pats[:, 1:] + pats[:, :-1]) / 2.0
        syms = np.sum(normalized[:, :, None] > mids[:, None, :], axis=2)
        cvals = np.take_along_axis(pats, syms, axis=1)
        cost = np.sum((normalized - cvals) ** 2 * mask, axis=1)
        better = cost < best_cost
        best_cost[better] = cost[better]
        pattern_ids[better] = pid[better]
        symbols[better] = syms[better]
    symbols[rows, absmax_pos] = SCALE_SYMBOL
    return pattern_ids, symbols, fitness


def _quantile_descriptors(
    normalized: np.ndarray, absmax_pos: np.ndarray, num_values: int
) -> np.ndarray:
    """Per-group descriptor: quantiles of the non-scale values.

    The outer entries are the group's actual min/max so the pattern library
    keeps centroids out at the extremes (the Fig. 7 "wide span" signature);
    the interior entries are evenly spaced quantiles.
    """
    num_groups, group_size = normalized.shape
    rows = np.arange(num_groups)
    work = normalized.copy()
    # Drop the scale slot by replacing it with the group median so it does
    # not distort the quantiles.
    med = np.median(normalized, axis=1)
    work[rows, absmax_pos] = med
    qs = np.concatenate(
        [[0.0], (np.arange(1, num_values - 1) + 0.5) / (num_values - 1), [1.0]]
    )
    return np.quantile(work, qs, axis=1).T.astype(np.float32)


def _fit_patterns(
    normalized: np.ndarray,
    absmax_pos: np.ndarray,
    config: EccoConfig,
    seed: int,
    act_weights: np.ndarray | None,
    iterations: int = 4,
) -> np.ndarray:
    """K-means over group quantile descriptors, Lloyd-refined on values."""
    descriptors = _quantile_descriptors(normalized, absmax_pos, config.pattern_values)
    num_groups = descriptors.shape[0]
    # Each pattern needs enough member groups to estimate a stable shape;
    # single-group patterns overfit their own quantiles, which flattens
    # symbol usage and wastes the entropy budget.
    S = max(1, min(config.num_patterns, num_groups // 4))

    # Deterministic balanced clustering: order the groups by descriptor
    # span (the dominant axis of variation once groups are absmax
    # normalized) and cut into S equal-count bins.  Monotone in S and
    # immune to the seeding noise k-means++ suffers on homogeneous data.
    span = descriptors[:, -1] - descriptors[:, 0]
    order = np.argsort(span, kind="stable")
    patterns = np.empty((S, config.pattern_values), dtype=np.float64)
    for s in range(S):
        sel = order[(s * num_groups) // S : ((s + 1) * num_groups) // S]
        if sel.size == 0:
            sel = order[-1:]
        patterns[s] = descriptors[sel].mean(axis=0)

    patterns = np.sort(patterns, axis=1)

    # Lloyd refinement on the actual member values: reassign groups by MSE,
    # then move each centroid to the (activation-weighted) mean of the
    # values it quantizes.  This is the "activation-aware k-means" step;
    # converging toward the MSE-optimal quantizer also skews the symbol
    # usage (dense centroids near zero soak up most values), which is what
    # gives the Huffman stage its entropy headroom.
    rows = np.arange(normalized.shape[0])
    mask = np.ones_like(normalized, dtype=bool)
    mask[rows, absmax_pos] = False
    weights = mask.astype(np.float32)
    if act_weights is not None:
        weights = weights * (act_weights.astype(np.float32) + 1e-12)
    for _ in range(6):
        pattern_ids, symbols = select_patterns_mse(
            normalized, absmax_pos, patterns, act_weights=act_weights
        )
        for s in range(S):
            sel = pattern_ids == s
            if not np.any(sel):
                continue
            vals = normalized[sel]
            syms = symbols[sel]
            wts = weights[sel]
            for c in range(config.pattern_values):
                hit = syms == c
                wsum = float(np.sum(wts[hit]))
                if wsum > 0:
                    patterns[s, c] = float(np.sum(vals[hit] * wts[hit]) / wsum)
        patterns = np.sort(patterns, axis=1)

    # Entropy-aware shaping: lean each pattern toward the uniform grid
    # over its own span (see EccoConfig.grid_blend).
    beta = config.grid_blend
    if beta > 0:
        grids = np.linspace(patterns[:, 0], patterns[:, -1], patterns.shape[1]).T
        patterns = (1.0 - beta) * patterns + beta * grids
    return np.sort(patterns, axis=1).astype(np.float32)


def _fit_codebooks(
    symbols: np.ndarray,
    pattern_ids: np.ndarray,
    config: EccoConfig,
    seed: int,
    refine_iterations: int = 3,
) -> np.ndarray:
    """Fit ``H`` length-limited Huffman codebooks (Lloyd in length space).

    Groups are clustered by which codebook encodes them shortest; each
    codebook is rebuilt from the aggregate symbol histogram of its cluster.
    """
    rng = np.random.default_rng(seed)
    H = config.num_codebooks
    num_symbols = config.num_symbols
    num_groups = symbols.shape[0]

    # Per-group histograms over the coded symbols (scale slot excluded).
    coded = symbols[symbols < num_symbols].reshape(num_groups, -1)
    hists = np.zeros((num_groups, num_symbols), dtype=np.float64)
    for s in range(num_symbols):
        hists[:, s] = np.sum(coded == s, axis=1)

    # Initial split: order groups by symbol-distribution entropy so the
    # codebooks specialize from flat to peaked distributions.
    probs = hists / np.maximum(hists.sum(axis=1, keepdims=True), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ent = -np.nansum(np.where(probs > 0, probs * np.log2(probs), 0.0), axis=1)
    order = np.argsort(ent + 1e-9 * rng.random(num_groups))
    assign = np.zeros(num_groups, dtype=np.int64)
    for h in range(H):
        assign[order[(h * num_groups) // H : ((h + 1) * num_groups) // H]] = h

    lengths = np.zeros((H, num_symbols), dtype=np.uint8)

    def rebuild() -> None:
        for h in range(H):
            sel = assign == h
            counts = hists[sel].sum(axis=0) if np.any(sel) else hists.sum(axis=0)
            lengths[h] = limited_code_lengths(counts + 1.0, config.max_code_len)

    rebuild()
    for _ in range(max(refine_iterations, 0)):
        # Reassign each group to the codebook that encodes it shortest.
        cost = hists @ lengths.T.astype(np.float64)
        assign = np.argmin(cost, axis=1)
        rebuild()
    return lengths


def fit_tensor_meta(
    tensor: np.ndarray,
    act_weights: np.ndarray | None = None,
    config: EccoConfig = WEIGHT_CONFIG,
    seed: int = 0,
    max_calibration_groups: int | None = None,
) -> TensorMeta:
    """Calibrate the shared pattern library + Huffman codebooks on a tensor."""
    groups, _pad = to_groups(tensor, config.group_size)
    aw_groups = None
    if act_weights is not None:
        aw_groups, _ = to_groups(act_weights, config.group_size)

    if max_calibration_groups is not None and groups.shape[0] > max_calibration_groups:
        rng = np.random.default_rng(seed)
        pick = rng.choice(groups.shape[0], size=max_calibration_groups, replace=False)
        pick.sort()
        groups = groups[pick]
        if aw_groups is not None:
            aw_groups = aw_groups[pick]

    exp = tensor_exponent(tensor)
    norm = normalize_groups(groups, exp, config)
    patterns = _fit_patterns(
        norm.normalized, norm.absmax_pos, config, seed, aw_groups
    )
    if config.pattern_select == "minmax":
        pattern_ids, symbols, _ = select_patterns_minmax(
            norm.normalized, norm.absmax_pos, patterns
        )
    else:
        pattern_ids, symbols = select_patterns_mse(
            norm.normalized, norm.absmax_pos, patterns,
            scale_index=config.scale_index, act_weights=aw_groups,
        )
    codebook_lengths = _fit_codebooks(symbols, pattern_ids, config, seed)
    return TensorMeta(
        patterns=patterns,
        codebook_lengths=codebook_lengths,
        tensor_exp=exp,
        config=config,
    )


def calibrate_kv_meta(
    kv: np.ndarray,
    seed: int = 0,
    config: EccoConfig = KV_CONFIG,
    max_calibration_groups: int = 512,
) -> TensorMeta:
    """Fit the online 16-pattern hardware library on captured KV data."""
    return fit_tensor_meta(
        kv, config=config, seed=seed, max_calibration_groups=max_calibration_groups
    )
