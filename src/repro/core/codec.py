"""The Ecco tensor codec: bit-exact block path and vectorized fast path.

Both paths run the same array-level planning pass (:func:`plan_encoding`):
normalize groups, select patterns, choose codebooks, clip over-budget
groups, and fill leftover bits with outlier corrections.  The bit path then
serializes each group into a 64-byte block; the fast path reconstructs
directly from the planned arrays.  Because reconstruction is one shared
vectorized routine, ``decode(encode(x))`` and ``simulate_roundtrip`` agree
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import (
    decode_tables as build_decode_tables,
    pack_blocks,
    unpack_blocks,
    window_tables as build_window_tables,
)
from .config import WEIGHT_CONFIG, EccoConfig
from .grouping import normalize_groups, to_groups
from .patterns import (
    SCALE_SYMBOL,
    TensorMeta,
    fit_tensor_meta,
    select_patterns_minmax,
    select_patterns_mse,
)

__all__ = [
    "EccoTensorCodec",
    "CompressedTensor",
    "SimulationResult",
    "simulate_roundtrip",
    "compress_weight",
    "ActivationCodec",
    "plan_encoding",
]


@dataclass
class EncodingPlan:
    """Everything needed to emit (or reconstruct) every block of a tensor."""

    shape: tuple
    pad: int
    scales: np.ndarray  # (G,) signed fp16-rounded group scales
    scale_pos: np.ndarray  # (G,)
    pattern_ids: np.ndarray  # (G,)
    codebook_ids: np.ndarray  # (G,)
    symbols: np.ndarray  # (G, group_size), SCALE_SYMBOL at the scale slot
    corrections: np.ndarray  # (G, group_size) int outlier corrections (0 = none)
    clipped_symbols: np.ndarray  # (G,) count per group
    padded_outliers: np.ndarray  # (G,) count per group

    @property
    def num_groups(self) -> int:
        return int(self.symbols.shape[0])


@dataclass
class CompressedTensor:
    """A tensor as a stack of fixed 64-byte blocks plus bookkeeping."""

    blocks: np.ndarray  # (G, block_bytes) uint8
    shape: tuple
    pad: int
    clipping_ratio: float
    padding_ratio: float
    #: Set by the batched token path: the (num_tokens, token_dim) view the
    #: blocks decode to, before stripping the per-token group padding.
    token_shape: tuple | None = None

    @property
    def num_groups(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.blocks.nbytes)

    @property
    def compression_ratio(self) -> float:
        """Versus the FP16 original (the paper's 4x target)."""
        shape = self.token_shape if self.token_shape is not None else self.shape
        original = (int(np.prod(shape))) * 2
        return original / self.nbytes


@dataclass
class SimulationResult:
    """Fast-path roundtrip output."""

    values: np.ndarray
    clipping_ratio: float
    padding_ratio: float
    pattern_ids: np.ndarray


def plan_encoding(
    meta: TensorMeta,
    tensor: np.ndarray,
    act_weights: np.ndarray | None = None,
) -> EncodingPlan:
    """The shared planning pass: groups -> symbols, clips and outliers."""
    config = meta.config
    tensor = np.asarray(tensor, dtype=np.float32)
    groups, pad = to_groups(tensor, config.group_size)
    aw = None
    if act_weights is not None:
        aw, _ = to_groups(act_weights, config.group_size)

    norm = normalize_groups(groups, meta.tensor_exp, config)
    if config.pattern_select == "minmax":
        pattern_ids, symbols, _ = select_patterns_minmax(
            norm.normalized, norm.absmax_pos, meta.patterns
        )
    else:
        pattern_ids, symbols = select_patterns_mse(
            norm.normalized, norm.absmax_pos, meta.patterns,
            scale_index=config.scale_index, act_weights=aw,
            max_candidates=config.mse_candidates,
        )

    G, group_size = symbols.shape
    coded_mask = symbols != SCALE_SYMBOL
    safe_syms = np.where(coded_mask, symbols, 0)

    # Choose the codebook that encodes each group's nearest-symbol stream
    # shortest.
    lengths = meta.codebook_lengths.astype(np.int64)  # (H, num_symbols)
    per_val = lengths[:, safe_syms] * coded_mask[None, :, :]  # (H, G, gs)
    totals = per_val.sum(axis=2)  # (H, G)
    codebook_ids = np.argmin(totals, axis=0)

    # Per-group rate control: groups whose nearest-centroid stream fits
    # the payload budget (minus the reserved outlier slots) are untouched;
    # over-budget groups shed exactly the excess bits by greedily
    # remapping the values with the best distortion-per-saved-bit ratio
    # to shorter-coded symbols.  Most such remaps are re-roundings to an
    # adjacent centroid at a near-boundary value; remaps that skip past a
    # neighbor genuinely lose resolution and are counted as the "clipped"
    # symbols of the paper's Step 9.
    cents = meta.patterns[pattern_ids]  # (G, 15)
    dist2 = (norm.normalized[:, :, None] - cents[:, None, :]) ** 2

    val_lengths = np.take_along_axis(
        lengths[codebook_ids], safe_syms, axis=1
    ) * coded_mask
    bits_used = val_lengths.sum(axis=1) + config.header_bits
    target_bits = config.block_bits - (
        config.outlier_reserve_slots * config.outlier_bits
    )

    clipped = np.zeros(G, dtype=np.int64)
    for _ in range(8):  # almost always one pass; stragglers re-enter
        over = np.flatnonzero(bits_used > target_bits)
        if over.size == 0:
            break
        n = over.size
        gs = config.group_size
        cb = lengths[codebook_ids[over]]  # (n, 15)
        cur = safe_syms[over]  # (n, gs)
        cur_len = np.take_along_axis(cb, cur, axis=1)  # (n, gs)
        cur_dist = np.take_along_axis(dist2[over], cur[:, :, None], axis=2)[
            :, :, 0
        ]
        # Best strictly-shorter alternative per value.
        shorter = cb[:, None, :] < cur_len[:, :, None]  # (n, gs, 15)
        alt_cost = np.where(shorter, dist2[over], np.inf)
        alt = np.argmin(alt_cost, axis=2)  # (n, gs)
        alt_dist = np.take_along_axis(dist2[over], alt[:, :, None], axis=2)[
            :, :, 0
        ]
        alt_len = np.take_along_axis(cb, alt, axis=1)
        saved = (cur_len - alt_len).astype(np.float64)
        feasible = (saved > 0) & coded_mask[over]
        added = np.where(feasible, alt_dist - cur_dist, np.inf)
        ratio = added / np.maximum(saved, 1e-9)
        order = np.argsort(ratio, axis=1, kind="stable")
        saved_sorted = np.take_along_axis(
            np.where(feasible, saved, 0.0), order, axis=1
        )
        need = (bits_used[over] - target_bits).astype(np.float64)
        cumsave = np.cumsum(saved_sorted, axis=1)
        # Minimal prefix of the ratio-sorted list covering the deficit.
        take_sorted = (cumsave - saved_sorted < need[:, None]) & (
            saved_sorted > 0
        )
        take = np.zeros((n, gs), dtype=bool)
        np.put_along_axis(take, order, take_sorted, axis=1)
        new_syms = np.where(take, alt, cur)
        symbols[over] = np.where(coded_mask[over], new_syms, symbols[over])
        safe_syms[over] = np.where(coded_mask[over], symbols[over], 0)
        val_lengths[over] = np.take_along_axis(
            lengths[codebook_ids[over]], safe_syms[over], axis=1
        ) * coded_mask[over]
        bits_used[over] = val_lengths[over].sum(axis=1) + config.header_bits
        clipped[over] += (take & (np.abs(new_syms - cur) > 1)).sum(axis=1)

    # Guaranteed-fit fallback: a group the greedy loop could not shed below
    # the raw block budget (every symbol already at its codebook's minimum
    # length, yet still over) would overflow the 64-byte writer.  Force such
    # groups onto the codebook with the globally shortest codes and map
    # every value to the nearest of that codebook's minimum-length symbols.
    over = np.flatnonzero(bits_used > config.block_bits)
    if over.size:
        min_len = lengths.min(axis=1)  # (H,)
        forced_cb = np.where(
            min_len[codebook_ids[over]] == min_len.min(),
            codebook_ids[over],
            int(np.argmin(min_len)),
        )
        cb = lengths[forced_cb]  # (n, num_symbols)
        is_min = cb == cb.min(axis=1, keepdims=True)
        cost = np.where(is_min[:, None, :], dist2[over], np.inf)
        forced = np.argmin(cost, axis=2)
        cur = safe_syms[over]
        codebook_ids[over] = forced_cb
        symbols[over] = np.where(coded_mask[over], forced, symbols[over])
        safe_syms[over] = np.where(coded_mask[over], symbols[over], 0)
        val_lengths[over] = np.take_along_axis(
            lengths[codebook_ids[over]], safe_syms[over], axis=1
        ) * coded_mask[over]
        bits_used[over] = val_lengths[over].sum(axis=1) + config.header_bits
        clipped[over] += ((np.abs(forced - cur) > 1) & coded_mask[over]).sum(axis=1)
        if np.any(bits_used[over] > config.block_bits):
            raise ValueError(
                "group cannot fit its block: even the shortest codes of "
                "every codebook overflow the 64-byte budget"
            )

    # Reconstruction (normalized domain) from the final symbols.
    recon_norm = meta.patterns[pattern_ids[:, None], safe_syms]
    recon_norm = np.where(coded_mask, recon_norm, 0.0).astype(np.float32)

    # Outlier padding: leftover bits hold (position, correction) slots for
    # the values with the largest (activation-weighted) residuals.
    resid = np.where(coded_mask, norm.normalized - recon_norm, 0.0)
    q = np.clip(
        np.rint(resid * config.correction_scale), -127, 127
    ).astype(np.int64)
    capacity = np.minimum(
        (config.block_bits - bits_used) // config.outlier_bits,
        config.max_outliers,
    ).astype(np.int64)
    priority = np.abs(resid)
    if aw is not None:
        priority = priority * (aw + 1e-12)
    order = np.argsort(-priority, axis=1, kind="stable")
    eligible = (q != 0) & coded_mask
    elig_sorted = np.take_along_axis(eligible, order, axis=1)
    rank = np.cumsum(elig_sorted, axis=1)
    take_sorted = elig_sorted & (rank <= capacity[:, None])
    take = np.zeros_like(eligible)
    np.put_along_axis(take, order, take_sorted, axis=1)
    corrections = np.where(take, q, 0)
    padded = take.sum(axis=1).astype(np.int64)

    return EncodingPlan(
        shape=tensor.shape,
        pad=pad,
        scales=norm.scales,
        scale_pos=norm.absmax_pos,
        pattern_ids=pattern_ids,
        codebook_ids=codebook_ids,
        symbols=symbols,
        corrections=corrections,
        clipped_symbols=clipped,
        padded_outliers=padded,
    )


def reconstruct(
    meta: TensorMeta, plan: EncodingPlan, apply_outliers: bool = True
) -> np.ndarray:
    """Shared vectorized reconstruction (used by every decode path)."""
    config = meta.config
    coded_mask = plan.symbols != SCALE_SYMBOL
    safe_syms = np.where(coded_mask, plan.symbols, 0)
    recon = meta.patterns[plan.pattern_ids[:, None], safe_syms].astype(np.float32)
    if apply_outliers:
        recon = recon + (
            plan.corrections.astype(np.float32)
            * np.float32(1.0 / config.correction_scale)
        )
    abs_scales = np.abs(plan.scales).astype(np.float32)
    recon = recon * abs_scales[:, None]
    rows = np.arange(plan.num_groups)
    recon[rows, plan.scale_pos] = plan.scales
    recon = recon * np.float32(2.0**meta.tensor_exp)
    flat = recon.ravel()
    if plan.pad:
        flat = flat[: -plan.pad]
    return flat.reshape(plan.shape)


def simulate_roundtrip(
    meta: TensorMeta,
    tensor: np.ndarray,
    act_weights: np.ndarray | None = None,
    apply_outliers: bool = True,
) -> SimulationResult:
    """Vectorized fast path: what the tensor decodes to, without packing."""
    plan = plan_encoding(meta, tensor, act_weights=act_weights)
    values = reconstruct(meta, plan, apply_outliers=apply_outliers)
    size = float(np.prod(plan.shape))
    return SimulationResult(
        values=values,
        clipping_ratio=float(plan.clipped_symbols.sum()) / size,
        padding_ratio=float(plan.padded_outliers.sum()) / size,
        pattern_ids=plan.pattern_ids,
    )


class EccoTensorCodec:
    """Bit-exact block codec for one tensor's shared metadata.

    The Huffman decode tables are derived from the metadata once, lazily,
    and cached on the codec instance — never rebuilt per ``decode`` call.
    """

    def __init__(self, meta: TensorMeta):
        self.meta = meta
        self._decode_tables: list | None = None
        self._window_tables: tuple | None = None

    @property
    def decode_tables(self) -> list:
        """(length, code) -> symbol dict per codebook (scalar reference)."""
        if self._decode_tables is None:
            self._decode_tables = build_decode_tables(self.meta.codebook_lengths)
        return self._decode_tables

    @property
    def window_tables(self) -> tuple:
        """Speculative-window decode tables for the vectorized path."""
        if self._window_tables is None:
            self._window_tables = build_window_tables(
                self.meta.codebook_lengths, int(self.meta.config.max_code_len)
            )
        return self._window_tables

    def encode(
        self, tensor: np.ndarray, act_weights: np.ndarray | None = None
    ) -> CompressedTensor:
        plan = plan_encoding(self.meta, tensor, act_weights=act_weights)
        return self.encode_plan(plan)

    def encode_plan(self, plan: EncodingPlan) -> CompressedTensor:
        """Serialize an already-planned tensor (all groups at once)."""
        meta = self.meta
        blocks = pack_blocks(
            meta.config,
            plan.scales,
            plan.scale_pos,
            plan.pattern_ids,
            plan.codebook_ids,
            plan.symbols,
            plan.corrections,
            meta.codebook_lengths,
            meta.codebook_codes,
        )
        size = float(np.prod(plan.shape))
        return CompressedTensor(
            blocks=blocks,
            shape=plan.shape,
            pad=plan.pad,
            clipping_ratio=float(plan.clipped_symbols.sum()) / size,
            padding_ratio=float(plan.padded_outliers.sum()) / size,
        )

    def plan_from_blocks(
        self, blocks: np.ndarray, shape: tuple, pad: int
    ) -> EncodingPlan:
        """Deserialize a block stack back into an :class:`EncodingPlan`."""
        meta = self.meta
        G = int(blocks.shape[0])
        (scales, scale_pos, pattern_ids, codebook_ids, symbols, corrections) = (
            unpack_blocks(
                meta.config,
                blocks,
                meta.codebook_lengths,
                tables=self.window_tables,
            )
        )
        return EncodingPlan(
            shape=shape,
            pad=pad,
            scales=scales,
            scale_pos=scale_pos,
            pattern_ids=pattern_ids,
            codebook_ids=codebook_ids,
            symbols=symbols,
            corrections=corrections,
            clipped_symbols=np.zeros(G, dtype=np.int64),
            padded_outliers=np.zeros(G, dtype=np.int64),
        )

    def decode(self, compressed: CompressedTensor) -> np.ndarray:
        plan = self.plan_from_blocks(
            compressed.blocks, compressed.shape, compressed.pad
        )
        return reconstruct(self.meta, plan)

    def roundtrip(
        self, tensor: np.ndarray, act_weights: np.ndarray | None = None
    ) -> np.ndarray:
        """Encode + decode through the bit-exact block path."""
        return self.decode(self.encode(tensor, act_weights=act_weights))

    def fast_roundtrip(
        self, tensor: np.ndarray, act_weights: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorized roundtrip; identical values to :meth:`roundtrip`."""
        return simulate_roundtrip(self.meta, tensor, act_weights=act_weights).values


def compress_weight(
    weight: np.ndarray,
    act_weights: np.ndarray | None = None,
    config: EccoConfig = WEIGHT_CONFIG,
    seed: int = 0,
    max_calibration_groups: int | None = 1024,
) -> tuple[CompressedTensor, TensorMeta]:
    """Calibrate on the tensor and compress it, in one call."""
    meta = fit_tensor_meta(
        weight,
        act_weights=act_weights,
        config=config,
        seed=seed,
        max_calibration_groups=max_calibration_groups,
    )
    compressed = EccoTensorCodec(meta).encode(weight, act_weights=act_weights)
    return compressed, meta


class ActivationCodec:
    """The 2x activation path: FP16 -> 8-bit codes in fixed-size blocks.

    Activations keep their outliers through the same scale-slot trick as
    the 4x path but skip the Huffman stage: each group stores a signed fp16
    scale, the scale position, and an 8-bit code per remaining value.
    """

    def __init__(self, group_size: int = 128):
        self.group_size = group_size

    @property
    def compression_ratio(self) -> float:
        # (fp16 bytes) / (codes + fp16 scale + position byte)
        return (self.group_size * 2) / (self.group_size + 3)

    def roundtrip(self, tensor: np.ndarray) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float32)
        groups, pad = to_groups(tensor, self.group_size)
        absmax_pos = np.argmax(np.abs(groups), axis=1)
        rows = np.arange(groups.shape[0])
        scales = np.float16(groups[rows, absmax_pos]).astype(np.float32)
        safe = np.where(np.abs(scales) > 0, np.abs(scales), np.float32(1.0))
        q = np.clip(np.rint(groups / safe[:, None] * 127.0), -127, 127)
        recon = (q.astype(np.float32) / np.float32(127.0)) * safe[:, None]
        recon[rows, absmax_pos] = scales
        flat = recon.ravel()
        if pad:
            flat = flat[:-pad]
        return flat.reshape(tensor.shape)
