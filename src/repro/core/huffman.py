"""Length-limited canonical Huffman codes.

The hardware decodes with fixed 8-bit speculative windows, so code lengths
are capped at ``max_len`` bits.  Lengths come from the package-merge
algorithm (optimal under a length limit); codes are assigned canonically so
a table of (length, first-code, symbol-order) fully describes a codebook.
"""

from __future__ import annotations

import numpy as np

__all__ = ["limited_code_lengths", "canonical_codes", "kraft_sum"]


def limited_code_lengths(counts: np.ndarray, max_len: int) -> np.ndarray:
    """Optimal code lengths (package-merge) for ``counts`` capped at max_len."""
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.size
    active = np.flatnonzero(counts > 0)
    if active.size == 0:
        # Degenerate: no observed symbols; emit a flat fixed-length code.
        lengths = np.full(n, int(np.ceil(np.log2(max(n, 2)))), dtype=np.uint8)
        return lengths
    if active.size == 1:
        # Unused symbols still get (maximal-length) codes so any input
        # stays encodable: 1/2 + (n-1)/2^max_len <= 1 for n <= 2^(L-1).
        lengths = np.full(n, max_len, dtype=np.uint8)
        lengths[active[0]] = 1
        if kraft_sum(lengths) > 1.0:
            raise ValueError(f"cannot code {n} symbols in {max_len} bits")
        return lengths
    if (1 << max_len) < active.size:
        raise ValueError(f"cannot code {active.size} symbols in {max_len} bits")

    # Package-merge over the active symbols.
    weights = counts[active]
    lengths_active = np.zeros(active.size, dtype=np.int64)
    items = sorted((float(w), i) for i, w in enumerate(weights))
    packages: list[list[tuple[float, tuple[int, ...]]]] = []
    level = [(w, (i,)) for w, i in items]
    for _ in range(max_len):
        packages.append(level)
        merged = []
        for a in range(0, len(level) - 1, 2):
            w = level[a][0] + level[a + 1][0]
            syms = level[a][1] + level[a + 1][1]
            merged.append((w, syms))
        level = sorted(merged + [(w, (i,)) for w, i in items])
    # Take the 2(m-1) cheapest items from the deepest level.
    take = 2 * (active.size - 1)
    for w, syms in packages[-1][:take]:
        for s in syms:
            lengths_active[s] += 1
    lengths = np.zeros(n, dtype=np.uint8)
    lengths[active] = lengths_active
    # Unused symbols still get a (maximal-length) code so any input stays
    # encodable; extend Kraft-feasibly.
    unused = np.flatnonzero(counts <= 0)
    if unused.size:
        slack = 1.0 - kraft_sum(lengths)
        per = slack / unused.size
        if per >= 2.0 ** -max_len:
            lengths[unused] = max_len
        else:
            # Make room: push the most frequent... cheapest fix is to
            # recompute with +1 smoothing, which keeps every code valid.
            return limited_code_lengths(np.maximum(counts, 1e-9), max_len)
    assert kraft_sum(lengths) <= 1.0 + 1e-12
    return lengths


def kraft_sum(lengths: np.ndarray) -> float:
    lengths = np.asarray(lengths)
    used = lengths[lengths > 0].astype(np.float64)
    return float(np.sum(2.0 ** -used))


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values for ``lengths`` (0 for unused symbols)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    order = sorted((int(l), s) for s, l in enumerate(lengths) if l > 0)
    codes = np.zeros(lengths.size, dtype=np.uint32)
    code = 0
    prev_len = order[0][0] if order else 0
    for length, sym in order:
        code <<= length - prev_len
        prev_len = length
        codes[sym] = code
        code += 1
    return codes
