"""Pipeline budgets of the four codec units (paper §4-5.2).

The decompressor sits between L2 and the SMs; 20 replicated instances at
256 bytes/cycle each match the A100 L2's 5120 bytes/cycle.  The 4x
decompressor's 28-cycle latency comes from the speculative parallel
Huffman decode + merge tree; the 4x compressor's 62 cycles are dominated
by the 128-input bitonic sorter feeding the min/max pattern selector.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PipelineSpec",
    "decompressor_4x_pipeline",
    "decompressor_2x_pipeline",
    "compressor_4x_pipeline",
    "compressor_2x_pipeline",
    "SequentialDecoderModel",
    "latency_reduction_vs_parallel",
]

#: Replication factor chosen to match the L2 boundary bandwidth.
NUM_INSTANCES = 20

#: Uncompressed bytes each instance moves per cycle when pipelined.
BYTES_PER_CYCLE_PER_INSTANCE = 256


@dataclass(frozen=True)
class PipelineSpec:
    """Latency/throughput budget of one replicated codec unit."""

    name: str
    stages: tuple  # (stage name, cycles) pairs
    instances: int = NUM_INSTANCES
    per_instance_bytes_per_cycle: int = BYTES_PER_CYCLE_PER_INSTANCE

    @property
    def latency_cycles(self) -> int:
        return sum(cycles for _, cycles in self.stages)

    @property
    def throughput_bytes_per_cycle(self) -> float:
        """Aggregate sustained throughput across all instances."""
        return float(self.instances * self.per_instance_bytes_per_cycle)

    def matches_cache_bandwidth(self, cache_bytes_per_cycle: float) -> bool:
        return self.throughput_bytes_per_cycle >= cache_bytes_per_cycle


def decompressor_4x_pipeline() -> PipelineSpec:
    """The 4x (weights/KV) decompressor: speculative decode + merge."""
    return PipelineSpec(
        name="Decompressor 4x",
        stages=(
            ("window fetch", 2),
            ("speculative sub-decode", 8),
            ("merge tree", 6),
            ("pattern lookup", 3),
            ("outlier apply", 4),
            ("dequant multiply", 3),
            ("writeback", 2),
        ),
    )


def decompressor_2x_pipeline() -> PipelineSpec:
    """The 2x (activation) decompressor: fixed 8-bit codes, no Huffman."""
    return PipelineSpec(
        name="Decompressor 2x",
        stages=(
            ("window fetch", 2),
            ("code unpack", 2),
            ("dequant multiply", 3),
            ("writeback", 2),
        ),
    )


def compressor_4x_pipeline() -> PipelineSpec:
    """The 4x compressor: bitonic sort, pattern fit, 4 parallel encoders."""
    return PipelineSpec(
        name="Compressor 4x",
        stages=(
            ("bitonic sort (128 x 28)", 28),
            ("pattern fitness", 4),
            ("parallel encode", 16),
            ("outlier pick", 4),
            ("bit pack", 8),
            ("writeback", 2),
        ),
    )


def compressor_2x_pipeline() -> PipelineSpec:
    """The 2x compressor: absmax scan + fixed-width quantize."""
    return PipelineSpec(
        name="Compressor 2x",
        stages=(
            ("absmax scan", 7),
            ("quantize", 4),
            ("bit pack", 4),
            ("writeback", 2),
        ),
    )


@dataclass(frozen=True)
class SequentialDecoderModel:
    """A traditional bit-serial Huffman decoder, for comparison (§5.2).

    One symbol resolves per code bit, so a 512-bit block costs ~512 cycles
    and the unit sustains only 64 B / 512 cycles — the design the paper's
    two-orders-of-magnitude claim is measured against.
    """

    block_bits: int = 512
    block_bytes: int = 64

    @property
    def block_latency_cycles(self) -> int:
        return self.block_bits

    @property
    def bytes_per_cycle(self) -> float:
        return self.block_bytes / self.block_latency_cycles

    def instances_for_bandwidth(self, cache_bytes_per_cycle: float) -> int:
        import math

        return math.ceil(cache_bytes_per_cycle / self.bytes_per_cycle)


def latency_reduction_vs_parallel(queue_depth: int) -> float:
    """Average-latency ratio, sequential vs parallel, for a request burst.

    A burst of ``queue_depth`` blocks arrives at once.  The sequential
    decoder drains them one 512-cycle block at a time; the parallel design
    pipelines 4 blocks/cycle per instance behind its 28-cycle latency.
    """
    sequential = SequentialDecoderModel()
    seq_avg = (queue_depth + 1) / 2.0 * sequential.block_latency_cycles
    parallel_pipe = decompressor_4x_pipeline()
    blocks_per_cycle = parallel_pipe.per_instance_bytes_per_cycle / 64.0
    par_avg = parallel_pipe.latency_cycles + (queue_depth / blocks_per_cycle) / 2.0
    return seq_avg / par_avg
