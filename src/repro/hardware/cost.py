"""Area/power model of the codec units (paper Table 3).

A gate-inventory estimate: each unit is a kilo-gate count built up from its
datapath blocks, scaled by a 7nm standard-cell area constant and a
per-unit switching-activity factor.  Twenty instances of each unit sit at
the L2 boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pipelines import NUM_INSTANCES

__all__ = ["EccoCostModel", "ComponentCost"]

#: Effective 7nm standard-cell footprint, routing included (mm^2 per gate).
AREA_PER_GATE_MM2 = 0.36e-6

#: Dynamic + leakage power per gate at the A100's ~1.4 GHz (W per gate at
#: activity 1.0).
POWER_PER_GATE_W = 0.92e-6

#: A100 reference envelope.
A100_DIE_MM2 = 826.0
A100_IDLE_W = 82.0


@dataclass
class ComponentCost:
    name: str
    kilo_gates: float  # per instance
    activity: float  # switching activity factor
    instances: int = NUM_INSTANCES

    @property
    def area_mm2(self) -> float:
        return self.instances * self.kilo_gates * 1e3 * AREA_PER_GATE_MM2

    @property
    def power_w(self) -> float:
        return (
            self.instances
            * self.kilo_gates
            * 1e3
            * POWER_PER_GATE_W
            * self.activity
        )

    def area_ratio(self, die_mm2: float = A100_DIE_MM2) -> float:
        return self.area_mm2 / die_mm2


class EccoCostModel:
    """Gate inventory for the four units (20 instances each)."""

    def __init__(self):
        self._components = [
            # 512 speculative sub-decoders (~560 gates each) + the 64-wide
            # merge tree + pattern/outlier/dequant datapath.
            ComponentCost("Decompressor 4x", kilo_gates=443.0, activity=0.59),
            # Fixed-width unpack + dequant only.
            ComponentCost("Decompressor 2x", kilo_gates=79.0, activity=0.57),
            # 128-input bitonic sorter (~2.8k comparators) + 4 parallel
            # encoders + packer.
            ComponentCost("Compressor 4x", kilo_gates=126.0, activity=0.50),
            # Absmax scan + quantizer.
            ComponentCost("Compressor 2x", kilo_gates=61.0, activity=0.50),
        ]

    def components(self) -> list[ComponentCost]:
        return list(self._components)

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self._components)

    @property
    def total_power_w(self) -> float:
        return sum(c.power_w for c in self._components)

    def area_fraction_of_a100(self) -> float:
        return self.total_area_mm2 / A100_DIE_MM2

    def power_fraction_of_idle(self) -> float:
        return self.total_power_w / A100_IDLE_W
