"""Systems layer: microarchitectural models of the codec units."""

from .cost import ComponentCost, EccoCostModel
from .functional import (
    CompressedBlock,
    CompressorOutput,
    DecodedBlock,
    HardwareCompressor,
    ParallelHuffmanDecoder,
)
from .pipelines import (
    PipelineSpec,
    SequentialDecoderModel,
    compressor_2x_pipeline,
    compressor_4x_pipeline,
    decompressor_2x_pipeline,
    decompressor_4x_pipeline,
    latency_reduction_vs_parallel,
)

__all__ = [
    "ComponentCost",
    "CompressedBlock",
    "CompressorOutput",
    "DecodedBlock",
    "EccoCostModel",
    "HardwareCompressor",
    "ParallelHuffmanDecoder",
    "PipelineSpec",
    "SequentialDecoderModel",
    "compressor_2x_pipeline",
    "compressor_4x_pipeline",
    "decompressor_2x_pipeline",
    "decompressor_4x_pipeline",
    "latency_reduction_vs_parallel",
]
