"""Bit-exact functional models of the compressor and decompressor units.

These wrap the software codec's planning/packing passes with the counters a
microarchitect cares about (comparators fired, speculative sub-decodes,
merge operations), so the walkthrough example can show the Section 4 view
while staying bit-identical to :class:`repro.core.EccoTensorCodec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import pack_block, unpack_block
from repro.core.codec import EncodingPlan, plan_encoding, reconstruct
from repro.core.patterns import SCALE_SYMBOL, TensorMeta, select_patterns_minmax
from repro.core.grouping import normalize_groups

__all__ = ["HardwareCompressor", "ParallelHuffmanDecoder", "CompressedBlock",
           "CompressorOutput", "DecodedBlock"]

#: 128-input bitonic sorting network: 28 stages of 64 comparators.
BITONIC_STAGES = 28
BITONIC_COMPARATORS_PER_STAGE = 64

#: Speculative decode: 64 window starts, 8 candidate bit offsets each.
SPECULATIVE_WINDOWS = 64
SPECULATIVE_OFFSETS = 8


@dataclass
class CompressedBlock:
    """One packed 64-byte block plus its header fields."""

    data: bytes
    pattern_id: int
    codebook_id: int
    padded_outliers: int
    clipped_symbols: int


@dataclass
class CompressorOutput:
    """What the compressor datapath exposes for one group."""

    block: CompressedBlock
    comparators_used: int
    pattern_fitness: np.ndarray  # (num_patterns,) lower wins
    encoder_lengths: np.ndarray  # payload bits under each parallel encoder


@dataclass
class DecodedBlock:
    """What the decompressor datapath recovers from one block."""

    values: np.ndarray
    symbols_decoded: int
    outliers_applied: int
    sub_decodes_performed: int
    merge_operations: int


class HardwareCompressor:
    """The online 4x compressor: min/max selection, 4 parallel encoders."""

    def __init__(self, meta: TensorMeta):
        self.meta = meta

    def encode_group(self, group: np.ndarray) -> CompressorOutput:
        meta = self.meta
        config = meta.config
        group = np.asarray(group, dtype=np.float32).reshape(1, -1)
        if group.shape[1] != config.group_size:
            raise ValueError(
                f"hardware compressor takes one {config.group_size}-value group"
            )

        # The selector's view: fitness of every pattern from the sorter's
        # min/max outputs (the full plan recomputes this identically).
        norm = normalize_groups(group, meta.tensor_exp, config)
        _, _, fitness = select_patterns_minmax(
            norm.normalized, norm.absmax_pos, meta.patterns
        )

        plan = plan_encoding(meta, group.ravel())
        coded = plan.symbols[0] != SCALE_SYMBOL
        safe = np.where(coded, plan.symbols[0], 0)
        lengths = meta.codebook_lengths.astype(np.int64)
        encoder_lengths = (lengths[:, safe] * coded[None, :]).sum(axis=1)

        out_pos = np.flatnonzero(plan.corrections[0])
        data = pack_block(
            config,
            plan.scales[0],
            int(plan.scale_pos[0]),
            int(plan.pattern_ids[0]),
            int(plan.codebook_ids[0]),
            plan.symbols[0],
            meta.codebook_lengths[plan.codebook_ids[0]],
            meta.codebook_codes[plan.codebook_ids[0]],
            out_pos,
            plan.corrections[0, out_pos],
        )
        block = CompressedBlock(
            data=data,
            pattern_id=int(plan.pattern_ids[0]),
            codebook_id=int(plan.codebook_ids[0]),
            padded_outliers=int(plan.padded_outliers[0]),
            clipped_symbols=int(plan.clipped_symbols[0]),
        )
        return CompressorOutput(
            block=block,
            comparators_used=BITONIC_STAGES * BITONIC_COMPARATORS_PER_STAGE,
            pattern_fitness=fitness[0],
            encoder_lengths=encoder_lengths,
        )


class ParallelHuffmanDecoder:
    """The speculative parallel Huffman decoder (paper Fig. 8).

    Functionally it is the block unpacker; the counters describe the
    hardware schedule: every 8-bit window is decoded at all candidate bit
    offsets in parallel, then a binary merge tree keeps the consistent
    chain.
    """

    def __init__(self, meta: TensorMeta):
        self.meta = meta

    def decode(self, data: bytes) -> DecodedBlock:
        meta = self.meta
        config = meta.config
        scale, pos, pid, cid, symbols, out_pos, out_q = unpack_block(
            config, bytes(data), meta.codebook_lengths
        )
        corrections = np.zeros((1, config.group_size), dtype=np.int64)
        corrections[0, out_pos] = out_q
        plan = EncodingPlan(
            shape=(config.group_size,),
            pad=0,
            scales=np.array([scale], dtype=np.float32),
            scale_pos=np.array([pos], dtype=np.int64),
            pattern_ids=np.array([pid], dtype=np.int64),
            codebook_ids=np.array([cid], dtype=np.int64),
            symbols=symbols.reshape(1, -1),
            corrections=corrections,
            clipped_symbols=np.zeros(1, dtype=np.int64),
            padded_outliers=np.zeros(1, dtype=np.int64),
        )
        values = reconstruct(meta, plan)
        return DecodedBlock(
            values=values,
            symbols_decoded=int(symbols.size),
            outliers_applied=int(out_pos.size),
            sub_decodes_performed=SPECULATIVE_WINDOWS * SPECULATIVE_OFFSETS,
            merge_operations=SPECULATIVE_WINDOWS - 1,
        )
