"""Memory-system models: GPU parameters, GEMM traffic, decompressor queueing.

Three pieces back the paper's system-level figures:

* :data:`A100` — the device parameters every model shares;
* :func:`gemm_traffic` — sector-level traffic of a decode GEMM under a
  quantization format (Figure 13);
* :func:`normalized_slowdown` — a limited-MLP queueing simulation of the
  L2-side decompressor (Figure 14 sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["A100", "GPUParams", "MemoryTraffic", "WorkloadConfig",
           "gemm_traffic", "normalized_slowdown"]


@dataclass(frozen=True)
class GPUParams:
    """Device constants used across the performance models."""

    name: str
    hbm_bandwidth: float  # bytes/s
    fp16_flops: float  # dense FP16 FLOP/s (tensor cores)
    l2_bytes_per_cycle: int  # aggregate L2 bandwidth at the boundary
    sector_bytes: int  # DRAM/L2 sector granularity
    clock_hz: float
    die_area_mm2: float
    idle_power_w: float


#: NVIDIA A100-80GB (SXM): the paper's evaluation platform.
A100 = GPUParams(
    name="A100-80GB",
    hbm_bandwidth=2.039e12,
    fp16_flops=312e12,
    l2_bytes_per_cycle=5120,
    sector_bytes=32,
    clock_hz=1.41e9,
    die_area_mm2=826.0,
    idle_power_w=82.0,
)


@dataclass
class MemoryTraffic:
    """Sector counts for one GEMM's operand streams."""

    weight_sectors: float
    act_sectors: float
    out_sectors: float
    metadata_sectors: float

    @property
    def total_sectors(self) -> float:
        return (
            self.weight_sectors
            + self.act_sectors
            + self.out_sectors
            + self.metadata_sectors
        )


#: Separate metadata streams (AWQ-style scales/zeros) are fetched through
#: small, poorly coalesced accesses; each useful byte drags in a mostly
#: empty sector.  Factor calibrated against the paper's Figure 13 AWQ bar.
_METADATA_INFLATION = 4.0


def gemm_traffic(
    m: int,
    k: int,
    n: int,
    weight_bits: float,
    act_bits: float = 16.0,
    out_bits: float = 16.0,
    separate_metadata_bits: float = 0.0,
    group_size: int = 128,
    gpu: GPUParams = A100,
) -> MemoryTraffic:
    """Traffic of an (m x k) @ (k x n) GEMM in 32-byte sectors.

    ``weight_bits`` counts everything that travels inline with the weights
    (Ecco's blocks carry their metadata inside the 4 bits/value budget);
    ``separate_metadata_bits`` is per-group side-channel data (AWQ scales
    and zero points), inflated by the irregular-access factor.
    """
    sector = gpu.sector_bytes
    weight_bytes = k * n * weight_bits / 8.0
    act_bytes = m * k * act_bits / 8.0
    out_bytes = m * n * out_bits / 8.0
    metadata_bytes = (k * n / group_size) * separate_metadata_bits / 8.0
    return MemoryTraffic(
        weight_sectors=np.ceil(weight_bytes / sector),
        act_sectors=np.ceil(act_bytes / sector),
        out_sectors=np.ceil(out_bytes / sector),
        metadata_sectors=np.ceil(metadata_bytes / sector) * _METADATA_INFLATION,
    )


@dataclass(frozen=True)
class WorkloadConfig:
    """A stream of L2 miss requests hitting the decompressor.

    ``l2_utilization`` is the fraction of the L2's bandwidth the
    uncompressed workload keeps busy (LLM decode kernels hover a little
    above half); ``mlp_window`` is how many requests the SMs keep in
    flight, which is what hides decompressor latency.
    """

    num_requests: int = 40000
    mlp_window: int = 128
    l2_utilization: float = 0.55
    seed: int = 0


def _makespan(
    arrivals: np.ndarray, service: float, latency: float, window: int
) -> float:
    """Completion time of the request stream through one pipelined unit."""
    n = arrivals.size
    completion = np.zeros(n)
    prev_start = -np.inf
    for i in range(n):
        issue = arrivals[i]
        if i >= window:
            issue = max(issue, completion[i - window])
        start = max(issue, prev_start + service)
        completion[i] = start + service + latency
        prev_start = start
    return float(completion[-1] - arrivals[0])


_BASELINE_CACHE: dict = {}


def _baseline(workload: WorkloadConfig) -> tuple:
    """Seeded arrival trace + baseline makespan, computed once per config."""
    cached = _BASELINE_CACHE.get(workload)
    if cached is None:
        rng = np.random.default_rng(workload.seed)
        mean_gap = 1.0 / workload.l2_utilization
        arrivals = np.cumsum(
            rng.exponential(mean_gap, size=workload.num_requests)
        )
        base = _makespan(arrivals, 1.0, 0.0, workload.mlp_window)
        cached = (arrivals, base)
        _BASELINE_CACHE[workload] = cached
    return cached


def normalized_slowdown(
    throughput_fraction: float,
    latency_cycles: float,
    workload: WorkloadConfig = WorkloadConfig(),
) -> float:
    """Workload slowdown for a decompressor at a fraction of L2 bandwidth.

    The same seeded arrival trace is replayed against the baseline (L2 at
    full bandwidth, no added latency) and the decompressor-limited unit, so
    sweeps are deterministic and monotone.
    """
    arrivals, base = _baseline(workload)
    limited = _makespan(
        arrivals, 1.0 / throughput_fraction, latency_cycles, workload.mlp_window
    )
    return limited / base
