"""End-to-end decode performance and memory models (Figures 3, 11, 12).

A roofline-style model of one autoregressive decode step on the A100:
projection time is weight-traffic-bound, attention time is KV-traffic
bound, and each framework adds its own runtime overhead (dequantization
kernels, online rotation/requantization, per-layer launch cost).  The
constants are calibrated against the paper's measured figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .llm.config import ModelSpec
from .memsys import A100, GPUParams
from .obs.timing import WallTimer

__all__ = [
    "FrameworkModel",
    "FRAMEWORKS",
    "DecodeLatency",
    "MemoryFootprint",
    "decode_step_latency",
    "memory_footprint",
    "speedup_table",
    "sw_stream_throughput",
]


@dataclass(frozen=True)
class FrameworkModel:
    """Storage formats + runtime overhead profile of a serving framework."""

    name: str
    weight_bits: float  # bits/weight including inline metadata
    act_bits: float
    kv_bits: float  # bits/KV element including inline metadata
    dequant_rate: float = 0.0  # weight elements/s of dequant kernels (0 = free)
    kv_requant_rate: float = 0.0  # KV elements/s of online (re)quantization
    extra_per_layer_s: float = 0.0  # unfused-kernel overhead per layer


FRAMEWORKS = {
    # TensorRT-LLM FP16: the reference; no format overheads.
    "trt-fp16": FrameworkModel("trt-fp16", 16.0, 16.0, 16.0),
    # OliVe W4: outlier-victim pairs decode serially; FP16 KV cache.
    "olive": FrameworkModel("olive", 4.5, 8.0, 16.0, dequant_rate=4e12),
    # SmoothQuant W8A8: cheap dequant, 8-bit KV.
    "smoothquant": FrameworkModel(
        "smoothquant", 8.0, 8.0, 8.0, extra_per_layer_s=5e-6
    ),
    # AWQ W4: group scales/zeros in separate streams; FP16 KV cache.
    "awq": FrameworkModel("awq", 4.25, 16.0, 16.0, dequant_rate=8e12),
    # QuaRot W4A4KV4: large measured runtime rotation/requant overhead
    # (Figure 3: decode at ~0.6x the FP16 speed).
    "quarot": FrameworkModel(
        "quarot", 4.25, 8.0, 4.25, dequant_rate=0.7e12, kv_requant_rate=1.67e12
    ),
    # Ecco: in-block metadata, hardware codec hidden behind the L2.
    "ecco": FrameworkModel("ecco", 4.0, 8.0, 4.0, extra_per_layer_s=1.5e-6),
}

#: Per-layer fixed step cost every framework pays (launches, norms,
#: sampling, synchronization) — the floor that keeps real decode speedups
#: below the raw bandwidth ratio.
FIXED_PER_LAYER_S = 62.5e-6


@dataclass
class DecodeLatency:
    """One decode step, broken down the way Figure 11 attributes it."""

    projection_s: float
    attention_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.projection_s + self.attention_s + self.overhead_s


def _framework(name: str) -> FrameworkModel:
    try:
        return FRAMEWORKS[name]
    except KeyError:
        raise KeyError(
            f"unknown framework {name!r}; known: {sorted(FRAMEWORKS)}"
        ) from None


def decode_step_latency(
    spec: ModelSpec,
    framework: str,
    batch: int,
    seq: int,
    gpu: GPUParams = A100,
) -> DecodeLatency:
    """Latency of one decode step for ``batch`` sequences at context ``seq``."""
    fw = _framework(framework)

    # Projections: stream every weight once; compute rarely binds at decode
    # batch sizes but the roofline keeps large batches honest.
    weight_bytes = spec.num_params * fw.weight_bits / 8.0
    act_bytes = batch * spec.d_model * spec.num_layers * 6 * fw.act_bits / 8.0
    proj_flops = 2.0 * spec.num_params * batch
    projection_s = max(
        (weight_bytes + act_bytes) / gpu.hbm_bandwidth, proj_flops / gpu.fp16_flops
    )

    # Attention: read the whole KV cache once per step.
    kv_elements = batch * seq * 2 * spec.num_layers * spec.kv_dim
    kv_bytes = kv_elements * fw.kv_bits / 8.0
    attn_flops = 4.0 * batch * seq * spec.d_model * spec.num_layers
    attention_s = max(kv_bytes / gpu.hbm_bandwidth, attn_flops / gpu.fp16_flops)

    overhead_s = spec.num_layers * (FIXED_PER_LAYER_S + fw.extra_per_layer_s)
    if fw.dequant_rate > 0:
        overhead_s += spec.num_params / fw.dequant_rate
    if fw.kv_requant_rate > 0:
        overhead_s += kv_elements / fw.kv_requant_rate

    return DecodeLatency(
        projection_s=projection_s,
        attention_s=attention_s,
        overhead_s=overhead_s,
    )


@dataclass
class MemoryFootprint:
    """Resident GPU memory of weights + KV cache under a framework."""

    weights_bytes: float
    kv_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weights_bytes + self.kv_bytes

    @property
    def total_gb(self) -> float:
        return self.total_bytes / 1e9


def memory_footprint(
    spec: ModelSpec, framework: str, batch: int, seq: int
) -> MemoryFootprint:
    """GPU memory for ``batch`` sequences of length ``seq`` (Figure 12)."""
    fw = _framework(framework)
    weights_bytes = spec.num_params * fw.weight_bits / 8.0
    kv_bytes = batch * seq * spec.kv_bytes_per_token_fp16 * fw.kv_bits / 16.0
    return MemoryFootprint(weights_bytes=weights_bytes, kv_bytes=kv_bytes)


def sw_stream_throughput(
    head_dim: int = 128,
    prefill: int = 32,
    decode_steps: int = 64,
    seed: int = 0,
) -> dict:
    """Measured tokens/s of the *software* KV streaming decode loop.

    The hardware models above are analytic; this helper times the actual
    reference implementation — calibrate the online library, prefill the
    stream, then run ``decode_steps`` iterations of append-one-token +
    read-back (what attention does every step).  With the decoded-segment
    cache each step decodes only the new token, so the loop is O(steps);
    the returned dict feeds the throughput benchmark and the README.
    """
    import numpy as np

    from .core import KVCacheCodec, KVCacheStream, calibrate_kv_meta

    rng = np.random.default_rng(seed)
    scales = np.exp(rng.normal(0.0, 1.2, size=head_dim))
    calibration = rng.standard_normal((512, head_dim)) * scales * 0.3
    meta = calibrate_kv_meta(calibration, seed=seed)
    codec = KVCacheCodec(meta)
    stream = KVCacheStream(key_codec=codec, value_codec=codec)
    tokens = (rng.standard_normal((prefill + decode_steps, head_dim)) * scales * 0.3
              ).astype(np.float32)

    prefill_timer = WallTimer()
    with prefill_timer:
        stream.append_tokens(tokens[:prefill], tokens[:prefill])
        stream.read_keys()
        stream.read_values()
    prefill_s = prefill_timer.elapsed_s

    decode_timer = WallTimer()
    with decode_timer:
        for step in range(prefill, prefill + decode_steps):
            stream.append(tokens[step], tokens[step])
            stream.read_keys()
            stream.read_values()
    decode_s = decode_timer.elapsed_s

    return {
        "head_dim": head_dim,
        "prefill_tokens": prefill,
        "decode_steps": decode_steps,
        "prefill_tokens_per_s": prefill / max(prefill_s, 1e-9),
        "decode_tokens_per_s": decode_steps / max(decode_s, 1e-9),
        "decoded_tokens": dict(stream.decoded_tokens),
        "compression_ratio": stream.compression_ratio,
    }


def speedup_table(
    spec: ModelSpec,
    baselines: list[str],
    batch: int,
    seq: int,
    gpu: GPUParams = A100,
) -> dict[str, float]:
    """Ecco's decode speedup over each baseline framework."""
    ecco = decode_step_latency(spec, "ecco", batch, seq, gpu=gpu).total_s
    return {
        name: decode_step_latency(spec, name, batch, seq, gpu=gpu).total_s / ecco
        for name in baselines
    }
