"""Reproducible trace-driven workloads for the serving engine.

Three layers, all seeded and deterministic:

* **Arrival processes** — request timestamps over a window: homogeneous
  Poisson, bursty (a two-state on/off modulated Poisson, the classic
  MMPP-2 shape of production traffic spikes), and diurnal (a sinusoidal
  rate thinned from a Poisson majorant, a day compressed into however
  many seconds the simulation affords).
* **Scenario generators** — what each request looks like: ``chat``
  (one short shared system prompt + a unique turn), ``rag`` (one of a
  few *long* shared system prompts — the retrieval corpus preamble —
  plus a unique query; this is what stresses the prefix cache and,
  unchunked, stalls the batch), and ``agent`` (tool-use loops: the same
  conversation resubmitted with its context grown every iteration, so
  consecutive requests share ever-longer page-aligned prefixes).
* **Replay** — :func:`replay_trace` drives an engine (or cluster) on a
  :class:`VirtualClock`: requests are submitted when the simulated time
  reaches their arrival, and each engine step advances the clock by a
  :class:`StepCostModel` charge — a compute-vs-bandwidth roofline over
  the step's token and KV-read composition.  Latency metrics (TTFT,
  e2e) therefore come out in deterministic simulated seconds — a long
  unchunked prefill makes its step *cost more time* than the decode
  batch's bandwidth lane would have, which is exactly the stall the
  chunked-prefill path exists to remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import MirroredCounters

from .pool import BudgetExceededError

__all__ = [
    "RetryPolicy",
    "SessionTrace",
    "SessionTurn",
    "SessionWorkloadConfig",
    "StepCostModel",
    "TraceRequest",
    "VirtualClock",
    "WorkloadConfig",
    "bursty_arrivals",
    "diurnal_arrivals",
    "generate_sessions",
    "generate_trace",
    "poisson_arrivals",
    "replay_open_loop",
    "replay_trace",
]


# ----------------------------------------------------------------------
# Arrival processes.
# ----------------------------------------------------------------------

def poisson_arrivals(
    rate_rps: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrivals: exponential inter-arrival gaps."""
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate_rps and duration_s must be positive")
    # Draw enough gaps to overshoot the window, then clip.
    expect = max(8, int(rate_rps * duration_s * 2 + 16))
    gaps = rng.exponential(1.0 / rate_rps, size=expect)
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration_s:
        more = np.cumsum(rng.exponential(1.0 / rate_rps, size=expect))
        times = np.concatenate([times, times[-1] + more])
    return times[times < duration_s]


def bursty_arrivals(
    base_rps: float,
    burst_rps: float,
    duration_s: float,
    rng: np.random.Generator,
    mean_on_s: float = 2.0,
    mean_off_s: float = 6.0,
) -> np.ndarray:
    """Two-state modulated Poisson: calm at ``base_rps``, bursts at
    ``burst_rps`` during exponentially-distributed on-periods."""
    if burst_rps < base_rps:
        raise ValueError("burst_rps must be >= base_rps")
    times: list[np.ndarray] = []
    t = 0.0
    on = False
    while t < duration_s:
        hold = rng.exponential(mean_on_s if on else mean_off_s)
        hold = min(hold, duration_s - t)
        rate = burst_rps if on else base_rps
        if hold > 0 and rate > 0:
            seg = poisson_arrivals(rate, hold, rng)
            times.append(t + seg)
        t += hold
        on = not on
    if not times:
        return np.zeros(0)
    return np.sort(np.concatenate(times))


def diurnal_arrivals(
    mean_rps: float,
    duration_s: float,
    rng: np.random.Generator,
    period_s: float | None = None,
    amplitude: float = 0.8,
) -> np.ndarray:
    """Sinusoidal-rate Poisson arrivals via thinning: one "day" of
    traffic (peak at mid-period) compressed into ``duration_s``."""
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be in [0, 1]")
    period = duration_s if period_s is None else period_s
    peak = mean_rps * (1.0 + amplitude)
    majorant = poisson_arrivals(peak, duration_s, rng)
    phase = 2.0 * np.pi * majorant / period
    rate = mean_rps * (1.0 - amplitude * np.cos(phase))
    keep = rng.uniform(0.0, peak, size=majorant.size) < rate
    return majorant[keep]


_ARRIVALS = {
    "poisson": lambda cfg, rng: poisson_arrivals(
        cfg.rate_rps, cfg.duration_s, rng
    ),
    "bursty": lambda cfg, rng: bursty_arrivals(
        cfg.rate_rps * 0.25, cfg.rate_rps * 3.0, cfg.duration_s, rng
    ),
    "diurnal": lambda cfg, rng: diurnal_arrivals(
        cfg.rate_rps, cfg.duration_s, rng
    ),
}


# ----------------------------------------------------------------------
# Scenarios.
# ----------------------------------------------------------------------

@dataclass
class TraceRequest:
    """One arrival in a workload trace."""

    arrival_s: float
    prompt: np.ndarray
    max_new_tokens: int
    scenario: str = "chat"
    #: Optional serving annotations: the tenant the request bills to and
    #: its latency objectives (``repro.serve.slo.SLO``).  ``None`` means
    #: default tenant / no deadline; the generators leave them unset and
    #: benchmarks decorate the trace afterwards.
    tenant: str | None = None
    slo: object | None = None


@dataclass
class WorkloadConfig:
    """Knobs for one generated trace.

    Lengths are lognormal (the empirically heavy-tailed shape of chat
    prompts/replies), clipped to ``[min, max]``; shared-prefix lengths
    are rounded to page multiples by the generator so sharing actually
    lands on page boundaries.
    """

    duration_s: float = 30.0
    rate_rps: float = 1.0
    arrivals: str = "poisson"          # poisson | bursty | diurnal
    mix: dict = field(
        default_factory=lambda: {"chat": 0.6, "rag": 0.25, "agent": 0.15}
    )
    vocab_size: int = 64
    page_tokens: int = 8
    # chat: short shared system prompt + unique turn.
    chat_system_pages: int = 1
    chat_turn_mean: float = 12.0
    chat_turn_sigma: float = 0.5
    # rag: few long shared corpus preambles + unique query.
    rag_corpora: int = 2
    rag_system_pages: int = 6
    rag_query_mean: float = 10.0
    rag_query_sigma: float = 0.4
    # agent: conversations that grow by one tool-loop iteration each
    # resubmission (consecutive iterations share the whole prefix).
    agent_loops: int = 4
    agent_seed_pages: int = 2
    agent_growth_pages: int = 1
    # decode lengths.
    output_mean: float = 8.0
    output_sigma: float = 0.5
    min_tokens: int = 2
    max_tokens: int = 64


def _lognormal_int(
    rng: np.random.Generator, mean: float, sigma: float, lo: int, hi: int
) -> int:
    draw = rng.lognormal(np.log(max(mean, 1.0)), sigma)
    return int(np.clip(round(draw), lo, hi))


def _tokens(rng: np.random.Generator, n: int, vocab: int) -> np.ndarray:
    return rng.integers(0, vocab, size=n, dtype=np.int64)


def generate_trace(
    config: WorkloadConfig | None = None, seed: int = 0, **overrides
) -> list[TraceRequest]:
    """A reproducible request trace: arrivals x scenario mix.

    ``overrides`` patch individual :class:`WorkloadConfig` fields, so
    ``generate_trace(seed=1, arrivals="bursty", rate_rps=4.0)`` works
    without building a config by hand.  The same (config, seed) pair
    always yields the identical trace.
    """
    if config is None:
        config = WorkloadConfig()
    if overrides:
        config = WorkloadConfig(**{**config.__dict__, **overrides})
    if config.arrivals not in _ARRIVALS:
        raise KeyError(
            f"unknown arrival process {config.arrivals!r}; "
            f"known: {sorted(_ARRIVALS)}"
        )
    names = sorted(config.mix)
    weights = np.array([config.mix[k] for k in names], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError("scenario mix weights must sum to > 0")
    weights /= weights.sum()

    rng = np.random.default_rng(seed)
    times = _ARRIVALS[config.arrivals](config, rng)
    P = config.page_tokens
    vocab = config.vocab_size

    # Shared material, fixed per trace: prefix sharing only helps if
    # many requests literally repeat these tokens.
    chat_system = _tokens(rng, config.chat_system_pages * P, vocab)
    rag_systems = [
        _tokens(rng, config.rag_system_pages * P, vocab)
        for _ in range(config.rag_corpora)
    ]
    agent_contexts: list[np.ndarray] = []

    def _chat() -> np.ndarray:
        turn = _lognormal_int(
            rng, config.chat_turn_mean, config.chat_turn_sigma,
            config.min_tokens, config.max_tokens,
        )
        return np.concatenate([chat_system, _tokens(rng, turn, vocab)])

    def _rag() -> np.ndarray:
        system = rag_systems[int(rng.integers(len(rag_systems)))]
        query = _lognormal_int(
            rng, config.rag_query_mean, config.rag_query_sigma,
            config.min_tokens, config.max_tokens,
        )
        return np.concatenate([system, _tokens(rng, query, vocab)])

    def _agent() -> np.ndarray:
        # Start a new conversation, or grow an existing one by one
        # page-aligned loop iteration (the prefix-cache stressor).
        grow = agent_contexts and rng.uniform() < (
            1.0 - 1.0 / config.agent_loops
        )
        if grow:
            i = int(rng.integers(len(agent_contexts)))
            grown = np.concatenate([
                agent_contexts[i],
                _tokens(rng, config.agent_growth_pages * P, vocab),
            ])
            agent_contexts[i] = grown
            return grown
        fresh = _tokens(rng, config.agent_seed_pages * P, vocab)
        agent_contexts.append(fresh)
        return fresh

    make = {"chat": _chat, "rag": _rag, "agent": _agent}
    for name in names:
        if name not in make:
            raise KeyError(
                f"unknown scenario {name!r}; known: {sorted(make)}"
            )

    trace = []
    for t in times:
        scenario = names[int(rng.choice(len(names), p=weights))]
        prompt = make[scenario]()
        out = _lognormal_int(
            rng, config.output_mean, config.output_sigma,
            config.min_tokens, config.max_tokens,
        )
        trace.append(
            TraceRequest(
                arrival_s=float(t),
                prompt=prompt,
                max_new_tokens=out,
                scenario=scenario,
            )
        )
    return trace


# ----------------------------------------------------------------------
# Multi-turn chat sessions.
# ----------------------------------------------------------------------

@dataclass
class SessionTurn:
    """One user turn of a chat session."""

    #: Seeded think-time gap between the previous turn's last token and
    #: this turn's arrival (0 for the first turn — the session's
    #: ``start_s`` anchors that one).
    think_s: float
    user_tokens: np.ndarray
    max_new_tokens: int


@dataclass
class SessionTrace:
    """One scripted multi-turn conversation."""

    session_id: str
    start_s: float
    turns: list[SessionTurn]

    @property
    def num_turns(self) -> int:
        return len(self.turns)


@dataclass
class SessionWorkloadConfig:
    """Knobs for a generated multi-turn chat workload.

    Turn N+1's prompt is the full conversation so far plus new user
    text — the dominant production pattern cross-turn KV reuse exists
    for.  All lengths are lognormal-clipped like :class:`WorkloadConfig`;
    think times are lognormal too (humans read, then type).  Every
    session's first turn opens with one shared system prompt, so the
    workload also exercises cross-*session* sharing of the system pages.
    """

    num_sessions: int = 6
    #: Sessions open uniformly across this window.
    start_window_s: float = 4.0
    turns_mean: float = 4.0
    turns_sigma: float = 0.3
    min_turns: int = 2
    max_turns: int = 8
    vocab_size: int = 64
    page_tokens: int = 8
    #: Shared system prompt (pages), identical across sessions.
    system_pages: int = 1
    first_turn_mean: float = 16.0
    turn_mean: float = 12.0
    turn_sigma: float = 0.5
    think_mean_s: float = 0.6
    think_sigma_s: float = 0.6
    output_mean: float = 10.0
    output_sigma: float = 0.4
    min_tokens: int = 2
    max_tokens: int = 48


def generate_sessions(
    config: SessionWorkloadConfig | None = None, seed: int = 0, **overrides
) -> list[SessionTrace]:
    """A reproducible multi-turn chat workload: same (config, seed) pair,
    same sessions, turn for turn and gap for gap."""
    if config is None:
        config = SessionWorkloadConfig()
    if overrides:
        config = SessionWorkloadConfig(**{**config.__dict__, **overrides})
    rng = np.random.default_rng(seed)
    vocab = config.vocab_size
    system = _tokens(rng, config.system_pages * config.page_tokens, vocab)
    starts = np.sort(
        rng.uniform(0.0, config.start_window_s, size=config.num_sessions)
    )
    sessions = []
    for i, start in enumerate(starts):
        num_turns = _lognormal_int(
            rng, config.turns_mean, config.turns_sigma,
            config.min_turns, config.max_turns,
        )
        turns = []
        for turn in range(num_turns):
            mean = config.first_turn_mean if turn == 0 else config.turn_mean
            text = _tokens(
                rng,
                _lognormal_int(
                    rng, mean, config.turn_sigma,
                    config.min_tokens, config.max_tokens,
                ),
                vocab,
            )
            if turn == 0:
                text = np.concatenate([system, text])
                think = 0.0
            else:
                think = float(
                    rng.lognormal(
                        np.log(max(config.think_mean_s, 1e-3)),
                        config.think_sigma_s,
                    )
                )
            turns.append(
                SessionTurn(
                    think_s=think,
                    user_tokens=text,
                    max_new_tokens=_lognormal_int(
                        rng, config.output_mean, config.output_sigma,
                        config.min_tokens, config.max_tokens,
                    ),
                )
            )
        sessions.append(
            SessionTrace(
                session_id=f"session-{i}", start_s=float(start), turns=turns
            )
        )
    return sessions


# ----------------------------------------------------------------------
# Replay: virtual time.
# ----------------------------------------------------------------------

class VirtualClock:
    """A deterministic simulated clock the engine reads as ``clock()``."""

    def __init__(self, start_s: float = 0.0):
        self.now_s = float(start_s)

    def __call__(self) -> float:
        return self.now_s

    def advance(self, dt_s: float) -> None:
        # Inverted comparison so NaN (for which every comparison is
        # False) is rejected too, not silently smeared into the clock.
        if not (dt_s >= 0.0):
            raise ValueError(
                f"time only moves forward (advance by {dt_s!r})"
            )
        self.now_s += dt_s

    def jump_to(self, t_s: float) -> None:
        t_s = float(t_s)
        if not (t_s == t_s):  # NaN guard
            raise ValueError("cannot jump the clock to NaN")
        self.now_s = max(self.now_s, t_s)


@dataclass
class StepCostModel:
    """Simulated wall time one engine step costs — a two-lane roofline.

    A fused continuous-batching step runs compute-bound work (the
    prompt/decode GEMMs, linear in tokens processed) and bandwidth-bound
    work (streaming every decoding request's KV history through memory)
    on different hardware resources, so the step takes the *slower* of
    the two lanes, not their sum:

    ``base_s + max(compute_s_per_token * tokens, bw_s_per_byte * kv_read)``

    This is what makes chunked prefill pay off in simulated time, the
    same way it does on a GPU (Sarathi-Serve): a page-sized prompt chunk
    slips under the decode batch's bandwidth umbrella nearly for free,
    while an unchunked long prompt blows past it and stalls every
    decoding request for the whole linear prefill cost.  It is also the
    Ecco tie-in — compressed KV shrinks ``kv_read``, so the bandwidth
    lane (and with it the whole step) gets faster.  Defaults are scaled
    for the proxy models; they are knobs, not measurements.
    """

    base_s: float = 5e-4
    compute_s_per_token: float = 2e-3
    bw_s_per_byte: float = 1e-6

    def __call__(self, last_step) -> float:
        """Cost of one step composition (a cluster passes a list of
        per-replica compositions: concurrent replicas cost the max).

        A step that did no work costs *nothing*: charging is idempotent
        over zero-token steps, so a driver polling an idle engine cannot
        smear phantom seconds into the clock.  Drivers that need time to
        move through a genuine stall (nothing admitted, nothing decoded,
        but the queue is non-empty) apply ``base_s`` themselves as an
        explicit fallback tick — see the front-end pump.
        """
        if isinstance(last_step, list):
            if not last_step:
                return 0.0
            return max(self(entry) for entry in last_step)
        tokens = last_step["prefill_tokens"] + last_step["decode_tokens"]
        kv_read = float(last_step["kv_read_bytes"])
        if tokens == 0 and kv_read == 0.0:
            return 0.0
        compute = self.compute_s_per_token * float(tokens)
        bandwidth = self.bw_s_per_byte * kv_read
        return self.base_s + max(compute, bandwidth)

    # Component charges for *synchronous* charging: an engine built with
    # ``step_cost=`` advances its virtual clock as work happens, so a
    # request's own prefill cost lands inside its TTFT (what makes a
    # warm, cache-served turn measurably faster than a cold start even
    # on an idle engine).  The fused-step roofline above stays the
    # replay-side model; use one or the other per engine, never both.
    def prefill_s(self, tokens: int) -> float:
        """Simulated cost of forwarding ``tokens`` prompt tokens
        (zero tokens cost zero — charging stays idempotent)."""
        if tokens == 0:
            return 0.0
        return self.base_s + self.compute_s_per_token * float(tokens)

    def decode_s(self, decode_tokens: int, kv_read_bytes: float) -> float:
        """Simulated cost of one batched decode step (two-lane max;
        an empty step costs zero)."""
        if decode_tokens == 0 and kv_read_bytes == 0.0:
            return 0.0
        compute = self.compute_s_per_token * float(decode_tokens)
        bandwidth = self.bw_s_per_byte * float(kv_read_bytes)
        return self.base_s + max(compute, bandwidth)


def _as_frontend(target, step_cost, max_steps):
    """Wrap ``target`` in an :class:`AsyncServingEngine` unless it
    already is one.  Imported lazily — the front-end imports this
    module for :class:`StepCostModel`."""
    from .frontend import AsyncServingEngine

    if isinstance(target, AsyncServingEngine):
        return target
    return AsyncServingEngine(
        target, step_cost=step_cost, max_steps=max_steps
    )


def replay_trace(
    target,
    trace: list[TraceRequest],
    clock: VirtualClock,
    step_cost: StepCostModel | None = None,
    max_steps: int = 200_000,
) -> dict:
    """Drive ``target`` (engine or cluster) through a timed trace.

    One of the two closed-loop clients of the async front-end
    (:class:`~repro.serve.frontend.AsyncServingEngine` — the other is
    :func:`~repro.serve.session.replay_sessions`): each trace arrival
    becomes a coroutine that sleeps until its arrival time and submits,
    while the front-end pump steps the engine and advances this same
    ``clock`` by the :class:`StepCostModel` roofline per step.
    Requests record the *trace* arrival time, so TTFT includes sub-step
    queueing; requests the pool can never hold are counted as rejected
    (the 429 path), and requests the scheduling policy sheds at
    admission are counted separately.  Returns replay totals; latency
    metrics live in the target's own report.
    """
    from .frontend import AsyncServingEngine, RequestShedError

    if (
        not isinstance(target, AsyncServingEngine)
        and getattr(target, "step_cost", None) is not None
    ):
        raise ValueError(
            "target already charges its own clock (step_cost set on the "
            "engine); replay_trace's per-step charge would double-count "
            "— drop one of the two"
        )
    frontend = _as_frontend(target, step_cost, max_steps)
    order = sorted(range(len(trace)), key=lambda i: trace[i].arrival_s)
    # Replay-side outcome totals mirror into the stack's registry as
    # ``client.<name>``, so a mid-run snapshot shows them alongside the
    # engine/pool/frontend series.
    counts = MirroredCounters(
        {"submitted": 0, "rejected": 0, "shed": 0},
        frontend.registry,
        "client.",
    )

    async def _client(item: TraceRequest) -> None:
        await frontend.sleep_until(item.arrival_s)
        try:
            frontend.submit(
                item.prompt,
                item.max_new_tokens,
                slo=item.slo,
                tenant=item.tenant,
                arrival_s=item.arrival_s,
            )
        except RequestShedError:
            counts["shed"] += 1
        except BudgetExceededError:
            counts["rejected"] += 1
        else:
            counts["submitted"] += 1

    frontend.drive(*(_client(trace[i]) for i in order))
    return {
        "trace_requests": len(trace),
        "submitted": counts["submitted"],
        "rejected": counts["rejected"] + counts["shed"],
        "steps": frontend.steps,
        "tokens_processed": frontend.tokens_processed,
        "simulated_s": clock.now_s,
    }


# ----------------------------------------------------------------------
# Open-loop client: timeouts and retries.
# ----------------------------------------------------------------------

@dataclass
class RetryPolicy:
    """Client-side retry/timeout behaviour for the open-loop replayer.

    ``timeout_s`` is the per-attempt client deadline (``None`` = wait
    forever); a timed-out attempt abandons its stream but the engine
    keeps generating — the wasted work is the point.  Backoff between
    attempts is exponential with seeded uniform jitter:
    ``base_backoff_s * multiplier**k * (1 + jitter * u)``, ``u ~ U[0,1)``.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    base_backoff_s: float = 0.25
    backoff_multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.base_backoff_s < 0 or self.jitter < 0:
            raise ValueError("backoff and jitter must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_s(self, attempt: int, u: float) -> float:
        """Delay before retry number ``attempt`` (1-based), given a
        pre-drawn uniform jitter sample ``u``."""
        scale = self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)
        return scale * (1.0 + self.jitter * float(u))


def replay_open_loop(
    target,
    trace: list[TraceRequest],
    clock: VirtualClock,
    retry: RetryPolicy | None = None,
    step_cost: StepCostModel | None = None,
    seed: int = 0,
    max_steps: int = 500_000,
) -> dict:
    """Replay a trace through impatient, retrying open-loop clients.

    Unlike :func:`replay_trace` (fire-and-forget), every arrival here is
    a client that *waits for its own tokens*: it submits at its trace
    arrival time, abandons the attempt if the stream misses the
    :class:`RetryPolicy` deadline, backs off (seeded exponential +
    jitter, deterministic per request index) and resubmits — the
    retry-storm mechanic, where shed or timed-out load comes back
    compounded.  Arrivals never wait for earlier requests (open loop),
    so offered load is set by the trace, not by the server.

    Returns outcome totals: per-request ``completed`` / ``gave_up``
    (all attempts failed), attempt-level ``timeouts`` / ``shed`` /
    ``rejected`` counters, ``retries``, and the pump totals.  The
    front-end's own backpressure report rides along under
    ``"frontend"``.
    """
    from .frontend import (
        AsyncServingEngine,
        RequestShedError,
        RequestTimeoutError,
    )

    if (
        not isinstance(target, AsyncServingEngine)
        and getattr(target, "step_cost", None) is not None
    ):
        raise ValueError(
            "target already charges its own clock (step_cost set on the "
            "engine); replay_open_loop's per-step charge would "
            "double-count — drop one of the two"
        )

    if retry is None:
        retry = RetryPolicy()
    frontend = _as_frontend(target, step_cost, max_steps)
    # Jitter is pre-drawn per (request, attempt): determinism must not
    # depend on the interleaving order in which clients reach their
    # backoff draws.
    rng = np.random.default_rng(seed)
    jitter_u = rng.uniform(size=(len(trace), max(retry.max_attempts - 1, 1)))
    order = sorted(range(len(trace)), key=lambda i: trace[i].arrival_s)
    # Attempt outcomes mirror into the stack's registry as
    # ``client.<name>``; each client also drops instants on its own
    # ``client-<idx>`` trace track, so a retry storm is readable in the
    # Chrome export request by request.
    counts = MirroredCounters(
        {
            "completed": 0,
            "gave_up": 0,
            "attempts": 0,
            "retries": 0,
            "timeouts": 0,
            "shed": 0,
            "rejected": 0,
        },
        frontend.registry,
        "client.",
    )
    obs = frontend.obs

    async def _client(idx: int) -> None:
        item = trace[idx]
        track = f"client-{idx}"
        await frontend.sleep_until(item.arrival_s)
        for attempt in range(1, retry.max_attempts + 1):
            counts["attempts"] += 1
            try:
                handle = frontend.submit(
                    item.prompt,
                    item.max_new_tokens,
                    slo=item.slo,
                    tenant=item.tenant,
                )
                await handle.result(timeout_s=retry.timeout_s)
                counts["completed"] += 1
                obs.instant(
                    "client_completed", track, cat="client", attempt=attempt
                )
                return
            except RequestTimeoutError:
                counts["timeouts"] += 1
                obs.instant(
                    "client_timeout", track, cat="client", attempt=attempt
                )
            except RequestShedError:
                counts["shed"] += 1
                obs.instant(
                    "client_shed", track, cat="client", attempt=attempt
                )
            except BudgetExceededError:
                counts["rejected"] += 1
                obs.instant(
                    "client_rejected", track, cat="client", attempt=attempt
                )
            if attempt == retry.max_attempts:
                counts["gave_up"] += 1
                obs.instant(
                    "client_gave_up", track, cat="client", attempt=attempt
                )
                return
            counts["retries"] += 1
            obs.instant(
                "client_retry", track, cat="client", attempt=attempt
            )
            await frontend.sleep(
                retry.backoff_s(attempt, jitter_u[idx, attempt - 1])
            )

    frontend.drive(*(_client(i) for i in order))
    return {
        "trace_requests": len(trace),
        **counts,
        "steps": frontend.steps,
        "tokens_processed": frontend.tokens_processed,
        "simulated_s": clock.now_s,
        "frontend": frontend.report(),
    }
