"""The paged KV pool: bounded byte budget, ref counts, prefix sharing.

Pages are fixed-token-count units whose payload is every layer's K and V
segment for those tokens — Ecco-compressed 64-byte blocks in the
``ecco`` storage mode, raw fp16 arrays in the baseline mode.  The pool
is storage-agnostic: it owns the *accounting* (a hard byte budget, ref
counts, content-hash prefix sharing, swap traffic) while the backends in
``repro.serve.storage`` own the payloads.

Sharing is hash-chained like vLLM's prefix cache: a page's identity is
``H(parent_chain, token_ids)``, so two requests whose prompts agree
token-for-token up to a page boundary resolve to the same chain and
share one resident copy (ref-counted).  Because the Ecco codec is
deterministic and causal attention makes a prefix's KV independent of
what follows, the shared bytes are bit-identical to what each request
would have encoded alone.

Preemption support distinguishes *resident* references (running
requests) from *swapped* references (preempted requests): a page's bytes
leave the device — and count as swap traffic — only when its last
resident reference does, so preempting one tenant of a shared prompt
moves nothing.

Pages whose last reference disappears are not freed eagerly: they stay
resident as an evictable LRU prefix cache, so a request arriving after
every earlier tenant finished still shares the common prompt's pages.
Cached pages are reclaimed lazily whenever new allocations need the
room.

Eviction is *chain-aware*: a cached page is only useful if every
ancestor on its hash chain is still resident (a prefix-match walk
starts at ``ROOT_CHAIN`` and descends parent to child), so reclaiming
prefers suffix-first — the LRU page with no resident children — and,
when a parent must go anyway, cascades through its cached descendants
rather than stranding them as unreachable dead weight in the budget.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BudgetExceededError", "KVPage", "PagedKVPool", "chain_hash"]


class BudgetExceededError(ValueError):
    """A request that can never fit the pool's byte budget.

    Raised at ``submit`` (the 429 of this system) — distinct from other
    ``ValueError`` submission failures (duplicate IDs, bad arguments) so
    trace replay can count capacity rejections without swallowing real
    usage errors.
    """

#: The root of every page hash chain.
ROOT_CHAIN = "root"


def chain_hash(parent: str, token_ids) -> str:
    """Position-aware content hash of a page: parent chain + its tokens."""
    h = hashlib.blake2b(digest_size=16)
    h.update(parent.encode())
    h.update(np.asarray(token_ids, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass
class KVPage:
    """One page: every layer's K/V segments for ``token_ids``."""

    page_id: int
    chain: str
    token_ids: tuple
    #: Chain of the preceding page (``ROOT_CHAIN`` for a first page);
    #: ``chain == chain_hash(parent, token_ids)`` always holds.
    parent: str = ROOT_CHAIN
    #: layer -> (key segment, value segment); CompressedTensor pairs in
    #: ecco mode, fp16 ndarray pairs in the baseline mode.
    payload: dict = field(default_factory=dict)
    nbytes: int = 0
    fp16_nbytes: int = 0
    #: References held by running (resident) requests.
    ref_count: int = 0
    #: References held by swapped-out (preempted) requests.
    swapped_refs: int = 0

    @property
    def num_tokens(self) -> int:
        return len(self.token_ids)


class PagedKVPool:
    """Byte-budgeted page pool with sharing and swap accounting."""

    def __init__(self, byte_budget: int, page_tokens: int = 8):
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        if page_tokens < 1:
            raise ValueError("page_tokens must be >= 1")
        self.byte_budget = int(byte_budget)
        self.page_tokens = int(page_tokens)
        self._pages: dict[int, KVPage] = {}     # resident pages by id
        self._swapped: dict[int, KVPage] = {}   # swapped-out pages by id
        self._index: dict[str, int] = {}        # chain -> resident page id
        #: parent chain -> {child chain: resident page id} — the edges a
        #: prefix-match walk descends and chain-aware eviction consults.
        self._children: dict[str, dict[str, int]] = {}
        #: Ref-0 pages retained as a prefix cache, insertion-ordered = LRU.
        self._cached: dict[int, KVPage] = {}
        self._next_id = 0
        #: Actual bytes resident (pages + private tail reservations).
        self.bytes_resident = 0
        #: What the same resident tokens would cost stored as fp16.
        self.fp16_bytes_resident = 0
        #: Resident bytes held only by the evictable prefix cache.
        self.bytes_evictable = 0
        self.bytes_swapped = 0
        self.private_bytes = 0
        #: The slice of ``bytes_swapped`` that is private-tail bytes —
        #: kept separately so the swap-in guard is exact (checking the
        #: aggregate would let a double swap-in hide behind other
        #: requests' swapped pages).
        self.private_swapped_bytes = 0
        self.stats = {
            "pages_allocated": 0,
            "pages_shared": 0,
            "pages_freed": 0,
            "pages_evicted": 0,
            "prefix_cache_hits": 0,
            "bytes_written": 0,
            "shared_bytes_saved": 0,
            # The same sharing measured in fp16-equivalent bytes: what the
            # shared tokens would have cost stored uncompressed, so reports
            # can state the capacity dividend in both units.
            "shared_fp16_bytes_saved": 0,
            "swap_out_bytes": 0,
            "swap_in_bytes": 0,
            "peak_bytes_resident": 0,
            "peak_fp16_bytes_resident": 0,
            # Budget-invariant violations: any allocation that left
            # bytes_resident above byte_budget.  The engine enforces the
            # budget before every step, so these must stay zero; a
            # non-zero count in snapshot() is a loud accounting bug.
            "budget_overruns": 0,
            "max_overrun_bytes": 0,
        }

    # ------------------------------------------------------------------
    # Budget.
    # ------------------------------------------------------------------
    @property
    def bytes_free(self) -> int:
        return self.byte_budget - self.bytes_resident

    @property
    def bytes_active(self) -> int:
        """Resident bytes pinned by live references (not evictable)."""
        return self.bytes_resident - self.bytes_evictable

    def can_fit(self, nbytes: int) -> bool:
        return self.bytes_resident + nbytes <= self.byte_budget

    def can_fit_with_eviction(self, nbytes: int) -> bool:
        """Would ``nbytes`` fit after reclaiming the whole prefix cache?"""
        return self.bytes_active + nbytes <= self.byte_budget

    def _resident_children(self, chain: str) -> list[KVPage]:
        """Resident pages (pinned or cached) whose parent is ``chain``."""
        return [
            self._pages[pid]
            for pid in self._children.get(chain, {}).values()
            if pid in self._pages
        ]

    def _pick_eviction_victim(self) -> KVPage:
        """Suffix-first LRU: the oldest cached page with no resident
        children.  Chain suffixes (stale conversation tails) go before
        the shared prefixes beneath them, so an eviction pass never
        orphans a page that could still be hit.  If every cached page
        still has resident children (some pinned by running requests),
        fall back to plain LRU — the cascade below keeps the cache
        consistent even then."""
        for page in self._cached.values():  # insertion order = LRU
            if not self._resident_children(page.chain):
                return page
        return next(iter(self._cached.values()))

    def _evict_page(self, page: KVPage) -> None:
        """Evict one cached page, cascading through its cached
        descendants first (deepest-first): evicting a parent must never
        leave a cached child that no prefix-match walk can reach.
        Iterative post-order — a long conversation leaves a linear
        cached chain far deeper than the interpreter recursion limit."""
        stack: list[tuple[KVPage, bool]] = [(page, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                self._cached.pop(node.page_id)
                self.bytes_evictable -= node.nbytes
                self._unregister(node)
                self.stats["pages_evicted"] += 1
                self.stats["pages_freed"] += 1
                continue
            stack.append((node, True))
            for child in self._resident_children(node.chain):
                if child.page_id in self._cached:
                    stack.append((child, False))

    def _evict_for(self, nbytes: int) -> None:
        """Reclaim prefix-cache pages until ``nbytes`` fits (or none are
        left); allocation paths call this before claiming bytes."""
        while not self.can_fit(nbytes) and self._cached:
            self._evict_page(self._pick_eviction_victim())

    def _bump(self, nbytes: int, fp16_nbytes: int) -> None:
        self.bytes_resident += nbytes
        self.fp16_bytes_resident += fp16_nbytes
        self.stats["peak_bytes_resident"] = max(
            self.stats["peak_bytes_resident"], self.bytes_resident
        )
        self.stats["peak_fp16_bytes_resident"] = max(
            self.stats["peak_fp16_bytes_resident"], self.fp16_bytes_resident
        )
        overrun = self.bytes_resident - self.byte_budget
        if overrun > 0:
            self.stats["budget_overruns"] += 1
            self.stats["max_overrun_bytes"] = max(
                self.stats["max_overrun_bytes"], overrun
            )

    def check_budget(self) -> None:
        """Raise if resident bytes exceed the budget (defense in depth).

        The scheduler's admission and capacity passes are supposed to
        make this impossible; calling it after every engine step turns
        any accounting drift into an immediate, attributable failure
        instead of silently growing memory.
        """
        if self.bytes_resident > self.byte_budget:
            raise RuntimeError(
                f"KV pool over budget: {self.bytes_resident} B resident "
                f"vs a {self.byte_budget} B budget "
                f"({self.stats['budget_overruns']} overrun allocations, "
                f"worst {self.stats['max_overrun_bytes']} B)"
            )
        # Drift in the *other* direction is just as much of a bug: a
        # negative counter means some free/swap path was paid twice and
        # the budget invariant has silently been relaxed.
        negatives = {
            name: value
            for name, value in (
                ("bytes_resident", self.bytes_resident),
                ("fp16_bytes_resident", self.fp16_bytes_resident),
                ("bytes_evictable", self.bytes_evictable),
                ("bytes_swapped", self.bytes_swapped),
                ("private_bytes", self.private_bytes),
                ("private_swapped_bytes", self.private_swapped_bytes),
            )
            if value < 0
        }
        if negatives:
            raise RuntimeError(
                f"negative KV pool byte counters (double free?): {negatives}"
            )

    # ------------------------------------------------------------------
    # Pages: acquire / release / swap.
    # ------------------------------------------------------------------
    def peek(self, chain: str) -> KVPage | None:
        """The resident page for ``chain``, if any (no ref taken)."""
        page_id = self._index.get(chain)
        return None if page_id is None else self._pages[page_id]

    def match_prefix(self, token_ids) -> list[KVPage]:
        """Resident pages covering the longest prefix of ``token_ids``.

        Walks the hash chain from ``ROOT_CHAIN`` parent to child — the
        lookup the prefix cache is actually keyed on — taking at each
        node the longest resident child whose tokens literally continue
        the prompt.  Handles variable page sizes (a promoted
        conversation tail is a sub-page-sized chain node), takes no
        references, and never descends through a missing ancestor.
        """
        ids = [int(t) for t in np.asarray(token_ids).reshape(-1)]
        matched: list[KVPage] = []
        chain, pos = ROOT_CHAIN, 0
        while pos < len(ids):
            best = None
            for child in self._resident_children(chain):
                n = child.num_tokens
                if pos + n > len(ids):
                    continue
                if list(child.token_ids) != ids[pos : pos + n]:
                    continue
                if best is None or n > best.num_tokens:
                    best = child
            if best is None:
                break
            matched.append(best)
            pos += best.num_tokens
            chain = best.chain
        return matched

    def acquire(
        self,
        chain: str,
        token_ids,
        build_payload,
        count_write: bool = True,
        parent: str = ROOT_CHAIN,
    ) -> tuple[KVPage, bool]:
        """A resident page for ``chain``: shared (ref++) or newly built.

        ``build_payload`` is called only on a miss and must return
        ``(payload, nbytes, fp16_nbytes)``.  Returns ``(page, shared)``.
        Pass ``count_write=False`` when the payload bytes were already
        accounted as written (promoting a private tail into a page moves
        no payload bytes).  ``parent`` is the preceding page's chain —
        the edge prefix matching walks and chain-aware eviction cascades
        along.
        """
        existing = self.peek(chain)
        if existing is not None:
            if existing.ref_count == 0:  # prefix-cache hit: re-pin it
                self._cached.pop(existing.page_id, None)
                self.bytes_evictable -= existing.nbytes
                self.stats["prefix_cache_hits"] += 1
            existing.ref_count += 1
            self.stats["pages_shared"] += 1
            self.stats["shared_bytes_saved"] += existing.nbytes
            self.stats["shared_fp16_bytes_saved"] += existing.fp16_nbytes
            return existing, True
        payload, nbytes, fp16_nbytes = build_payload()
        self._evict_for(nbytes)
        page = KVPage(
            page_id=self._next_id,
            chain=chain,
            parent=parent,
            token_ids=tuple(int(t) for t in token_ids),
            payload=payload,
            nbytes=int(nbytes),
            fp16_nbytes=int(fp16_nbytes),
            ref_count=1,
        )
        self._next_id += 1
        self._register(page)
        self._bump(page.nbytes, page.fp16_nbytes)
        self.stats["pages_allocated"] += 1
        if count_write:
            self.stats["bytes_written"] += page.nbytes
        return page, False

    def _register(self, page: KVPage) -> None:
        self._pages[page.page_id] = page
        self._index.setdefault(page.chain, page.page_id)
        self._children.setdefault(page.parent, {}).setdefault(
            page.chain, page.page_id
        )

    def _unregister(self, page: KVPage) -> None:
        del self._pages[page.page_id]
        if self._index.get(page.chain) == page.page_id:
            del self._index[page.chain]
        siblings = self._children.get(page.parent)
        if siblings is not None and siblings.get(page.chain) == page.page_id:
            del siblings[page.chain]
            if not siblings:
                del self._children[page.parent]
        self.bytes_resident -= page.nbytes
        self.fp16_bytes_resident -= page.fp16_nbytes

    def _reachable(self, parent: str) -> bool:
        """Can a prefix-match walk reach a page chained off ``parent``?"""
        return parent == ROOT_CHAIN or parent in self._index

    def _maybe_demote(self, page: KVPage) -> None:
        """A page whose last resident ref just left: swap it out if a
        preempted request still needs it, otherwise retain it resident in
        the evictable prefix cache — unless its parent is no longer
        resident (no lookup could ever hit it again), in which case it is
        freed outright instead of wasting budget as dead weight."""
        if page.ref_count > 0:
            return
        if page.page_id in self._pages:
            if page.swapped_refs > 0:
                # The page leaves residency: cached descendants become
                # unreachable until it swaps back in — reclaim them now
                # rather than letting them squat in the budget.
                for child in self._resident_children(page.chain):
                    if child.page_id in self._cached:
                        self._evict_page(child)
                self._unregister(page)
                self._swapped[page.page_id] = page
                self.bytes_swapped += page.nbytes
                self.stats["swap_out_bytes"] += page.nbytes
                return
            if not self._reachable(page.parent):
                self._unregister(page)
                self.stats["pages_freed"] += 1
                return
            self._cached[page.page_id] = page
            self.bytes_evictable += page.nbytes
        elif page.swapped_refs == 0 and page.page_id in self._swapped:
            del self._swapped[page.page_id]
            self.bytes_swapped -= page.nbytes
            self.stats["pages_freed"] += 1

    def release(self, page: KVPage) -> None:
        """Drop a resident reference (request finished)."""
        if page.ref_count <= 0:
            raise ValueError(f"page {page.page_id} has no resident refs")
        page.ref_count -= 1
        self._maybe_demote(page)

    def swap_out(self, page: KVPage) -> None:
        """Turn a resident reference into a swapped one (preemption).

        Bytes move — and count as swap-out traffic — only if this was the
        page's last resident reference; a page still referenced by other
        running requests stays put.
        """
        if page.ref_count <= 0:
            raise ValueError(f"page {page.page_id} has no resident refs")
        page.ref_count -= 1
        page.swapped_refs += 1
        self._maybe_demote(page)

    def swap_in(self, page: KVPage) -> KVPage:
        """Turn a swapped reference back into a resident one.

        Returns the resident page now serving the reference: normally
        ``page`` itself, but if a bit-identical page for the same chain
        was rebuilt resident while this one was out (another tenant
        prefilled the same prefix), that copy is re-pinned instead and
        the swapped duplicate is dropped — no bytes move, and the budget
        never carries the same content twice.
        """
        if page.swapped_refs <= 0:
            raise ValueError(f"page {page.page_id} has no swapped refs")
        page.swapped_refs -= 1
        if page.page_id in self._pages:
            page.ref_count += 1  # stayed resident via another request
            return page
        resident_id = self._index.get(page.chain)
        if resident_id is not None:
            # Other preempted requests may still reference the swapped
            # copy; it is freed only when the last of them leaves.
            if page.swapped_refs == 0:
                del self._swapped[page.page_id]
                self.bytes_swapped -= page.nbytes
                self.stats["pages_freed"] += 1
            substitute = self._pages[resident_id]
            if substitute.ref_count == 0:  # sitting in the prefix cache
                self._cached.pop(substitute.page_id, None)
                self.bytes_evictable -= substitute.nbytes
                self.stats["prefix_cache_hits"] += 1
            substitute.ref_count += 1
            self.stats["pages_shared"] += 1
            self.stats["shared_bytes_saved"] += substitute.nbytes
            self.stats["shared_fp16_bytes_saved"] += substitute.fp16_nbytes
            return substitute
        del self._swapped[page.page_id]
        self._evict_for(page.nbytes)
        self._register(page)
        self.bytes_swapped -= page.nbytes
        page.ref_count += 1
        self._bump(page.nbytes, page.fp16_nbytes)
        self.stats["swap_in_bytes"] += page.nbytes
        return page

    # ------------------------------------------------------------------
    # Private (unpaged tail) reservations.
    # ------------------------------------------------------------------
    def reserve_private(self, nbytes: int, fp16_nbytes: int) -> None:
        """Account bytes for a request's not-yet-paged tail segments."""
        self._evict_for(nbytes)
        self.private_bytes += nbytes
        self._bump(nbytes, fp16_nbytes)
        self.stats["bytes_written"] += nbytes

    def _check_private_release(self, nbytes: int, fp16_nbytes: int) -> None:
        """Refuse to free more private bytes than are reserved.

        Like :meth:`release` on a ref-0 page, a double free here is a
        loud error: silently driving ``private_bytes`` negative would
        *relax* the byte budget by exactly the over-freed amount.
        """
        if nbytes < 0 or fp16_nbytes < 0:
            raise ValueError("private byte counts must be non-negative")
        if nbytes > self.private_bytes:
            raise ValueError(
                f"freeing {nbytes} B of private KV but only "
                f"{self.private_bytes} B are reserved (double free?)"
            )
        if fp16_nbytes > self.fp16_bytes_resident:
            raise ValueError(
                f"freeing {fp16_nbytes} fp16-equivalent B but only "
                f"{self.fp16_bytes_resident} B are resident (double free?)"
            )

    def free_private(self, nbytes: int, fp16_nbytes: int) -> None:
        self._check_private_release(nbytes, fp16_nbytes)
        self.private_bytes -= nbytes
        self.bytes_resident -= nbytes
        self.fp16_bytes_resident -= fp16_nbytes

    def swap_private_out(self, nbytes: int, fp16_nbytes: int) -> None:
        self.free_private(nbytes, fp16_nbytes)
        self.bytes_swapped += nbytes
        self.private_swapped_bytes += nbytes
        self.stats["swap_out_bytes"] += nbytes

    def swap_private_in(self, nbytes: int, fp16_nbytes: int) -> None:
        if nbytes < 0 or fp16_nbytes < 0:
            raise ValueError("private byte counts must be non-negative")
        if nbytes > self.private_swapped_bytes:
            raise ValueError(
                f"swapping in {nbytes} private B but only "
                f"{self.private_swapped_bytes} private B are swapped out "
                f"(double swap-in?)"
            )
        self._evict_for(nbytes)
        self.bytes_swapped -= nbytes
        self.private_swapped_bytes -= nbytes
        self.private_bytes += nbytes
        self._bump(nbytes, fp16_nbytes)
        self.stats["swap_in_bytes"] += nbytes

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def num_resident_pages(self) -> int:
        return len(self._pages)

    @property
    def num_swapped_pages(self) -> int:
        return len(self._swapped)

    @property
    def num_cached_pages(self) -> int:
        return len(self._cached)

    def unreachable_cached_pages(self) -> list[KVPage]:
        """Cached pages no prefix-match walk from ``ROOT_CHAIN`` reaches.

        These are pure waste — lookup can never hit them — so the
        chain-aware eviction and demotion paths must keep this empty; a
        non-empty return is an invariant violation tests fail on.
        """
        reachable = {ROOT_CHAIN}
        frontier = [ROOT_CHAIN]
        while frontier:
            for child in self._resident_children(frontier.pop()):
                if child.chain not in reachable:
                    reachable.add(child.chain)
                    frontier.append(child.chain)
        return [
            page
            for page in self._cached.values()
            if page.chain not in reachable
        ]

    def snapshot(self) -> dict:
        """Current occupancy + lifetime counters (for reports)."""
        return {
            "byte_budget": self.byte_budget,
            "page_tokens": self.page_tokens,
            "bytes_resident": self.bytes_resident,
            "bytes_active": self.bytes_active,
            "bytes_evictable": self.bytes_evictable,
            "fp16_bytes_resident": self.fp16_bytes_resident,
            "bytes_swapped": self.bytes_swapped,
            "private_bytes": self.private_bytes,
            "private_swapped_bytes": self.private_swapped_bytes,
            "resident_pages": self.num_resident_pages,
            "swapped_pages": self.num_swapped_pages,
            "cached_pages": self.num_cached_pages,
            **self.stats,
        }
