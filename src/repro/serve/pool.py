"""The paged KV pool: bounded byte budget, ref counts, prefix sharing.

Pages are fixed-token-count units whose payload is every layer's K and V
segment for those tokens — Ecco-compressed 64-byte blocks in the
``ecco`` storage mode, raw fp16 arrays in the baseline mode.  The pool
is storage-agnostic: it owns the *accounting* (a hard byte budget, ref
counts, content-hash prefix sharing, swap traffic) while the backends in
``repro.serve.storage`` own the payloads.

Sharing is hash-chained like vLLM's prefix cache: a page's identity is
``H(parent_chain, token_ids)``, so two requests whose prompts agree
token-for-token up to a page boundary resolve to the same chain and
share one resident copy (ref-counted).  Because the Ecco codec is
deterministic and causal attention makes a prefix's KV independent of
what follows, the shared bytes are bit-identical to what each request
would have encoded alone.

Prefix lookup is **token-level**, not page-level: a
:class:`~repro.serve.trie.PrefixTrie` indexes every resident page with
first-token child buckets and vectorized token compares, so a prompt
that shares only *part* of a page still matches — the pool splits the
page at the divergence point (:meth:`PagedKVPool.split_page`, a pure
block-slice both storage formats perform bit-exactly) and the request
attaches the shared head instead of re-encoding it.  ``use_trie=False``
falls back to the legacy whole-page chain walk (still with vectorized
compares) for benchmarking the difference.

Preemption support distinguishes *resident* references (running
requests) from *swapped* references (preempted requests): a page's bytes
leave the device — and count as swap traffic — only when its last
resident reference does, so preempting one tenant of a shared prompt
moves nothing.

Pages whose last reference disappears are not freed eagerly: they stay
resident as an evictable LRU prefix cache, so a request arriving after
every earlier tenant finished still shares the common prompt's pages.
Cached pages are reclaimed lazily whenever new allocations need the
room, and — when ``ttl_s`` is set — by an age sweep, so stale history
leaves the budget even under low pressure.

Eviction is *chain-aware* and *cost-aware*: a cached page is only
useful if every ancestor on its chain is still resident, so reclaiming
prefers suffix-first — a cached page with no resident children (the
pool keeps a dedicated leaf index so finding one is O(1) amortized, not
a scan) — and, when a parent must go anyway, cascades through its
cached descendants rather than stranding them.  Among leaves, the
victim is the page whose eviction forfeits the least re-encode savings:
minimum ``(1 + hits) * nbytes`` (compressed bytes weighted by how often
the page has actually been shared), ties broken least-recently-used.
TTL expiry runs before cost ranking: a page idle past ``ttl_s`` goes
first regardless of how valuable it once was.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs import MetricsRegistry, MirroredCounters, NullRecorder, wall_clock

from .trie import PrefixMatch, PrefixTrie

__all__ = ["BudgetExceededError", "KVPage", "PagedKVPool", "chain_hash"]


class BudgetExceededError(ValueError):
    """A request that can never fit the pool's byte budget.

    Raised at ``submit`` (the 429 of this system) — distinct from other
    ``ValueError`` submission failures (duplicate IDs, bad arguments) so
    trace replay can count capacity rejections without swallowing real
    usage errors.
    """

#: The root of every page hash chain.
ROOT_CHAIN = "root"


def chain_hash(parent: str, token_ids) -> str:
    """Position-aware content hash of a page: parent chain + its tokens."""
    h = hashlib.blake2b(digest_size=16)
    h.update(parent.encode())
    h.update(np.asarray(token_ids, dtype=np.int64).tobytes())
    return h.hexdigest()


def _hist_bucket(tokens: int) -> str:
    """Power-of-two histogram bucket label for a matched-prefix length."""
    lo = 1 << (int(tokens).bit_length() - 1)
    return f"{lo}-{2 * lo - 1}"


@dataclass
class KVPage:
    """One page: every layer's K/V segments for ``token_ids``."""

    page_id: int
    chain: str
    token_ids: tuple
    #: Chain of the preceding page (``ROOT_CHAIN`` for a first page).
    #: For pages created on their original boundaries
    #: ``chain == chain_hash(parent, token_ids)``; a page that was
    #: re-parented by a split keeps its chain as an opaque identity.
    parent: str = ROOT_CHAIN
    #: layer -> (key segment, value segment); CompressedTensor pairs in
    #: ecco mode, fp16 ndarray pairs in the baseline mode.
    payload: dict = field(default_factory=dict)
    nbytes: int = 0
    fp16_nbytes: int = 0
    #: References held by running (resident) requests.
    ref_count: int = 0
    #: References held by swapped-out (preempted) requests.
    swapped_refs: int = 0
    #: Times this page was shared beyond its first use (acquire hits,
    #: swap-in substitutions, prefix attaches) — the reuse frequency the
    #: cost-aware eviction policy weighs.
    hits: int = 0
    #: Pool-clock timestamp of the last share/pin/build.
    last_used: float = 0.0
    #: Pool-clock timestamp of the last demotion into the prefix cache.
    cached_at: float = 0.0

    def __post_init__(self) -> None:
        #: The token ids as an int64 array, for vectorized trie compares.
        self.token_array = np.asarray(self.token_ids, dtype=np.int64)

    @property
    def num_tokens(self) -> int:
        return len(self.token_ids)

    @property
    def cost_score(self) -> float:
        """Re-encode savings forfeited by evicting this page: its
        compressed bytes weighted by how often it has been shared.
        Lower scores evict first."""
        return float((1 + self.hits) * self.nbytes)


class PagedKVPool:
    """Byte-budgeted page pool with sharing and swap accounting."""

    def __init__(
        self,
        byte_budget: int,
        page_tokens: int = 8,
        *,
        use_trie: bool = True,
        ttl_s: float | None = None,
        split_min_tokens: int = 4,
        clock: Callable[[], float] = wall_clock,
        recorder=None,
        registry: MetricsRegistry | None = None,
        track: str = "pool",
    ):
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        if page_tokens < 1:
            raise ValueError("page_tokens must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None to disable)")
        if split_min_tokens < 1:
            raise ValueError("split_min_tokens must be >= 1")
        self.byte_budget = int(byte_budget)
        self.page_tokens = int(page_tokens)
        self.ttl_s = ttl_s
        #: Cost-aware split floor: a partial match salvaging fewer than
        #: this many tokens is not worth a physical page split (the two
        #: block-copied halves plus per-page overhead cost more than
        #: re-encoding the head).  Attach-time policy only — direct
        #: :meth:`split_page` calls are not floored.
        self.split_min_tokens = int(split_min_tokens)
        self._clock = clock
        #: Token-level prefix index; ``None`` in the legacy chain-walk
        #: fallback mode (whole-page matches only, no splitting).
        self.trie: PrefixTrie | None = PrefixTrie() if use_trie else None
        self._pages: dict[int, KVPage] = {}     # resident pages by id
        self._swapped: dict[int, KVPage] = {}   # swapped-out pages by id
        self._index: dict[str, int] = {}        # chain -> resident page id
        #: parent chain -> {child chain: resident page id} — the edges a
        #: prefix-match walk descends and chain-aware eviction consults.
        self._children: dict[str, dict[str, int]] = {}
        #: Ref-0 pages retained as a prefix cache, insertion-ordered.
        self._cached: dict[int, KVPage] = {}
        #: The slice of ``_cached`` with no resident children — the only
        #: pages an eviction pass may take without cascading.  Kept
        #: incrementally on register/unregister/demote so picking a
        #: victim never scans the whole cache.
        self._leaf_cached: dict[int, KVPage] = {}
        #: Lazy min-heap over leaf pages: (cost_score, last_used, seq,
        #: page_id).  Entries go stale when a page leaves the leaf set;
        #: they are skipped at pop time.
        self._victim_heap: list[tuple[float, float, int, int]] = []
        self._heap_seq = 0
        self._next_id = 0
        #: Actual bytes resident (pages + private tail reservations).
        self.bytes_resident = 0
        #: What the same resident tokens would cost stored as fp16.
        self.fp16_bytes_resident = 0
        #: Resident bytes held only by the evictable prefix cache.
        self.bytes_evictable = 0
        self.bytes_swapped = 0
        self.private_bytes = 0
        #: The slice of ``bytes_swapped`` that is private-tail bytes —
        #: kept separately so the swap-in guard is exact, not aggregate.
        self.private_swapped_bytes = 0
        #: Matched-prefix-length histogram (power-of-two buckets) over
        #: every ``lookup_prefix`` call that matched at least one token.
        self.matched_prefix_hist: dict[str, int] = {}
        #: Observability (``repro.obs``): eviction/swap/split instants
        #: land on ``track`` in the trace; every ``stats`` counter
        #: mirrors into ``registry`` as ``pool.<name>`` via
        #: :class:`MirroredCounters`, so no increment site changes.
        self.obs = recorder if recorder is not None else NullRecorder()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.track = track
        initial_stats = {
            "pages_allocated": 0,
            "pages_shared": 0,
            "pages_freed": 0,
            "pages_evicted": 0,
            "prefix_cache_hits": 0,
            # Prefix lookup outcomes (one per lookup_prefix call): the
            # prompt matched nothing / matched whole pages only /
            # matched into the middle of a page (split opportunity).
            "prefix_misses": 0,
            "prefix_full_hits": 0,
            "prefix_partial_hits": 0,
            # Partial-page splits performed, and the shared-head tokens
            # they salvaged for reuse.
            "pages_split": 0,
            "split_tokens_salvaged": 0,
            # Eviction-reason breakdown; the three sum to pages_evicted.
            "evictions_pressure": 0,
            "evictions_ttl": 0,
            "evictions_cascade": 0,
            "bytes_written": 0,
            "shared_bytes_saved": 0,
            # The same sharing measured in fp16-equivalent bytes: what the
            # shared tokens would have cost stored uncompressed, so reports
            # can state the capacity dividend in both units.
            "shared_fp16_bytes_saved": 0,
            "swap_out_bytes": 0,
            "swap_in_bytes": 0,
            "peak_bytes_resident": 0,
            "peak_fp16_bytes_resident": 0,
            # Budget-invariant violations: any allocation that left
            # bytes_resident above byte_budget.  The engine enforces the
            # budget before every step, so these must stay zero; a
            # non-zero count in snapshot() is a loud accounting bug.
            "budget_overruns": 0,
            "max_overrun_bytes": 0,
        }
        self.stats = MirroredCounters(initial_stats, self.registry, "pool.")

    # ------------------------------------------------------------------
    # Budget.
    # ------------------------------------------------------------------
    @property
    def bytes_free(self) -> int:
        return self.byte_budget - self.bytes_resident

    @property
    def bytes_active(self) -> int:
        """Resident bytes pinned by live references (not evictable)."""
        return self.bytes_resident - self.bytes_evictable

    def can_fit(self, nbytes: int) -> bool:
        return self.bytes_resident + nbytes <= self.byte_budget

    def can_fit_with_eviction(self, nbytes: int) -> bool:
        """Would ``nbytes`` fit after reclaiming the whole prefix cache?"""
        return self.bytes_active + nbytes <= self.byte_budget

    def _resident_children(self, chain: str) -> list[KVPage]:
        """Resident pages (pinned or cached) whose parent is ``chain``."""
        return [
            self._pages[pid]
            for pid in self._children.get(chain, {}).values()
            if pid in self._pages
        ]

    # ------------------------------------------------------------------
    # The evictable cache and its leaf index.
    # ------------------------------------------------------------------
    def _leaf_add(self, page: KVPage) -> None:
        if page.page_id in self._leaf_cached:
            return
        self._leaf_cached[page.page_id] = page
        self._heap_seq += 1
        heapq.heappush(
            self._victim_heap,
            (page.cost_score, page.last_used, self._heap_seq, page.page_id),
        )

    def _cache_insert(self, page: KVPage) -> None:
        """Retain a ref-0 page in the evictable prefix cache.  The
        caller must have set ``last_used``/``cached_at`` (demotion
        stamps now; a split inherits the original page's age)."""
        self._cached[page.page_id] = page
        self.bytes_evictable += page.nbytes
        if not self._children.get(page.chain):
            self._leaf_add(page)

    def _cache_remove(self, page: KVPage) -> None:
        """Take a page back out of the evictable cache (re-pin/evict)."""
        self._cached.pop(page.page_id)
        self._leaf_cached.pop(page.page_id, None)
        self.bytes_evictable -= page.nbytes

    def _pick_eviction_victim(self) -> KVPage:
        """Cheapest-first among cache leaves, O(log n) amortized.

        Leaves (cached pages with no resident children) come from the
        incrementally maintained leaf index, ranked by the lazy victim
        heap: minimum ``(1 + hits) * nbytes`` — the page whose eviction
        forfeits the least re-encode savings — ties broken
        least-recently-used.  Suffixes (stale conversation tails) still
        go before the shared prefixes beneath them because a parent with
        resident children is never a leaf.  If every cached page has
        resident children (some pinned by running requests), fall back
        to plain FIFO — the cascade in ``_evict_page`` keeps the cache
        consistent even then.
        """
        while self._victim_heap:
            score, used, _seq, page_id = heapq.heappop(self._victim_heap)
            page = self._leaf_cached.get(page_id)
            if (
                page is not None
                and page.cost_score == score
                and page.last_used == used
            ):
                return page
        if self._leaf_cached:  # heap starved by stale entries: rebuild
            for page in self._leaf_cached.values():
                self._heap_seq += 1
                heapq.heappush(
                    self._victim_heap,
                    (
                        page.cost_score,
                        page.last_used,
                        self._heap_seq,
                        page.page_id,
                    ),
                )
            return self._pick_eviction_victim()
        return next(iter(self._cached.values()))

    def _evict_page(self, page: KVPage, reason: str = "pressure") -> None:
        """Evict one cached page, cascading through its cached
        descendants first (deepest-first): evicting a parent must never
        leave a cached child that no prefix-match walk can reach.
        Iterative post-order — a long conversation leaves a linear
        cached chain far deeper than the interpreter recursion limit."""
        stack: list[tuple[KVPage, bool]] = [(page, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                self._cache_remove(node)
                self._unregister(node)
                self.stats["pages_evicted"] += 1
                self.stats["pages_freed"] += 1
                key = "cascade" if node is not page else reason
                self.stats[f"evictions_{key}"] += 1
                self.registry.inc("pool.evictions", reason=key)
                self.obs.instant(
                    "evict",
                    self.track,
                    cat="pool",
                    reason=key,
                    page_id=node.page_id,
                    nbytes=node.nbytes,
                    tokens=node.num_tokens,
                )
                continue
            stack.append((node, True))
            for child in self._resident_children(node.chain):
                if child.page_id in self._cached:
                    stack.append((child, False))

    def _evict_for(self, nbytes: int) -> None:
        """Reclaim prefix-cache pages until ``nbytes`` fits (or none are
        left); allocation paths call this before claiming bytes.  Pages
        idle past the TTL go first — they are dead weight whatever their
        cost score says."""
        if not self.can_fit(nbytes):
            self.expire_ttl()
        while not self.can_fit(nbytes) and self._cached:
            self._evict_page(self._pick_eviction_victim())

    def expire_ttl(self) -> int:
        """Evict cache leaves idle past ``ttl_s``; returns pages evicted.

        Stale history ages out even under zero allocation pressure (the
        engine sweeps once per step).  Only leaves are taken, so a chain
        expires tail-first and no surviving cached page is ever
        orphaned; a parent whose last child expired becomes a leaf
        itself and is re-checked until nothing expired remains.
        """
        if self.ttl_s is None or not self._leaf_cached:
            return 0
        now = self._clock()
        evicted = 0
        while True:
            expired = [
                page
                for page in self._leaf_cached.values()
                if now - page.last_used > self.ttl_s
            ]
            if not expired:
                return evicted
            for page in sorted(expired, key=lambda p: p.last_used):
                self._evict_page(page, reason="ttl")
                evicted += 1

    def _bump(self, nbytes: int, fp16_nbytes: int) -> None:
        self.bytes_resident += nbytes
        self.fp16_bytes_resident += fp16_nbytes
        self.stats["peak_bytes_resident"] = max(
            self.stats["peak_bytes_resident"], self.bytes_resident
        )
        self.stats["peak_fp16_bytes_resident"] = max(
            self.stats["peak_fp16_bytes_resident"], self.fp16_bytes_resident
        )
        overrun = self.bytes_resident - self.byte_budget
        if overrun > 0:
            self.stats["budget_overruns"] += 1
            self.stats["max_overrun_bytes"] = max(
                self.stats["max_overrun_bytes"], overrun
            )

    def check_budget(self) -> None:
        """Raise if resident bytes exceed the budget (defense in depth).

        The scheduler's admission and capacity passes are supposed to
        make this impossible; calling it after every engine step turns
        any accounting drift into an immediate, attributable failure
        instead of silently growing memory.
        """
        if self.bytes_resident > self.byte_budget:
            raise RuntimeError(
                f"KV pool over budget: {self.bytes_resident} B resident "
                f"vs a {self.byte_budget} B budget "
                f"({self.stats['budget_overruns']} overrun allocations, "
                f"worst {self.stats['max_overrun_bytes']} B)"
            )
        # Drift in the *other* direction is just as much of a bug: a
        # negative counter means some free/swap path was paid twice and
        # the budget invariant has silently been relaxed.
        negatives = {
            name: value
            for name, value in (
                ("bytes_resident", self.bytes_resident),
                ("fp16_bytes_resident", self.fp16_bytes_resident),
                ("bytes_evictable", self.bytes_evictable),
                ("bytes_swapped", self.bytes_swapped),
                ("private_bytes", self.private_bytes),
                ("private_swapped_bytes", self.private_swapped_bytes),
            )
            if value < 0
        }
        if negatives:
            raise RuntimeError(
                f"negative KV pool byte counters (double free?): {negatives}"
            )

    # ------------------------------------------------------------------
    # Prefix lookup.
    # ------------------------------------------------------------------
    def peek(self, chain: str) -> KVPage | None:
        """The resident page for ``chain``, if any (no ref taken)."""
        page_id = self._index.get(chain)
        return None if page_id is None else self._pages[page_id]

    def _match(self, ids: np.ndarray) -> PrefixMatch:
        """Longest-prefix match of ``ids``: trie descent (token-level,
        may report a partial node) or the legacy whole-page chain walk
        in the trie-off fallback mode."""
        if self.trie is not None:
            return self.trie.match(ids, ROOT_CHAIN)
        matched: list[KVPage] = []
        chain, pos = ROOT_CHAIN, 0
        total = ids.shape[0]
        while pos < total:
            best = None
            for child in self._resident_children(chain):
                n = child.num_tokens
                if pos + n > total:
                    continue
                if not np.array_equal(child.token_array, ids[pos : pos + n]):
                    continue
                if best is None or n > best.num_tokens:
                    best = child
            if best is None:
                break
            matched.append(best)
            pos += best.num_tokens
            chain = best.chain
        return PrefixMatch(pages=matched)

    def match_prefix(self, token_ids) -> list[KVPage]:
        """Resident pages fully covering the longest prefix of
        ``token_ids`` (no partial node, no references taken)."""
        ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
        return self._match(ids).pages

    def lookup_prefix(self, token_ids) -> PrefixMatch:
        """The attach-path lookup: longest prefix match *with* the
        partial-node report, recording hit/miss observability counters
        and the matched-length histogram."""
        ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
        match = self._match(ids)
        matched = match.matched_tokens
        if matched == 0:
            self.stats["prefix_misses"] += 1
            outcome = "miss"
        elif match.partial is not None:
            self.stats["prefix_partial_hits"] += 1
            outcome = "partial"
        else:
            self.stats["prefix_full_hits"] += 1
            outcome = "full"
        self.registry.inc("pool.prefix_lookups", outcome=outcome)
        if matched:
            bucket = _hist_bucket(matched)
            self.matched_prefix_hist[bucket] = (
                self.matched_prefix_hist.get(bucket, 0) + 1
            )
        return match

    def probe_prefix(self, token_ids) -> int:
        """Tokens a lookup would match (full pages + partial head), with
        no counters recorded and no split performed — the cheap probe
        the cluster router's pre-flight dedup uses to place a group on
        the replica already holding its shared prefix."""
        ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
        return self._match(ids).matched_tokens

    # ------------------------------------------------------------------
    # Partial-page splitting.
    # ------------------------------------------------------------------
    def split_page(
        self, page: KVPage, head_tokens: int, split_payload
    ) -> tuple[KVPage, KVPage] | None:
        """Split a *cached* page at a token boundary into two bit-exact
        pages; returns ``(head, tail)`` or ``None`` when the page cannot
        be split safely.

        ``split_payload(payload, head_tokens)`` is the storage backend's
        splitter and must return ``(head_payload, head_nbytes,
        head_fp16_nbytes, tail_payload, tail_nbytes, tail_fp16_nbytes)``
        with byte totals exactly equal to the original page's — the
        split moves no bytes, encodes nothing, and leaves the budget
        untouched.  Only ref-0, unswapped cached pages are split: a
        pinned page's tenants hold the page object itself, and rewriting
        it under them would corrupt their paging state.  The old page's
        children (resident and swapped) are re-parented under the tail,
        so every existing chain stays reachable and the no-orphans
        invariant holds across the rewrite.
        """
        if self.trie is None:
            return None
        if page.ref_count > 0 or page.swapped_refs > 0:
            return None
        if page.page_id not in self._cached:
            return None
        if not 0 < head_tokens < page.num_tokens:
            raise ValueError(
                f"split point {head_tokens} must lie strictly inside the "
                f"page's {page.num_tokens} tokens"
            )
        head_ids = page.token_ids[:head_tokens]
        tail_ids = page.token_ids[head_tokens:]
        head_chain = chain_hash(page.parent, head_ids)
        tail_chain = chain_hash(head_chain, tail_ids)
        if head_chain in self._index or tail_chain in self._index:
            # A bit-identical head already exists (the descent would
            # normally have full-matched it); don't shadow it.
            return None
        (
            head_payload,
            head_nbytes,
            head_fp16,
            tail_payload,
            tail_nbytes,
            tail_fp16,
        ) = split_payload(page.payload, head_tokens)
        if head_nbytes + tail_nbytes != page.nbytes:
            raise RuntimeError(
                f"split bytes drifted: {head_nbytes} + {tail_nbytes} != "
                f"{page.nbytes}"
            )
        if head_fp16 + tail_fp16 != page.fp16_nbytes:
            raise RuntimeError(
                f"split fp16 bytes drifted: {head_fp16} + {tail_fp16} != "
                f"{page.fp16_nbytes}"
            )
        resident_children = dict(self._children.get(page.chain, {}))
        swapped_children = [
            child
            for child in self._swapped.values()
            if child.parent == page.chain
        ]
        self._cache_remove(page)
        self._unregister(page)
        head = KVPage(
            page_id=self._next_id,
            chain=head_chain,
            parent=page.parent,
            token_ids=head_ids,
            payload=head_payload,
            nbytes=int(head_nbytes),
            fp16_nbytes=int(head_fp16),
            hits=page.hits,
            last_used=page.last_used,
            cached_at=page.cached_at,
        )
        tail = KVPage(
            page_id=self._next_id + 1,
            chain=tail_chain,
            parent=head_chain,
            token_ids=tail_ids,
            payload=tail_payload,
            nbytes=int(tail_nbytes),
            fp16_nbytes=int(tail_fp16),
            hits=page.hits,
            last_used=page.last_used,
            cached_at=page.cached_at,
        )
        self._next_id += 2
        self._register(head)
        self._register(tail)
        self._bump(page.nbytes, page.fp16_nbytes)
        # Re-parent the old page's children under the tail (their chain
        # identities are untouched — only the edge moves).
        for child_chain, child_id in resident_children.items():
            child = self._pages[child_id]
            if self.trie is not None:
                self.trie.reparent(child, tail_chain)
            else:
                child.parent = tail_chain
            self._children.setdefault(tail_chain, {})[child_chain] = child_id
        self._children.pop(page.chain, None)
        for child in swapped_children:
            child.parent = tail_chain
        # Both halves go back into the cache with the original page's
        # age and hit history (a split is bookkeeping, not a use).
        self._cache_insert(tail)
        self._cache_insert(head)
        self.stats["pages_split"] += 1
        self.stats["split_tokens_salvaged"] += head_tokens
        self.obs.instant(
            "split",
            self.track,
            cat="pool",
            page_id=page.page_id,
            head_tokens=head_tokens,
            tokens=page.num_tokens,
        )
        return head, tail

    # ------------------------------------------------------------------
    # Pages: acquire / release / swap.
    # ------------------------------------------------------------------
    def acquire(
        self,
        chain: str,
        token_ids,
        build_payload,
        count_write: bool = True,
        parent: str = ROOT_CHAIN,
    ) -> tuple[KVPage, bool]:
        """A resident page for ``chain``: shared (ref++) or newly built.

        ``build_payload`` is called only on a miss and must return
        ``(payload, nbytes, fp16_nbytes)``.  Returns ``(page, shared)``.
        Pass ``count_write=False`` when the payload bytes were already
        accounted as written (promoting a private tail into a page moves
        no payload bytes).  ``parent`` is the preceding page's chain —
        the edge prefix matching walks and chain-aware eviction cascades
        along.
        """
        existing = self.peek(chain)
        if existing is not None:
            if existing.ref_count == 0 and existing.page_id in self._cached:
                self._cache_remove(existing)  # prefix-cache hit: re-pin
                self.stats["prefix_cache_hits"] += 1
            existing.ref_count += 1
            existing.hits += 1
            existing.last_used = self._clock()
            self.stats["pages_shared"] += 1
            self.stats["shared_bytes_saved"] += existing.nbytes
            self.stats["shared_fp16_bytes_saved"] += existing.fp16_nbytes
            return existing, True
        payload, nbytes, fp16_nbytes = build_payload()
        self._evict_for(nbytes)
        page = KVPage(
            page_id=self._next_id,
            chain=chain,
            parent=parent,
            token_ids=tuple(int(t) for t in token_ids),
            payload=payload,
            nbytes=int(nbytes),
            fp16_nbytes=int(fp16_nbytes),
            ref_count=1,
            last_used=self._clock(),
        )
        self._next_id += 1
        self._register(page)
        self._bump(page.nbytes, page.fp16_nbytes)
        self.stats["pages_allocated"] += 1
        if count_write:
            self.stats["bytes_written"] += page.nbytes
        return page, False

    def _register(self, page: KVPage) -> None:
        self._pages[page.page_id] = page
        self._index.setdefault(page.chain, page.page_id)
        self._children.setdefault(page.parent, {}).setdefault(
            page.chain, page.page_id
        )
        if self.trie is not None:
            self.trie.insert(page)
        # The parent gained a resident child: it is no longer a leaf.
        parent_id = self._index.get(page.parent)
        if parent_id is not None:
            self._leaf_cached.pop(parent_id, None)

    def _unregister(self, page: KVPage) -> None:
        del self._pages[page.page_id]
        if self.trie is not None:
            self.trie.remove(page)
        if self._index.get(page.chain) == page.page_id:
            del self._index[page.chain]
        siblings = self._children.get(page.parent)
        if siblings is not None and siblings.get(page.chain) == page.page_id:
            del siblings[page.chain]
            if not siblings:
                del self._children[page.parent]
        self._bump(-page.nbytes, -page.fp16_nbytes)
        # The parent may just have lost its last resident child: if it
        # is sitting in the cache, it becomes an eviction leaf.
        if not self._children.get(page.parent):
            parent_id = self._index.get(page.parent)
            if parent_id is not None and parent_id in self._cached:
                self._leaf_add(self._pages[parent_id])

    def _reachable(self, parent: str) -> bool:
        """Can a prefix-match walk reach a page chained off ``parent``?"""
        return parent == ROOT_CHAIN or parent in self._index

    def _maybe_demote(self, page: KVPage) -> None:
        """A page whose last resident ref just left: swap it out if a
        preempted request still needs it, otherwise retain it resident in
        the evictable prefix cache — unless its parent is no longer
        resident (no lookup could ever hit it again), in which case it is
        freed outright instead of wasting budget as dead weight."""
        if page.ref_count > 0:
            return
        if page.page_id in self._pages:
            if page.swapped_refs > 0:
                # The page leaves residency: cached descendants become
                # unreachable until it swaps back in — reclaim them now
                # rather than letting them squat in the budget.
                for child in self._resident_children(page.chain):
                    if child.page_id in self._cached:
                        self._evict_page(child, reason="cascade")
                self._unregister(page)
                self._swapped[page.page_id] = page
                self.bytes_swapped += page.nbytes
                self.stats["swap_out_bytes"] += page.nbytes
                self.obs.instant(
                    "swap_out",
                    self.track,
                    cat="pool",
                    tier="host",
                    nbytes=page.nbytes,
                    page_id=page.page_id,
                )
                return
            if not self._reachable(page.parent):
                self._unregister(page)
                self.stats["pages_freed"] += 1
                return
            now = self._clock()
            page.last_used = now
            page.cached_at = now
            self._cache_insert(page)
        elif page.swapped_refs == 0 and page.page_id in self._swapped:
            del self._swapped[page.page_id]
            self.bytes_swapped -= page.nbytes
            self.stats["pages_freed"] += 1

    def release(self, page: KVPage) -> None:
        """Drop a resident reference (request finished)."""
        if page.ref_count <= 0:
            raise ValueError(f"page {page.page_id} has no resident refs")
        page.ref_count -= 1
        self._maybe_demote(page)

    def swap_out(self, page: KVPage) -> None:
        """Turn a resident reference into a swapped one (preemption).

        Bytes move — and count as swap-out traffic — only if this was the
        page's last resident reference; a page still referenced by other
        running requests stays put.
        """
        if page.ref_count <= 0:
            raise ValueError(f"page {page.page_id} has no resident refs")
        page.ref_count -= 1
        page.swapped_refs += 1
        self._maybe_demote(page)

    def swap_in(self, page: KVPage) -> KVPage:
        """Turn a swapped reference back into a resident one.

        Returns the resident page now serving the reference: normally
        ``page`` itself, but if a bit-identical page for the same chain
        was rebuilt resident while this one was out (another tenant
        prefilled the same prefix), that copy is re-pinned instead and
        the swapped duplicate is dropped — no bytes move, and the budget
        never carries the same content twice.
        """
        if page.swapped_refs <= 0:
            raise ValueError(f"page {page.page_id} has no swapped refs")
        page.swapped_refs -= 1
        if page.page_id in self._pages:
            page.ref_count += 1  # stayed resident via another request
            return page
        resident_id = self._index.get(page.chain)
        if resident_id is not None:
            # Other preempted requests may still reference the swapped
            # copy; it is freed only when the last of them leaves.
            if page.swapped_refs == 0:
                del self._swapped[page.page_id]
                self.bytes_swapped -= page.nbytes
                self.stats["pages_freed"] += 1
            substitute = self._pages[resident_id]
            if (
                substitute.ref_count == 0
                and substitute.page_id in self._cached
            ):  # sitting in the prefix cache
                self._cache_remove(substitute)
                self.stats["prefix_cache_hits"] += 1
            substitute.ref_count += 1
            substitute.hits += 1
            substitute.last_used = self._clock()
            self.stats["pages_shared"] += 1
            self.stats["shared_bytes_saved"] += substitute.nbytes
            self.stats["shared_fp16_bytes_saved"] += substitute.fp16_nbytes
            return substitute
        del self._swapped[page.page_id]
        self._evict_for(page.nbytes)
        self._register(page)
        self.bytes_swapped -= page.nbytes
        page.ref_count += 1
        page.last_used = self._clock()
        self._bump(page.nbytes, page.fp16_nbytes)
        self.stats["swap_in_bytes"] += page.nbytes
        self.obs.instant(
            "swap_in",
            self.track,
            cat="pool",
            tier="host",
            nbytes=page.nbytes,
            page_id=page.page_id,
        )
        return page

    # ------------------------------------------------------------------
    # Private (unpaged tail) reservations.
    # ------------------------------------------------------------------
    def reserve_private(self, nbytes: int, fp16_nbytes: int) -> None:
        """Account bytes for a request's not-yet-paged tail segments."""
        self._evict_for(nbytes)
        self.private_bytes += nbytes
        self._bump(nbytes, fp16_nbytes)
        self.stats["bytes_written"] += nbytes

    def _check_private_release(self, nbytes: int, fp16_nbytes: int) -> None:
        """Refuse to free more private bytes than are reserved.

        Like :meth:`release` on a ref-0 page, a double free here is a
        loud error: silently driving ``private_bytes`` negative would
        *relax* the byte budget by exactly the over-freed amount.
        """
        if nbytes < 0 or fp16_nbytes < 0:
            raise ValueError("private byte counts must be non-negative")
        if nbytes > self.private_bytes:
            raise ValueError(
                f"freeing {nbytes} B of private KV but only "
                f"{self.private_bytes} B are reserved (double free?)"
            )
        if fp16_nbytes > self.fp16_bytes_resident:
            raise ValueError(
                f"freeing {fp16_nbytes} fp16-equivalent B but only "
                f"{self.fp16_bytes_resident} B are resident (double free?)"
            )

    def free_private(self, nbytes: int, fp16_nbytes: int) -> None:
        self._check_private_release(nbytes, fp16_nbytes)
        self.private_bytes -= nbytes
        self._bump(-nbytes, -fp16_nbytes)

    def swap_private_out(self, nbytes: int, fp16_nbytes: int) -> None:
        self.free_private(nbytes, fp16_nbytes)
        self.bytes_swapped += nbytes
        self.private_swapped_bytes += nbytes
        self.stats["swap_out_bytes"] += nbytes
        self.obs.instant(
            "swap_out",
            self.track,
            cat="pool",
            tier="host",
            nbytes=nbytes,
            private=True,
        )

    def swap_private_in(self, nbytes: int, fp16_nbytes: int) -> None:
        if nbytes < 0 or fp16_nbytes < 0:
            raise ValueError("private byte counts must be non-negative")
        if nbytes > self.private_swapped_bytes:
            raise ValueError(
                f"swapping in {nbytes} private B but only "
                f"{self.private_swapped_bytes} private B are swapped out "
                f"(double swap-in?)"
            )
        self._evict_for(nbytes)
        self.bytes_swapped -= nbytes
        self.private_swapped_bytes -= nbytes
        self.private_bytes += nbytes
        self._bump(nbytes, fp16_nbytes)
        self.stats["swap_in_bytes"] += nbytes
        self.obs.instant(
            "swap_in",
            self.track,
            cat="pool",
            tier="host",
            nbytes=nbytes,
            private=True,
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def num_resident_pages(self) -> int:
        return len(self._pages)

    @property
    def num_swapped_pages(self) -> int:
        return len(self._swapped)

    @property
    def num_cached_pages(self) -> int:
        return len(self._cached)

    def unreachable_cached_pages(self) -> list[KVPage]:
        """Cached pages no prefix-match walk from ``ROOT_CHAIN`` reaches.

        These are pure waste — lookup can never hit them — so the
        chain-aware eviction, demotion and split paths must keep this
        empty; a non-empty return is an invariant violation tests fail
        on.
        """
        reachable = {ROOT_CHAIN}
        frontier = [ROOT_CHAIN]
        while frontier:
            for child in self._resident_children(frontier.pop()):
                if child.chain not in reachable:
                    reachable.add(child.chain)
                    frontier.append(child.chain)
        return [
            page
            for page in self._cached.values()
            if page.chain not in reachable
        ]

    def leaf_index_violations(self) -> list[str]:
        """Disagreements between the incremental leaf index and a ground
        truth recomputation — must be empty (tests assert it)."""
        truth = {
            page.page_id
            for page in self._cached.values()
            if not self._children.get(page.chain)
        }
        indexed = set(self._leaf_cached)
        out = []
        for pid in sorted(truth - indexed):
            out.append(f"page {pid} is a cache leaf but not indexed")
        for pid in sorted(indexed - truth):
            out.append(f"page {pid} is indexed as a leaf but is not one")
        return out

    def snapshot(self) -> dict:
        """Current occupancy + lifetime counters (for reports)."""
        return {
            "byte_budget": self.byte_budget,
            "page_tokens": self.page_tokens,
            "trie_enabled": self.trie is not None,
            "ttl_s": self.ttl_s,
            "split_min_tokens": self.split_min_tokens,
            "bytes_resident": self.bytes_resident,
            "bytes_active": self.bytes_active,
            "bytes_evictable": self.bytes_evictable,
            "fp16_bytes_resident": self.fp16_bytes_resident,
            "bytes_swapped": self.bytes_swapped,
            "private_bytes": self.private_bytes,
            "private_swapped_bytes": self.private_swapped_bytes,
            "resident_pages": self.num_resident_pages,
            "swapped_pages": self.num_swapped_pages,
            "cached_pages": self.num_cached_pages,
            "leaf_cached_pages": len(self._leaf_cached),
            "matched_prefix_hist": dict(
                sorted(
                    self.matched_prefix_hist.items(),
                    key=lambda kv: int(kv[0].split("-")[0]),
                )
            ),
            "trie_stats": (
                dict(self.trie.stats) if self.trie is not None else {}
            ),
            **self.stats,
        }
