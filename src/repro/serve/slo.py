"""Per-request service-level objectives for the serving stack.

An :class:`SLO` states what a request's latency is *supposed* to be:
time to first token (queueing + prefill), the per-token decode gap, and
optionally end-to-end completion.  The deadline-aware scheduling policy
(:class:`~repro.serve.scheduler.DeadlinePolicy`) turns those targets
into admission order (earliest TTFT deadline first), preemption choice
(displace the request with the most slack) and load shedding (a request
whose TTFT deadline has already passed before its prefill even started
is refused instead of served late — the same 429 path a budget
rejection takes).

Deadlines are computed against the engine's clock — wall or virtual —
so SLO behaviour is exactly as deterministic as the replay driving it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SLO", "next_deadline_s", "slack_s", "slo_attainment"]


@dataclass(frozen=True)
class SLO:
    """Latency targets for one request; ``None`` means "no objective".

    ``ttft_s`` bounds arrival -> first token, ``inter_token_s`` bounds
    the gap between consecutive decode tokens, ``e2e_s`` bounds arrival
    -> last token.  All targets are in (simulated or wall) seconds.
    """

    ttft_s: float | None = None
    inter_token_s: float | None = None
    e2e_s: float | None = None

    def __post_init__(self) -> None:
        for name in ("ttft_s", "inter_token_s", "e2e_s"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def has_deadline(self) -> bool:
        return any(
            target is not None
            for target in (self.ttft_s, self.inter_token_s, self.e2e_s)
        )


def next_deadline_s(request) -> float:
    """When the request's *next* token is due, in clock seconds.

    Before the first token: the TTFT deadline (arrival + ``ttft_s``).
    After it: the inter-token deadline (last token + ``inter_token_s``),
    bounded by the e2e deadline when one is set.  Requests without an
    applicable objective get ``+inf`` — they are never "late".
    """
    slo: SLO | None = getattr(request, "slo", None)
    if slo is None:
        return math.inf
    deadline = math.inf
    metrics = request.metrics
    if metrics.first_token_s is None:
        if slo.ttft_s is not None:
            deadline = metrics.arrival_s + slo.ttft_s
    elif slo.inter_token_s is not None:
        deadline = metrics.token_s[-1] + slo.inter_token_s
    if slo.e2e_s is not None:
        deadline = min(deadline, metrics.arrival_s + slo.e2e_s)
    return deadline


def slack_s(request, now: float) -> float:
    """Seconds until the request's next deadline (negative = already
    late, ``+inf`` = no objective).  The deadline policy preempts the
    request with the *most* slack: the one that can best absorb a swap
    round-trip without blowing its SLO."""
    return next_deadline_s(request) - now


def slo_attainment(requests) -> dict:
    """Did the requests that declared SLOs actually meet them?

    Returns flat counters (summable across cluster replicas) plus
    attainment fractions.  A request meets its TTFT objective if its
    first token landed within ``ttft_s`` of arrival; it meets its
    inter-token objective if *every* decode gap stayed within
    ``inter_token_s``.  Requests that never produced a first token
    (shed, or still queued at report time) count as TTFT misses — load
    shedding is a policy choice, not an accounting trick.
    """
    slo_requests = ttft_met = ttft_missed = itl_met = itl_missed = 0
    for request in requests:
        slo: SLO | None = getattr(request, "slo", None)
        if slo is None or not slo.has_deadline:
            continue
        slo_requests += 1
        metrics = request.metrics
        if slo.ttft_s is not None:
            ttft = metrics.ttft_s
            if ttft is not None and ttft <= slo.ttft_s:
                ttft_met += 1
            else:
                ttft_missed += 1
        if slo.inter_token_s is not None:
            gaps = metrics.inter_token_s
            if all(gap <= slo.inter_token_s for gap in gaps):
                itl_met += 1
            else:
                itl_missed += 1

    def _frac(met: int, missed: int) -> float | None:
        total = met + missed
        return met / total if total else None

    return {
        "slo_requests": slo_requests,
        "slo_ttft_met": ttft_met,
        "slo_ttft_missed": ttft_missed,
        "slo_itl_met": itl_met,
        "slo_itl_missed": itl_missed,
        "slo_ttft_attainment": _frac(ttft_met, ttft_missed),
        "slo_itl_attainment": _frac(itl_met, itl_missed),
    }
