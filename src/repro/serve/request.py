"""Request lifecycle: states, per-request latency metrics, the Request."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class RequestState(enum.Enum):
    """Where a request sits in the continuous-batching lifecycle."""

    WAITING = "waiting"        # submitted, KV not yet allocated
    PREFILLING = "prefilling"  # admitted; prompt ingested chunk by chunk
    RUNNING = "running"        # in the decode batch, KV resident
    SWAPPED = "swapped"        # preempted; KV swapped out in compressed form
    FINISHED = "finished"      # done; KV released
    SHED = "shed"              # refused at admission (SLO blown); no KV ever held


@dataclass
class RequestMetrics:
    """Wall-clock latency record of one request."""

    arrival_s: float = 0.0
    first_token_s: float | None = None
    finish_s: float | None = None
    #: Timestamp of every generated token (the first is the prefill token).
    token_s: list[float] = field(default_factory=list)
    preemptions: int = 0
    #: Prefill chunks this request's prompt was ingested in (1 = whole
    #: prompt in one pass, the unchunked path).
    prefill_chunks: int = 0
    #: Prompt tokens served straight from the prefix cache at admission
    #: (0 = cold start), and the pages they were attached from; prompt
    #: tokens re-encoded despite the cache = ``prompt_len - cached_tokens``.
    cached_tokens: int = 0
    cached_pages: int = 0
    #: The slice of ``cached_tokens`` salvaged by a partial-page split
    #: (the match ended mid-page and the pool split at the divergence).
    split_tokens: int = 0

    @property
    def ttft_s(self) -> float | None:
        """Time to first token: queueing + prefill."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def e2e_s(self) -> float | None:
        """End-to-end latency from arrival to last token."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def inter_token_s(self) -> list[float]:
        """Per-token decode latencies (gaps between token timestamps)."""
        return [b - a for a, b in zip(self.token_s, self.token_s[1:])]


@dataclass(eq=False)
class Request:
    """One generation request moving through the serving engine.

    Identity semantics (``eq=False``): the scheduler moves requests
    between queues by object identity, and field equality would choke on
    the ndarray prompt anyway.
    """

    request_id: str
    prompt: np.ndarray
    max_new_tokens: int
    eos_token: int | None = None
    state: RequestState = RequestState.WAITING
    generated: list[int] = field(default_factory=list)
    metrics: RequestMetrics = field(default_factory=RequestMetrics)
    #: Paged KV state; attached by the engine at admission.
    kv: object | None = None
    #: Prompt tokens ingested so far (chunked prefill); equals
    #: ``prompt_len`` once the prompt is fully in the cache.
    prefill_pos: int = 0
    #: Replica index, set by the cluster router when it places the
    #: request; ``None`` on a single-engine run.
    replica: int | None = None
    #: Conversation this request is one turn of (``repro.serve.session``);
    #: ``None`` for standalone requests.
    session_id: str | None = None
    #: Latency objectives (``repro.serve.slo.SLO``); read by the
    #: deadline-aware scheduling policy, ignored by FCFS.
    slo: object | None = None
    #: Tenant this request bills to — the front-end's rate limits and
    #: fairness act on it; the engine carries it for attribution only.
    tenant: str | None = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.int64).reshape(-1)
        if self.prompt.size == 0:
            raise ValueError("empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")

    @property
    def prompt_len(self) -> int:
        return int(self.prompt.size)

    @property
    def num_tokens(self) -> int:
        """Prompt plus generated tokens so far."""
        return self.prompt_len + len(self.generated)

    @property
    def prefill_done(self) -> bool:
        """True once every prompt token has been ingested into the KV."""
        return self.prefill_pos >= self.prompt_len

    @property
    def terminal(self) -> bool:
        """True once the engine will never touch this request again —
        finished normally, or shed at admission by the policy."""
        return self.state in (RequestState.FINISHED, RequestState.SHED)

    @property
    def finished(self) -> bool:
        if len(self.generated) >= self.max_new_tokens:
            return True
        return bool(
            self.eos_token is not None
            and self.generated
            and self.generated[-1] == self.eos_token
        )
