"""Multi-turn sessions: cross-turn compressed-KV reuse over the engine.

A :class:`Session` is one conversation against a
:class:`~repro.serve.engine.ServingEngine` or
:class:`~repro.serve.cluster.ClusterRouter`: turn N+1 is submitted as
the full history (every prior prompt and every generated token) plus
the new user text.  Because a finished request's final partial page is
promoted into the pool's hash chain at release, the next turn's
admission attaches the *entire* stored history — full pages and the
promoted tail alike — re-encoding nothing and forwarding only the new
suffix through the model.  The session itself holds no KV: reuse rides
entirely on the pool's prefix cache, so history survives engine
restarts of the session object, competes fairly with other tenants for
budget, and degrades gracefully (a partially evicted history simply
re-encodes the evicted part).

On a cluster, turns carry their ``session_id`` so the router pins the
whole conversation to one replica — the only place its cached history
lives.

:func:`replay_sessions` drives a generated
:class:`~repro.serve.workload.SessionTrace` workload on a virtual
clock: turn k+1 of each session is submitted once simulated time passes
turn k's finish plus its seeded think-time gap.
"""

from __future__ import annotations

import numpy as np

from .pool import BudgetExceededError
from .request import Request
from .workload import SessionTrace, StepCostModel, VirtualClock

__all__ = ["Session", "replay_sessions"]


class Session:
    """One multi-turn conversation routed at a serving engine/cluster."""

    def __init__(self, target, session_id: str, eos_token: int | None = None):
        self.target = target
        self.session_id = str(session_id)
        self.eos_token = eos_token
        #: The conversation so far: every turn's prompt delta + reply.
        self.history = np.zeros(0, dtype=np.int64)
        #: One engine request per submitted turn, in order.
        self.requests: list[Request] = []

    @property
    def num_turns(self) -> int:
        return len(self.requests)

    @property
    def active(self) -> Request | None:
        """The in-flight turn, or ``None`` between turns."""
        if self.requests and self.requests[-1].metrics.finish_s is None:
            return self.requests[-1]
        return None

    def _fold_last_turn(self) -> None:
        """Absorb the finished last turn into the history."""
        last = self.requests[-1]
        self.history = np.concatenate(
            [last.prompt, np.asarray(last.generated, dtype=np.int64)]
        )

    def submit_turn(
        self, user_tokens: np.ndarray, max_new_tokens: int
    ) -> Request:
        """Submit the next turn: history + new user text.

        The previous turn must have finished (its reply is part of this
        turn's prompt).  Raises whatever the target's ``submit`` raises —
        notably :class:`~repro.serve.pool.BudgetExceededError` when the
        grown conversation can no longer ever fit the pool budget.
        """
        if self.active is not None:
            raise RuntimeError(
                f"session {self.session_id!r}: previous turn "
                f"{self.requests[-1].request_id!r} is still in flight"
            )
        if self.requests:
            self._fold_last_turn()
        user_tokens = np.asarray(user_tokens, dtype=np.int64).reshape(-1)
        prompt = np.concatenate([self.history, user_tokens])
        request = self.target.submit(
            prompt,
            max_new_tokens,
            request_id=f"{self.session_id}/turn-{self.num_turns}",
            eos_token=self.eos_token,
            session_id=self.session_id,
        )
        self.requests.append(request)
        return request

    def turn_reports(self) -> list[dict]:
        """Per-turn reuse record: pages hit, tokens re-encoded, TTFT."""
        out = []
        for turn, request in enumerate(self.requests):
            m = request.metrics
            out.append(
                {
                    "turn": turn,
                    "request_id": request.request_id,
                    "session_id": self.session_id,
                    "prompt_tokens": request.prompt_len,
                    "cached_tokens": m.cached_tokens,
                    "cached_pages": m.cached_pages,
                    "split_tokens": m.split_tokens,
                    "reencoded_tokens": request.prompt_len - m.cached_tokens,
                    "generated_tokens": len(request.generated),
                    "ttft_s": m.ttft_s,
                    "e2e_s": m.e2e_s,
                }
            )
        return out


def replay_sessions(
    target,
    traces: list[SessionTrace],
    clock: VirtualClock,
    step_cost: StepCostModel | None = None,
    max_steps: int = 500_000,
) -> dict:
    """Drive ``target`` through multi-turn session traces on a clock.

    Each session's first turn arrives at its ``start_s``; turn k+1
    arrives at turn k's finish plus the trace's seeded think-time gap.
    Time accounting is either *synchronous* (the engine was built with
    ``step_cost=`` and charges its own clock as work happens — leave
    ``step_cost`` unset here) or replay-side (pass a ``step_cost``; each
    ``target.step()`` is charged as one fused-step roofline, which is
    also how a multi-replica cluster must be charged).  Turns the target
    rejects outright (the grown conversation can never fit the budget)
    abort their session and are counted.

    Returns replay totals plus the live :class:`Session` objects under
    ``"sessions"`` — feed their ``turn_reports()`` to
    :func:`repro.serve.metrics.summarize_turns` for the reuse summary.
    """
    engine_charges = getattr(target, "step_cost", None) is not None
    if step_cost is not None and engine_charges:
        raise ValueError(
            "target already charges its own clock (step_cost set on the "
            "engine); passing a replay-side step_cost would double-count"
        )
    if step_cost is None and not engine_charges:
        step_cost = StepCostModel()

    states = [
        {
            "trace": trace,
            "session": Session(target, trace.session_id),
            "next": 0,
            "ready_s": trace.start_s,
            "request": None,
        }
        for trace in traces
    ]
    submitted = rejected = steps = tokens = 0

    def pending(state) -> bool:
        return state["next"] < state["trace"].num_turns

    while True:
        for state in states:
            request = state["request"]
            if request is not None:
                if request.metrics.finish_s is None:
                    continue
                state["request"] = None
                if pending(state):
                    gap = state["trace"].turns[state["next"]].think_s
                    state["ready_s"] = request.metrics.finish_s + gap
            if pending(state) and state["ready_s"] <= clock.now_s:
                turn = state["trace"].turns[state["next"]]
                try:
                    request = state["session"].submit_turn(
                        turn.user_tokens, turn.max_new_tokens
                    )
                except BudgetExceededError:
                    rejected += 1
                    state["next"] = state["trace"].num_turns  # abort
                else:
                    # TTFT anchors on when the user hit enter, not on
                    # the step boundary where the submit landed.
                    request.metrics.arrival_s = state["ready_s"]
                    state["request"] = request
                    state["next"] += 1
                    submitted += 1
        if target.has_work:
            if steps >= max_steps:
                raise RuntimeError(f"replay did not drain in {max_steps} steps")
            tokens += target.step()
            steps += 1
            if not engine_charges:
                clock.advance(step_cost(target.last_step))
        else:
            upcoming = [
                state["ready_s"]
                for state in states
                if state["request"] is None and pending(state)
            ]
            if not upcoming:
                break
            clock.jump_to(min(upcoming))
    return {
        "sessions": [state["session"] for state in states],
        "num_sessions": len(states),
        "turns_total": sum(trace.num_turns for trace in traces),
        "turns_submitted": submitted,
        "turns_rejected": rejected,
        "steps": steps,
        "tokens_processed": tokens,
        "simulated_s": clock.now_s,
    }
