"""Multi-turn sessions: cross-turn compressed-KV reuse over the engine.

A :class:`Session` is one conversation against a
:class:`~repro.serve.engine.ServingEngine`, a
:class:`~repro.serve.cluster.ClusterRouter`, or the async front-end
(:class:`~repro.serve.frontend.AsyncServingEngine`): turn N+1 is
submitted as the full history (every prior prompt and every generated
token) plus the new user text.  Because a finished request's final
partial page is promoted into the pool's hash chain at release, the
next turn's admission attaches the *entire* stored history — full pages
and the promoted tail alike — re-encoding nothing and forwarding only
the new suffix through the model.  The session itself holds no KV:
reuse rides entirely on the pool's prefix cache, so history survives
engine restarts of the session object, competes fairly with other
tenants for budget, and degrades gracefully (a partially evicted
history simply re-encodes the evicted part).

On a cluster, turns carry their ``session_id`` so the router pins the
whole conversation to one replica — the only place its cached history
lives.

:func:`replay_sessions` drives a generated
:class:`~repro.serve.workload.SessionTrace` workload on a virtual
clock, as the second closed-loop client of the async front-end (the
first is :func:`~repro.serve.workload.replay_trace`): each session is
one coroutine that awaits its turn's stream, sleeps through the seeded
think-time gap, and submits the next turn.
"""

from __future__ import annotations

import numpy as np

from .pool import BudgetExceededError
from .request import Request
from .workload import SessionTrace, StepCostModel, VirtualClock

__all__ = ["Session", "replay_sessions"]


class Session:
    """One multi-turn conversation routed at a serving engine/cluster.

    ``submit_turn`` returns whatever the target's ``submit`` returns —
    an engine-side :class:`~repro.serve.request.Request` for the
    synchronous targets, a stream handle for the async front-end; the
    session tracks either transparently.
    """

    def __init__(
        self,
        target,
        session_id: str,
        eos_token: int | None = None,
        slo=None,
        tenant: str | None = None,
    ):
        self.target = target
        self.session_id = str(session_id)
        self.eos_token = eos_token
        self.slo = slo
        self.tenant = tenant
        #: The conversation so far: every turn's prompt delta + reply.
        self.history = np.zeros(0, dtype=np.int64)
        #: What ``submit`` returned for each turn, in order (Request or
        #: stream handle).
        self._submissions: list = []

    @staticmethod
    def _request_of(item) -> Request | None:
        """The engine-side request behind one submission (``None`` while
        a front-end handle still waits in a tenant queue)."""
        if isinstance(item, Request):
            return item
        return item.request

    @property
    def requests(self) -> list[Request]:
        """Engine-side requests of every dispatched turn, in order."""
        resolved = (self._request_of(item) for item in self._submissions)
        return [request for request in resolved if request is not None]

    @property
    def num_turns(self) -> int:
        return len(self._submissions)

    @property
    def active(self):
        """The in-flight turn (request or queued handle), or ``None``
        between turns.  A shed or timed-out turn is not active — its
        stream will never produce the reply, so the conversation can
        only move on without it."""
        if not self._submissions:
            return None
        item = self._submissions[-1]
        request = self._request_of(item)
        if request is None:
            # Front-end handle not yet dispatched: in flight unless the
            # handle already failed (shed/rejected at the front door).
            return None if item.done else item
        return None if request.terminal else request

    def _fold_last_turn(self) -> None:
        """Absorb the finished last turn into the history.  A turn that
        never finished (rejected, shed, abandoned) contributes nothing —
        its user text was never answered, so the next turn's prompt
        drops it, exactly like a chat client discarding a failed send."""
        last = self._request_of(self._submissions[-1])
        if last is None or last.metrics.finish_s is None:
            return
        self.history = np.concatenate(
            [last.prompt, np.asarray(last.generated, dtype=np.int64)]
        )

    def submit_turn(self, user_tokens: np.ndarray, max_new_tokens: int):
        """Submit the next turn: history + new user text.

        The previous turn must have finished (its reply is part of this
        turn's prompt).  Raises whatever the target's ``submit`` raises —
        notably :class:`~repro.serve.pool.BudgetExceededError` when the
        grown conversation can no longer ever fit the pool budget.
        """
        if self.active is not None:
            last = self._submissions[-1]
            request = self._request_of(last)
            in_flight = request.request_id if request is not None else "queued"
            raise RuntimeError(
                f"session {self.session_id!r}: previous turn "
                f"{in_flight!r} is still in flight"
            )
        if self._submissions:
            self._fold_last_turn()
        user_tokens = np.asarray(user_tokens, dtype=np.int64).reshape(-1)
        prompt = np.concatenate([self.history, user_tokens])
        item = self.target.submit(
            prompt,
            max_new_tokens,
            request_id=f"{self.session_id}/turn-{self.num_turns}",
            eos_token=self.eos_token,
            session_id=self.session_id,
            slo=self.slo,
            tenant=self.tenant,
        )
        self._submissions.append(item)
        return item

    def turn_reports(self) -> list[dict]:
        """Per-turn reuse record: pages hit, tokens re-encoded, TTFT."""
        out = []
        for turn, request in enumerate(self.requests):
            m = request.metrics
            out.append(
                {
                    "turn": turn,
                    "request_id": request.request_id,
                    "session_id": self.session_id,
                    "prompt_tokens": request.prompt_len,
                    "cached_tokens": m.cached_tokens,
                    "cached_pages": m.cached_pages,
                    "split_tokens": m.split_tokens,
                    "reencoded_tokens": request.prompt_len - m.cached_tokens,
                    "generated_tokens": len(request.generated),
                    "ttft_s": m.ttft_s,
                    "e2e_s": m.e2e_s,
                }
            )
        return out


def replay_sessions(
    target,
    traces: list[SessionTrace],
    clock: VirtualClock,
    step_cost: StepCostModel | None = None,
    max_steps: int = 500_000,
) -> dict:
    """Drive ``target`` through multi-turn session traces on a clock.

    Each session runs as one front-end client coroutine: its first turn
    arrives at the trace's ``start_s``; turn k+1 arrives at turn k's
    finish plus the trace's seeded think-time gap, with the stream
    awaited in between.  Time accounting is either *synchronous* (the
    engine was built with ``step_cost=`` and charges its own clock as
    work happens — leave ``step_cost`` unset here) or replay-side (pass
    a ``step_cost``; the front-end pump charges each fused step's
    roofline, which is also how a multi-replica cluster must be
    charged).  Turns the target rejects outright (the grown
    conversation can never fit the budget) or sheds at admission (SLO
    blown under a deadline policy) abort their session and are counted.

    Returns replay totals plus the live :class:`Session` objects under
    ``"sessions"`` — feed their ``turn_reports()`` to
    :func:`repro.serve.metrics.summarize_turns` for the reuse summary.
    """
    from .frontend import AsyncServingEngine, RequestShedError

    if isinstance(target, AsyncServingEngine):
        frontend = target
    else:
        engine_charges = getattr(target, "step_cost", None) is not None
        if step_cost is not None and engine_charges:
            raise ValueError(
                "target already charges its own clock (step_cost set on "
                "the engine); passing a replay-side step_cost would "
                "double-count"
            )
        if step_cost is None and not engine_charges:
            step_cost = StepCostModel()
        frontend = AsyncServingEngine(
            target, step_cost=step_cost, max_steps=max_steps
        )
    sessions = [Session(frontend, trace.session_id) for trace in traces]
    counts = {"submitted": 0, "rejected": 0}

    async def _drive(trace: SessionTrace, session: Session) -> None:
        ready = trace.start_s
        for turn in trace.turns:
            await frontend.sleep_until(ready)
            try:
                handle = session.submit_turn(
                    turn.user_tokens, turn.max_new_tokens
                )
            except BudgetExceededError:
                counts["rejected"] += 1
                return  # abort: every later turn needs this one's reply
            # TTFT anchors on when the user hit enter, not on the step
            # boundary where the submit landed.
            handle.anchor_arrival(ready)
            counts["submitted"] += 1
            try:
                await handle.result()
            except RequestShedError:
                counts["rejected"] += 1
                return
            finish = handle.request.metrics.finish_s
            next_index = session.num_turns
            if next_index < trace.num_turns:
                ready = finish + trace.turns[next_index].think_s

    frontend.drive(
        *(_drive(trace, s) for trace, s in zip(traces, sessions))
    )
    return {
        "sessions": sessions,
        "num_sessions": len(sessions),
        "turns_total": sum(trace.num_turns for trace in traces),
        "turns_submitted": counts["submitted"],
        "turns_rejected": counts["rejected"],
        "steps": frontend.steps,
        "tokens_processed": frontend.tokens_processed,
        "simulated_s": clock.now_s,
    }
