"""Token-level radix-trie prefix index over the paged KV pool.

The pool's hash chain is page-granular: two prompts that agree on 120 of
a 128-token page hash to different chains and share nothing.  The trie
replaces that lookup with token-level longest-prefix descent: every
resident page is a trie node hanging off its parent's chain, children
are bucketed by their first token (so descent touches one bucket per
node instead of scanning every sibling), and token comparison inside a
node is one vectorized ``numpy`` equality over the node's token array.

A query descends from ``ROOT_CHAIN``; each step either *fully* matches a
child (consume its tokens, descend into it) or stops — possibly with a
*partial* match, a child whose first ``k`` tokens continue the prompt
before diverging.  The pool turns a partial match into a page split at
the divergence point (see ``PagedKVPool.split_page``), so the next
lookup full-matches the shared head; the trie itself only reports where
the split should land.

The trie stores no payloads and takes no references — it is a pure
index, kept in sync by the pool's register/unregister hooks, and every
node it holds is a resident ``KVPage``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PrefixMatch", "PrefixTrie"]


def common_prefix_len(a: np.ndarray, b: np.ndarray) -> int:
    """Length of the longest common prefix of two 1-D int arrays."""
    n = min(a.shape[0], b.shape[0])
    if n == 0:
        return 0
    neq = a[:n] != b[:n]
    return int(np.argmax(neq)) if neq.any() else n


@dataclass
class PrefixMatch:
    """What a longest-prefix descent found for one prompt.

    ``pages`` are the fully matched nodes, root to leaf; ``partial`` is
    the node the descent diverged inside (``None`` when the descent
    ended cleanly at a node boundary) and ``partial_tokens`` how many of
    its tokens continue the prompt past the full matches.
    """

    pages: list = field(default_factory=list)
    partial: object | None = None
    partial_tokens: int = 0

    @property
    def full_tokens(self) -> int:
        return sum(page.num_tokens for page in self.pages)

    @property
    def matched_tokens(self) -> int:
        """Prompt tokens covered, counting the partial node's head."""
        return self.full_tokens + self.partial_tokens


class PrefixTrie:
    """First-token-bucketed radix index of resident pages.

    Nodes are ``KVPage`` objects keyed by their ``chain`` identity;
    edges mirror the pool's parent->child chain structure.  Unlike a
    classical radix trie, siblings are *allowed* to share a first token
    (page-granular hashing creates them); the bucket keeps them under
    one key and the vectorized compare picks the best, so descent stays
    O(prompt length) with a small constant instead of O(children) per
    node.
    """

    def __init__(self):
        #: chain -> page, every resident page indexed.
        self._nodes: dict[str, object] = {}
        #: parent chain -> first token -> {chain: page}.
        self._edges: dict[str, dict[int, dict[str, object]]] = {}
        #: Descent-cost observability (the pool folds these into its
        #: snapshot): ``descents`` counts :meth:`match` calls,
        #: ``nodes_visited`` the trie nodes compared across all
        #: descents, ``partial_stops`` the descents that ended inside a
        #: node (split opportunities).
        self.stats = {
            "descents": 0,
            "nodes_visited": 0,
            "partial_stops": 0,
        }

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, chain: str) -> bool:
        return chain in self._nodes

    def insert(self, page) -> None:
        """Index one resident page under its parent chain."""
        if page.chain in self._nodes:
            return  # duplicate chain: first registration wins, like _index
        self._nodes[page.chain] = page
        first = int(page.token_array[0])
        bucket = self._edges.setdefault(page.parent, {}).setdefault(first, {})
        bucket[page.chain] = page

    def remove(self, page) -> None:
        """Drop one page from the index (it left residency)."""
        if self._nodes.get(page.chain) is not page:
            return
        del self._nodes[page.chain]
        buckets = self._edges.get(page.parent)
        if buckets is None:
            return
        first = int(page.token_array[0])
        bucket = buckets.get(first)
        if bucket is not None and bucket.get(page.chain) is page:
            del bucket[page.chain]
            if not bucket:
                del buckets[first]
            if not buckets:
                del self._edges[page.parent]

    def reparent(self, page, new_parent: str) -> None:
        """Move a page under a new parent chain (page splits use this)."""
        self.remove(page)
        page.parent = new_parent
        self.insert(page)

    def match(self, ids: np.ndarray, root: str) -> PrefixMatch:
        """Longest-prefix descent of ``ids`` from the ``root`` chain.

        Greedy: at each node the candidate matching the most immediate
        tokens wins — a full child match descends, a longer partial
        match ends the descent there (after a split the diverging token
        can never match deeper, so stopping is exact, not a heuristic).
        """
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        out = PrefixMatch()
        self.stats["descents"] += 1
        chain, pos = root, 0
        while pos < ids.shape[0]:
            bucket = self._edges.get(chain, {}).get(int(ids[pos]))
            if not bucket:
                break
            self.stats["nodes_visited"] += len(bucket)
            best_full = None
            best_partial, best_partial_tokens = None, 0
            suffix = ids[pos:]
            for page in bucket.values():
                tokens = page.token_array
                n = tokens.shape[0]
                if n <= suffix.shape[0] and np.array_equal(
                    tokens, suffix[:n]
                ):
                    if best_full is None or n > best_full.num_tokens:
                        best_full = page
                    continue
                cp = common_prefix_len(tokens, suffix)
                if 0 < cp < n and cp > best_partial_tokens:
                    best_partial, best_partial_tokens = page, cp
            if best_full is not None and (
                best_full.num_tokens >= best_partial_tokens
            ):
                out.pages.append(best_full)
                pos += best_full.num_tokens
                chain = best_full.chain
                continue
            if best_partial is not None:
                out.partial = best_partial
                out.partial_tokens = best_partial_tokens
                self.stats["partial_stops"] += 1
            break
        return out
