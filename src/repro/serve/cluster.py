"""Multi-replica serving: a front-end router over N engines.

:class:`ClusterRouter` owns a set of independent
:class:`~repro.serve.engine.ServingEngine` replicas and places every
incoming request with **prefix-affinity + least-active-bytes** routing:
the first pages of the prompt hash to the replica that last served that
prefix (so its prefix cache — shared system prompts, agent-loop
contexts — actually gets hit), falling back to the replica with the
fewest committed-plus-queued KV bytes, and overriding affinity when the
sticky replica is more loaded than the lightest one by more than
``imbalance_factor`` (bounded stickiness: a hot prefix cannot melt one
replica while others idle).

``step()`` advances every replica one scheduler iteration and
``report()`` aggregates the per-replica :class:`EngineMetrics`
summaries into cluster totals, so the same acceptance numbers (TTFT,
budget invariants, modeled traffic) exist at cluster scope.
"""

from __future__ import annotations

import numpy as np

from repro.obs import MirroredCounters

from .engine import ServingEngine
from .metrics import latency_percentiles, ttft_split
from .pool import ROOT_CHAIN, chain_hash
from .request import Request
from .slo import slo_attainment
from .trie import common_prefix_len

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """Prefix-affinity + least-loaded routing over engine replicas."""

    def __init__(
        self,
        engines: list[ServingEngine],
        *,
        affinity_pages: int = 1,
        imbalance_factor: float = 2.0,
        seed: int | None = None,
    ):
        if not engines:
            raise ValueError("a cluster needs at least one engine replica")
        if any(getattr(engine, "step_cost", None) is not None for engine in engines):
            raise ValueError(
                "cluster replicas must not charge their own clock "
                "(step_cost set on an engine would serialize concurrent "
                "replicas); charge replay-side via replay's step_cost"
            )
        page_tokens = {engine.pool.page_tokens for engine in engines}
        if len(page_tokens) != 1:
            raise ValueError(
                f"replicas disagree on page_tokens: {sorted(page_tokens)}"
            )
        if affinity_pages < 1:
            raise ValueError("affinity_pages must be >= 1")
        if imbalance_factor < 1.0:
            raise ValueError("imbalance_factor must be >= 1.0")
        self.engines = list(engines)
        self.page_tokens = page_tokens.pop()
        self.affinity_pages = int(affinity_pages)
        self.imbalance_factor = float(imbalance_factor)
        #: Tie-breaking between equally-loaded replicas: without a seed
        #: the lowest index wins (stable but biased toward replica 0);
        #: with one, ties are broken by a seeded rng — deterministic
        #: under the seed, yet spread across the tied replicas.
        self._tiebreak_rng = (
            None if seed is None else np.random.default_rng(seed)
        )
        self._affinity: dict[str, int] = {}
        #: session id -> replica.  Session affinity is *hard*: a
        #: conversation's cached KV history exists on exactly one
        #: replica, so rerouting a later turn would silently re-encode
        #: everything — worse than riding out an imbalance.
        self._sessions: dict[str, int] = {}
        self._used_ids: set[str] = set()
        self._next_request = 0
        #: Observability: the cluster adopts replica 0's recorder and
        #: registry as the cluster-wide ones (the async front-end reads
        #: them off ``target``), and renames each replica's trace tracks
        #: ``replica<i>/...`` so their phase rows stay apart in the
        #: Chrome export.  Routing decisions land on the ``cluster``
        #: track; scalar routing stats mirror into the registry as
        #: ``cluster.<name>`` (the per-replica ``routed`` list is
        #: covered by the labeled ``cluster.routed{replica=i}`` series).
        self.obs = self.engines[0].obs
        self.registry = self.engines[0].registry
        if len(self.engines) > 1:
            for i, engine in enumerate(self.engines):
                if getattr(engine, "obs_track", "engine") == "engine":
                    engine.set_obs_track(f"replica{i}")
        self.stats = MirroredCounters(
            {
                "routed": [0] * len(self.engines),
                "affinity_hits": 0,
                "affinity_overrides": 0,
                "session_pins": 0,
                "session_hits": 0,
                "dedup_groups": 0,
                "dedup_grouped": 0,
            },
            self.registry,
            "cluster.",
        )
        #: Per-replica step compositions from the most recent ``step()``
        #: — replicas run concurrently, so a replay cost model charges
        #: the *slowest* replica, not the sum.
        self.last_step: list[dict] = [dict(e.last_step) for e in self.engines]

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    def _prefix_key(self, prompt: np.ndarray) -> str | None:
        """The page hash chain of the prompt's first ``affinity_pages``
        pages — the identity prefix sharing keys on — or ``None`` for a
        sub-page prompt."""
        P = self.page_tokens
        pages = min(self.affinity_pages, len(prompt) // P)
        if pages == 0:
            return None
        chain = ROOT_CHAIN
        for j in range(pages):
            chain = chain_hash(chain, prompt[j * P : (j + 1) * P])
        return chain

    def _load(self, index: int) -> int:
        """Committed + queued KV bytes on one replica: what its pool
        holds for active requests now, plus what its waiting and swapped
        queues will claim."""
        engine = self.engines[index]
        per_token = engine.backend.per_token_nbytes
        queued = sum(
            request.prompt_len * per_token
            for request in engine.scheduler.waiting
        )
        swapped = sum(
            request.kv.logical_nbytes
            for request in engine.scheduler.swapped
        )
        return engine.pool.bytes_active + queued + swapped

    def _pick_tied(self, indices: list[int]) -> int:
        """One replica out of several equally-matched ones: the lowest
        index by default, or a seeded-rng draw when the router was built
        with a ``seed`` (deterministic under the seed, but unbiased
        across the tied replicas instead of always hammering index 0)."""
        if len(indices) == 1 or self._tiebreak_rng is None:
            return indices[0]
        return int(indices[int(self._tiebreak_rng.integers(len(indices)))])

    def _least_loaded(self, candidates=None) -> int:
        """The least-loaded replica (among ``candidates`` if given),
        ties broken deterministically via :meth:`_pick_tied`."""
        indices = (
            list(candidates)
            if candidates is not None
            else list(range(len(self.engines)))
        )
        loads = [self._load(i) for i in indices]
        best = min(loads)
        return self._pick_tied(
            [i for i, load in zip(indices, loads) if load == best]
        )

    def _route(self, prompt: np.ndarray) -> tuple[int, str | None, str]:
        """Pick a replica; pure decision, no state change.

        Returns ``(index, prefix_key, outcome)`` where outcome is one
        of ``"hit"`` (sticky replica used), ``"override"`` (sticky
        replica too loaded, rerouted) or ``"miss"`` — the caller
        commits the affinity map and counters only once the request is
        actually accepted, so rejected traffic cannot skew routing.
        """
        loads = [self._load(i) for i in range(len(self.engines))]
        floor = min(loads)
        lightest = self._pick_tied(
            [i for i, load in enumerate(loads) if load == floor]
        )
        key = self._prefix_key(prompt)
        if key is None:
            return lightest, None, "miss"
        sticky = self._affinity.get(key)
        if sticky is not None:
            # Bounded stickiness: a shared prefix stays on its replica
            # until that replica is disproportionately loaded.
            if loads[sticky] <= self.imbalance_factor * max(
                loads[lightest], 1
            ):
                return sticky, key, "hit"
            return lightest, key, "override"
        return lightest, key, "miss"

    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        request_id: str | None = None,
        eos_token: int | None = None,
        session_id: str | None = None,
        slo=None,
        tenant: str | None = None,
    ) -> Request:
        """Place one request on a replica; returns the engine Request.

        Request IDs are unique cluster-wide: caller-supplied duplicates
        are rejected here (each engine only checks its own namespace,
        and routing would otherwise happily split a duplicate across
        replicas), and auto-generated IDs are minted by the cluster so
        two replicas never both hand out ``req-0``.  The chosen replica
        index is recorded on the request as ``request.replica`` for
        report attribution.

        A ``session_id`` pins the whole conversation: its first
        accepted turn is placed by normal prefix/load routing, every
        later turn goes to the same replica — the only one holding the
        session's cached KV history.
        """
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        pinned = (
            self._sessions.get(session_id) if session_id is not None else None
        )
        if pinned is not None:
            index, key, outcome = pinned, None, "session"
        else:
            index, key, outcome = self._route(prompt)
        return self._place(
            index,
            key,
            outcome,
            prompt,
            max_new_tokens,
            request_id=request_id,
            eos_token=eos_token,
            session_id=session_id,
            slo=slo,
            tenant=tenant,
        )

    def _place(
        self,
        index: int,
        key: str | None,
        outcome: str,
        prompt: np.ndarray,
        max_new_tokens: int,
        request_id: str | None = None,
        eos_token: int | None = None,
        session_id: str | None = None,
        slo=None,
        tenant: str | None = None,
    ) -> Request:
        """Commit one routing decision: mint the ID, submit to the chosen
        replica, and — only once the replica accepts — update IDs,
        affinity state and routing stats."""
        if request_id is not None and request_id in self._used_ids:
            raise ValueError(f"duplicate request_id {request_id!r}")
        auto = request_id is None
        if auto:
            candidate = self._next_request
            while f"req-{candidate}" in self._used_ids:
                candidate += 1
            request_id = f"req-{candidate}"
        request = self.engines[index].submit(
            prompt,
            max_new_tokens,
            request_id=request_id,
            eos_token=eos_token,
            session_id=session_id,
            slo=slo,
            tenant=tenant,
        )
        # Only an accepted request updates IDs, routing state and stats.
        if auto:
            self._next_request = candidate + 1
        self._used_ids.add(request.request_id)
        if outcome == "session":
            self.stats["session_hits"] += 1
        elif outcome == "hit":
            self.stats["affinity_hits"] += 1
        else:
            if outcome == "override":
                self.stats["affinity_overrides"] += 1
            if key is not None:
                self._affinity[key] = index
        if session_id is not None and session_id not in self._sessions:
            self._sessions[session_id] = index
            self.stats["session_pins"] += 1
        request.replica = index
        self.stats["routed"][index] += 1
        self.registry.inc("cluster.routed", replica=index)
        self.registry.inc("cluster.routing_outcomes", outcome=outcome)
        self.obs.instant(
            "route",
            "cluster",
            cat="cluster",
            replica=index,
            outcome=outcome,
            request_id=request.request_id,
        )
        return request

    def submit_batch(
        self, submissions: list[dict], dedup_min_tokens: int | None = None
    ) -> list[Request]:
        """Place a batch with a pre-flight prefix-dedup pass.

        Each submission is a dict of :meth:`submit` keyword arguments
        (``prompt`` required).  Submissions whose prompts share at least
        ``dedup_min_tokens`` leading tokens (default: one page) are
        grouped and the whole group lands on one replica — the one whose
        pool already holds the longest piece of the shared prefix (a
        cheap trie probe, no references taken), falling back to the
        least-loaded replica for a prefix no pool holds yet.  Per-replica
        routing would otherwise scatter the group and every replica would
        encode the shared prefix once each; grouped, one member encodes
        it and the rest attach it from the prefix cache.

        Session-pinned turns keep their hard pin and singleton groups
        fall through to normal :meth:`submit` routing, so the pass only
        changes where *shareable* work lands.  Returns the Requests in
        submission order.  A rejected submission propagates its
        exception; earlier members of the batch stay submitted.
        """
        if dedup_min_tokens is None:
            dedup_min_tokens = self.page_tokens
        if dedup_min_tokens < 1:
            raise ValueError("dedup_min_tokens must be >= 1")
        if not submissions:
            return []
        results: list[Request | None] = [None] * len(submissions)
        loose: list[tuple[int, dict]] = []
        for order, sub in enumerate(submissions):
            sub = dict(sub)
            sub["prompt"] = np.asarray(
                sub["prompt"], dtype=np.int64
            ).reshape(-1)
            session_id = sub.get("session_id")
            if session_id is not None and session_id in self._sessions:
                results[order] = self.submit(**sub)  # hard session pin
            else:
                loose.append((order, sub))
        # Sort by prompt so prefix-sharers are adjacent; for sorted
        # sequences the LCP of any two group members is the minimum of
        # the consecutive LCPs between them, so greedy consecutive
        # grouping finds exactly the maximal shared-prefix runs.
        loose.sort(key=lambda item: tuple(item[1]["prompt"].tolist()))
        groups: list[tuple[list[tuple[int, dict]], int]] = []
        run: list[tuple[int, dict]] = []
        run_lcp = 0
        for item in loose:
            if not run:
                run, run_lcp = [item], len(item[1]["prompt"])
                continue
            lcp = common_prefix_len(run[-1][1]["prompt"], item[1]["prompt"])
            if lcp >= dedup_min_tokens:
                run.append(item)
                run_lcp = min(run_lcp, lcp)
            else:
                groups.append((run, run_lcp))
                run, run_lcp = [item], len(item[1]["prompt"])
        if run:
            groups.append((run, run_lcp))
        for group, lcp in groups:
            if len(group) == 1:
                order, sub = group[0]
                results[order] = self.submit(**sub)
                continue
            shared = group[0][1]["prompt"][:lcp]
            probes = [
                engine.pool.probe_prefix(shared) for engine in self.engines
            ]
            best = max(probes)
            if best > 0:
                index = self._least_loaded(
                    i for i, p in enumerate(probes) if p == best
                )
            else:
                index = self._least_loaded()
            self.stats["dedup_groups"] += 1
            self.stats["dedup_grouped"] += len(group)
            key = self._prefix_key(shared)
            for order, sub in group:
                results[order] = self._place(
                    index,
                    key,
                    "dedup",
                    sub["prompt"],
                    sub["max_new_tokens"],
                    request_id=sub.get("request_id"),
                    eos_token=sub.get("eos_token"),
                    session_id=sub.get("session_id"),
                    slo=sub.get("slo"),
                    tenant=sub.get("tenant"),
                )
        return results

    # ------------------------------------------------------------------
    # The cluster step loop.
    # ------------------------------------------------------------------
    @property
    def has_work(self) -> bool:
        return any(engine.has_work for engine in self.engines)

    def step(self) -> int:
        """Advance every replica one iteration; returns tokens processed
        across the cluster."""
        tokens = sum(engine.step() for engine in self.engines)
        self.last_step = [dict(engine.last_step) for engine in self.engines]
        return tokens

    def run(self, max_steps: int = 100_000) -> dict:
        """Drive ``step()`` until every replica drains."""
        clock = self.engines[0].clock
        start = clock()
        steps = 0
        while self.has_work:
            if steps >= max_steps:
                raise RuntimeError(
                    f"cluster did not drain in {max_steps} steps"
                )
            self.step()
            steps += 1
        return self.report(clock() - start)

    # ------------------------------------------------------------------
    # Aggregated metrics.
    # ------------------------------------------------------------------
    def report(self, elapsed_s: float) -> dict:
        """Cluster totals + the per-replica engine reports."""
        replicas = [
            engine.report(elapsed_s) for engine in self.engines
        ]
        requests = [r for e in self.engines for r in e.requests]
        ttfts, warm_ttfts, cold_ttfts = ttft_split(requests)
        finished = [r for r in requests if r.metrics.finish_s is not None]
        e2e = [r.metrics.e2e_s for r in finished]
        inter = [gap for r in requests for gap in r.metrics.inter_token_s]
        summed = {
            key: sum(rep[key] for rep in replicas)
            for key in (
                "requests",
                "finished",
                "tokens_generated",
                "prefills",
                "decode_steps",
                "decode_tokens",
                "prefill_chunks",
                "chunked_prefill_tokens",
                "prefill_stalls",
                "warm_prefills",
                "prefix_tokens_reused",
                "prefix_pages_reused",
                "prefix_partial_attaches",
                "split_tokens_salvaged",
                "prefill_forwarded_tokens",
                "hol_blocked_steps",
                "hol_bypasses",
                "preemptions",
                "shed_requests",
                "modeled_kv_read_bytes",
                "modeled_kv_read_fp16_bytes",
                "modeled_sectors",
            )
        }
        overruns = sum(
            rep["pool"]["budget_overruns"] for rep in replicas
        )
        return {
            "replicas": len(self.engines),
            "elapsed_s": elapsed_s,
            **summed,
            "ttft_s_mean": float(np.mean(ttfts)) if ttfts else None,
            "ttft_s_max": float(np.max(ttfts)) if ttfts else None,
            "ttft_s_mean_warm": (
                float(np.mean(warm_ttfts)) if warm_ttfts else None
            ),
            "ttft_s_mean_cold": (
                float(np.mean(cold_ttfts)) if cold_ttfts else None
            ),
            # Tail percentiles and SLO attainment are recomputed over
            # the combined request population — percentiles of merged
            # samples, not averages of per-replica percentiles.
            **latency_percentiles(ttfts, "ttft_s"),
            **latency_percentiles(inter, "inter_token_s"),
            **latency_percentiles(e2e, "e2e_s"),
            **slo_attainment(requests),
            "budget_overruns": overruns,
            "routing": {
                "routed": list(self.stats["routed"]),
                "affinity_hits": self.stats["affinity_hits"],
                "affinity_overrides": self.stats["affinity_overrides"],
                "session_pins": self.stats["session_pins"],
                "session_hits": self.stats["session_hits"],
                "dedup_groups": self.stats["dedup_groups"],
                "dedup_grouped": self.stats["dedup_grouped"],
            },
            "per_replica": replicas,
        }
