"""Async streaming front-end: the event-driven serving core.

:class:`AsyncServingEngine` wraps a synchronous
:class:`~repro.serve.engine.ServingEngine` or
:class:`~repro.serve.cluster.ClusterRouter` and turns it into a server:
clients submit concurrently, receive their tokens as an **async
iterator** while other requests keep decoding, and the engine's
``step()`` is pumped by one background loop.  Between the clients and
the engine sits an admission layer the synchronous stack never had:

* **per-tenant token-rate limits** — each tenant gets a token bucket
  (``rate_tokens_per_s`` refilled in clock time, ``burst_tokens`` cap);
  a submission costs ``prompt + max_new_tokens`` tokens and waits in
  the tenant's front-end queue until the bucket covers it,
* **weighted fairness** — queued tenants are served by stride
  scheduling over their charged tokens (a tenant's share of admissions
  is proportional to its ``weight`` no matter how hard it floods its
  own queue),
* **load shedding** — ``max_queue_depth`` bounds the total front-end
  queue; arrivals past it are refused immediately with
  :class:`RequestShedError`, the same 429 family as the pool's
  :class:`~repro.serve.pool.BudgetExceededError`.  Requests the
  scheduler's policy sheds (SLO blown at admission, see
  ``repro.serve.scheduler.DeadlinePolicy``) surface through their
  stream handle as the same error,
* **backpressure metrics** — queue depth (peak and mean), shed/reject
  counts, and per-tenant wait time, all in :meth:`report`.

Time is the engine's clock.  The front-end requires an *advanceable*
clock (:class:`~repro.serve.workload.VirtualClock`): the pump advances
it by the :class:`~repro.serve.workload.StepCostModel` roofline per
step (or lets a ``step_cost``-charging engine advance it itself), and
jumps it across idle gaps to the next sleeper.  Client timeouts,
backoffs and rate limits all run in the same simulated seconds, so an
entire retry storm replays deterministically — and the engine
underneath is untouched, so decoded KV stays bit-exact against the
single-stream reference no matter how the front-end interleaves
clients.

Typical client::

    frontend = AsyncServingEngine(engine)
    async def client():
        handle = frontend.submit(prompt, max_new_tokens=32, tenant="acme")
        async for token in handle:
            ...                       # streamed as decode steps land
    frontend.drive(client())
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.obs import MetricsRegistry, MirroredCounters, NullRecorder

from .pool import BudgetExceededError
from .request import Request, RequestState
from .workload import StepCostModel

__all__ = [
    "AsyncServingEngine",
    "RequestShedError",
    "RequestTimeoutError",
    "StreamHandle",
]


class RequestShedError(BudgetExceededError):
    """The front-end or the scheduling policy refused this request (the
    429 path): queue full, or its SLO was already blown at admission."""


class RequestTimeoutError(TimeoutError):
    """The client's own deadline for this request expired; the stream
    was abandoned.  The engine may still be generating — a timed-out
    request is wasted work unless the client retries and hits the
    prefix cache."""


@dataclass
class _Submission:
    """One queued request: everything the engine's ``submit`` needs,
    plus the front-end bookkeeping around it."""

    prompt: np.ndarray
    max_new_tokens: int
    request_id: str | None
    eos_token: int | None
    session_id: str | None
    slo: object | None
    tenant: str
    #: When the client handed the request to the front-end (clock s).
    enqueued_s: float
    #: The TTFT anchor: trace arrival for replayed traffic, else the
    #: enqueue time — either way, queue wait counts against TTFT.
    arrival_s: float

    @property
    def cost_tokens(self) -> int:
        return int(self.prompt.size) + int(self.max_new_tokens)


@dataclass
class _TenantState:
    """Rate/fairness/accounting state for one tenant."""

    name: str
    weight: float = 1.0
    rate_tokens_per_s: float | None = None
    burst_tokens: float | None = None
    bucket: float = 0.0
    refilled_s: float = 0.0
    #: Stride-scheduling pass value: charged tokens / weight.  The
    #: tenant with the smallest pass is served next, so long-run
    #: admission shares converge to the weights.
    pass_tokens: float = 0.0
    queue: deque = field(default_factory=deque)
    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    tokens_charged: int = 0
    wait_s_sum: float = 0.0
    wait_s_max: float = 0.0

    def refill(self, now: float) -> None:
        if self.rate_tokens_per_s is None:
            return
        burst = self.burst_tokens
        self.bucket = min(
            burst, self.bucket + self.rate_tokens_per_s * (now - self.refilled_s)
        )
        self.refilled_s = now

    def covers(self, cost: int) -> bool:
        """Can the bucket pay for this submission now?  A request larger
        than the whole burst still dispatches once the bucket is full —
        the bucket then goes negative, which is exactly the debt that
        throttles the tenant's *next* submissions."""
        if self.rate_tokens_per_s is None:
            return True
        return self.bucket >= min(float(cost), self.burst_tokens)

    def ready_s(self, cost: int) -> float:
        """Clock time at which the bucket will cover ``cost``."""
        need = min(float(cost), self.burst_tokens)
        return self.refilled_s + (need - self.bucket) / self.rate_tokens_per_s

    def charge(self, cost: int) -> None:
        if self.rate_tokens_per_s is not None:
            self.bucket -= float(cost)
        self.tokens_charged += cost


class StreamHandle:
    """A client's view of one submitted request: an async token stream.

    Iterate to receive tokens as the engine generates them; the
    iterator ends when the request finishes, and raises if the request
    was rejected (never fit the budget), shed (queue full or SLO blown
    at admission) or timed out against the client's own deadline.
    ``request`` is the engine-side :class:`~repro.serve.request.Request`
    once the front-end has dispatched the submission (``None`` while it
    still waits in a tenant queue).
    """

    def __init__(self, frontend: "AsyncServingEngine", sub: _Submission):
        self._frontend = frontend
        self._sub = sub
        self.request: Request | None = None
        self.status = "queued"
        self.error: Exception | None = None
        self._buffer: deque[int] = deque()
        self._emitted = 0
        self._event = asyncio.Event()

    # -- front-end side -------------------------------------------------
    @property
    def done(self) -> bool:
        return self.status in ("finished", "rejected", "shed", "timeout")

    @property
    def tenant(self) -> str:
        return self._sub.tenant

    def anchor_arrival(self, arrival_s: float) -> None:
        """Re-anchor the TTFT clock (e.g. to a trace arrival time that
        predates the submit call).  Applies retroactively if the
        request was already dispatched."""
        self._sub.arrival_s = float(arrival_s)
        if self.request is not None:
            self.request.metrics.arrival_s = float(arrival_s)

    def _attach(self, request: Request) -> None:
        self.request = request
        self.status = "active"

    def _fail(self, error: Exception, status: str) -> None:
        if self.done:
            return
        self.error = error
        self.status = status
        self._event.set()

    def _publish(self) -> bool:
        """Push newly generated tokens to the consumer; returns True
        once the handle is terminal and needs no further publishing."""
        if self.done:
            return True
        if self.request is None:
            return False
        generated = self.request.generated
        if self._emitted < len(generated):
            self._buffer.extend(generated[self._emitted:])
            self._emitted = len(generated)
            self._event.set()
        if self.request.state is RequestState.SHED:
            self._fail(
                RequestShedError(
                    f"request {self.request.request_id!r} shed at "
                    f"admission: its SLO deadline had already passed"
                ),
                "shed",
            )
            return True
        if self.request.state is RequestState.FINISHED:
            self.status = "finished"
            self._event.set()
            return True
        return False

    # -- client side ----------------------------------------------------
    def __aiter__(self) -> "StreamHandle":
        return self

    async def __anext__(self) -> int:
        while True:
            if self._buffer:
                return self._buffer.popleft()
            if self.done:
                if self.error is not None:
                    raise self.error
                raise StopAsyncIteration
            self._event.clear()
            await self._event.wait()

    async def result(self, timeout_s: float | None = None) -> list[int]:
        """Drain the stream; returns the full generated token list.

        ``timeout_s`` is a *client-side* deadline in clock seconds from
        this call: past it the stream raises :class:`RequestTimeoutError`
        and is abandoned (the engine is not interrupted — an impatient
        client costs the server wasted work, which is precisely what
        retry-storm modeling needs to capture).
        """
        if timeout_s is not None:
            self._frontend._register_timeout(
                self, self._frontend.clock() + float(timeout_s)
            )
        async for _token in self:
            pass
        return list(self.request.generated)


class AsyncServingEngine:
    """Event-driven front-end pumping a synchronous engine or cluster.

    ``target`` is a :class:`~repro.serve.engine.ServingEngine` or
    :class:`~repro.serve.cluster.ClusterRouter` built on a
    :class:`~repro.serve.workload.VirtualClock`.  ``step_cost`` is the
    per-step roofline the pump charges (ignored when the engine was
    built with its own ``step_cost=`` and charges synchronously).
    ``max_pending`` bounds how many dispatched-but-unadmitted requests
    may sit in the engine's own queue before the front-end holds
    further dispatches back (keeping fairness decisions at the
    front-end); ``max_queue_depth`` bounds the *front-end* queue and
    sheds arrivals past it.
    """

    def __init__(
        self,
        target,
        *,
        step_cost: StepCostModel | None = None,
        max_pending: int | None = None,
        max_queue_depth: int | None = None,
        max_steps: int = 500_000,
    ):
        clock = getattr(target, "clock", None)
        if clock is None:
            clock = target.engines[0].clock
        if not hasattr(clock, "advance") or not hasattr(clock, "jump_to"):
            raise ValueError(
                "AsyncServingEngine needs an advanceable clock "
                "(VirtualClock) on its target: the pump charges step "
                "costs and jumps idle gaps in simulated time"
            )
        self.target = target
        self.clock = clock
        #: Engines built with ``step_cost=`` advance the clock as work
        #: happens; the pump must not double-charge them.
        self._self_charging = getattr(target, "step_cost", None) is not None
        self.step_cost = step_cost if step_cost is not None else StepCostModel()
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_pending = max_pending
        self.max_queue_depth = max_queue_depth
        self.max_steps = int(max_steps)
        self._tenants: dict[str, _TenantState] = {}
        self._live: list[StreamHandle] = []
        self._seq = itertools.count()
        #: Sleepers: (wake_s, seq, event).
        self._timers: list[tuple[float, int, asyncio.Event]] = []
        #: Client-side request deadlines: (deadline_s, seq, handle).
        self._timeouts: list[tuple[float, int, StreamHandle]] = []
        #: Times at which a rate-starved tenant's bucket will cover its
        #: queue head — pump wake-ups with no event attached.
        self._service_times: list[float] = []
        self._wake = asyncio.Event()
        self._stopping = False
        self._drain = True
        self.steps = 0
        self.tokens_processed = 0
        #: Observability: the front-end shares the engine's (or
        #: cluster's) recorder and registry, so one trace/export covers
        #: the whole stack.  ``metrics`` keeps its dict interface but
        #: every write mirrors into the registry as ``frontend.<key>``
        #: — :meth:`report` reads the registry back, so the two can
        #: never disagree.
        self.obs = getattr(target, "obs", None) or NullRecorder()
        registry = getattr(target, "registry", None)
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.metrics = MirroredCounters(
            {
                "arrivals": 0,
                "accepted": 0,
                "rejected_429": 0,
                "shed_queue_full": 0,
                "shed_slo": 0,
                "timeouts": 0,
                "queue_depth_peak": 0,
                "queue_depth_sum": 0,
                "queue_depth_samples": 0,
            },
            self.registry,
            "frontend.",
        )
        self._last_depth = None

    # ------------------------------------------------------------------
    # Tenants.
    # ------------------------------------------------------------------
    def add_tenant(
        self,
        name: str,
        *,
        weight: float = 1.0,
        rate_tokens_per_s: float | None = None,
        burst_tokens: float | None = None,
    ) -> None:
        """Register a tenant with a fairness weight and an optional
        token-rate limit.  Unknown tenants named at submit time are
        auto-registered with weight 1 and no rate limit."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if rate_tokens_per_s is not None and rate_tokens_per_s <= 0:
            raise ValueError("rate_tokens_per_s must be positive")
        if name in self._tenants:
            raise ValueError(f"duplicate tenant {name!r}")
        state = _TenantState(
            name=name, weight=float(weight), rate_tokens_per_s=rate_tokens_per_s
        )
        if rate_tokens_per_s is not None:
            state.burst_tokens = float(
                burst_tokens
                if burst_tokens is not None
                else rate_tokens_per_s
            )
            state.bucket = state.burst_tokens  # start full
        state.refilled_s = self.clock()
        # A late joiner starts at the current stride frontier, not at
        # zero — otherwise it would monopolize admissions to "catch up".
        if self._tenants:
            state.pass_tokens = min(
                t.pass_tokens for t in self._tenants.values()
            )
        self._tenants[name] = state

    def _tenant(self, name: str | None) -> _TenantState:
        name = name if name is not None else "default"
        if name not in self._tenants:
            self.add_tenant(name)
        return self._tenants[name]

    @property
    def queue_depth(self) -> int:
        """Requests waiting in front-end tenant queues right now."""
        return sum(len(t.queue) for t in self._tenants.values())

    def _engine_pending(self) -> int:
        """Requests sitting in the engine's own waiting queues."""
        engines = getattr(self.target, "engines", None)
        if engines is None:
            return len(self.target.scheduler.waiting)
        return sum(len(e.scheduler.waiting) for e in engines)

    def _has_capacity(self) -> bool:
        return (
            self.max_pending is None
            or self._engine_pending() < self.max_pending
        )

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt,
        max_new_tokens: int,
        *,
        request_id: str | None = None,
        eos_token: int | None = None,
        session_id: str | None = None,
        slo=None,
        tenant: str | None = None,
        arrival_s: float | None = None,
    ) -> StreamHandle:
        """Queue one request and return its stream handle.

        Raises :class:`RequestShedError` if the front-end queue is full
        (429 at the front door) and :class:`BudgetExceededError` if the
        request can never fit the pool budget and was dispatched
        eagerly.  A rate-limited or fairness-queued submission is
        dispatched later by the pump; a dispatch-time rejection then
        surfaces through the handle instead.
        """
        now = self.clock()
        state = self._tenant(tenant)
        self.metrics["arrivals"] += 1
        self.registry.inc("frontend.arrivals", tenant=state.name)
        self.obs.instant(
            "arrival", "frontend", cat="frontend", tenant=state.name
        )
        state.submitted += 1
        if (
            self.max_queue_depth is not None
            and self.queue_depth >= self.max_queue_depth
        ):
            state.shed += 1
            self.metrics["shed_queue_full"] += 1
            self.registry.inc(
                "frontend.shed", tenant=state.name, reason="queue_full"
            )
            self.obs.instant(
                "shed",
                "frontend",
                cat="frontend",
                reason="queue_full",
                tenant=state.name,
            )
            raise RequestShedError(
                f"front-end queue full ({self.queue_depth} >= "
                f"{self.max_queue_depth}); request shed"
            )
        sub = _Submission(
            prompt=np.asarray(prompt, dtype=np.int64).reshape(-1),
            max_new_tokens=int(max_new_tokens),
            request_id=request_id,
            eos_token=eos_token,
            session_id=session_id,
            slo=slo,
            tenant=state.name,
            enqueued_s=now,
            arrival_s=float(arrival_s) if arrival_s is not None else now,
        )
        handle = StreamHandle(self, sub)
        # Eager dispatch: nothing queued ahead for this tenant, the
        # bucket covers it, and the engine has admission room — the
        # request goes straight through, and a budget rejection raises
        # here, synchronously, like a direct engine submit would.
        state.refill(now)
        if (
            not state.queue
            and state.covers(sub.cost_tokens)
            and self._has_capacity()
        ):
            self._dispatch_one(state, handle, now)
            if handle.error is not None:
                raise handle.error
            return handle
        state.queue.append(handle)
        self._wake.set()
        return handle

    def _dispatch_one(
        self, state: _TenantState, handle: StreamHandle, now: float
    ) -> None:
        """Hand one submission to the engine; resolve the handle on
        rejection.  The caller has already checked rate and capacity."""
        sub = handle._sub
        try:
            request = self.target.submit(
                sub.prompt,
                sub.max_new_tokens,
                request_id=sub.request_id,
                eos_token=sub.eos_token,
                session_id=sub.session_id,
                slo=sub.slo,
                tenant=sub.tenant,
            )
        except BudgetExceededError as error:
            state.rejected += 1
            self.metrics["rejected_429"] += 1
            self.registry.inc("frontend.rejected", tenant=state.name)
            self.obs.instant(
                "reject", "frontend", cat="frontend", tenant=state.name
            )
            handle._fail(error, "rejected")
            return
        request.metrics.arrival_s = sub.arrival_s
        state.charge(sub.cost_tokens)
        state.pass_tokens += sub.cost_tokens / state.weight
        state.accepted += 1
        self.metrics["accepted"] += 1
        self.registry.inc("frontend.accepted", tenant=state.name)
        wait = now - sub.enqueued_s
        state.wait_s_sum += wait
        state.wait_s_max = max(state.wait_s_max, wait)
        self.registry.observe("frontend.queue_wait_s", wait)
        self.registry.observe(
            "frontend.queue_wait_s", wait, tenant=state.name
        )
        self.obs.instant(
            "dispatch",
            "frontend",
            cat="frontend",
            tenant=state.name,
            request_id=request.request_id,
        )
        handle._attach(request)
        self._live.append(handle)

    def _dispatch(self, now: float) -> None:
        """Drain tenant queues into the engine: stride-fair across
        tenants, each gated by its own token bucket and the engine's
        pending capacity."""
        while self._has_capacity():
            candidates = []
            for name in sorted(self._tenants):
                state = self._tenants[name]
                if not state.queue:
                    continue
                state.refill(now)
                cost = state.queue[0]._sub.cost_tokens
                if not state.covers(cost):
                    # Starved: wake the pump when the bucket refills.
                    heapq.heappush(self._service_times, state.ready_s(cost))
                    continue
                candidates.append(state)
            if not candidates:
                return
            state = min(candidates, key=lambda t: (t.pass_tokens, t.name))
            handle = state.queue.popleft()
            self._dispatch_one(state, handle, now)

    # ------------------------------------------------------------------
    # Virtual-time primitives for clients.
    # ------------------------------------------------------------------
    async def sleep_until(self, wake_s: float) -> None:
        """Suspend the calling client until simulated time reaches
        ``wake_s`` (returns immediately if it already has)."""
        if wake_s <= self.clock():
            await asyncio.sleep(0)
            return
        event = asyncio.Event()
        heapq.heappush(self._timers, (float(wake_s), next(self._seq), event))
        self._wake.set()
        await event.wait()

    async def sleep(self, duration_s: float) -> None:
        """Suspend the calling client for ``duration_s`` simulated
        seconds."""
        await self.sleep_until(self.clock() + float(duration_s))

    def _register_timeout(self, handle: StreamHandle, deadline_s: float) -> None:
        heapq.heappush(
            self._timeouts, (float(deadline_s), next(self._seq), handle)
        )
        self._wake.set()

    # ------------------------------------------------------------------
    # The pump.
    # ------------------------------------------------------------------
    def _fire_due(self, now: float) -> None:
        while self._timers and self._timers[0][0] <= now:
            _, _, event = heapq.heappop(self._timers)
            event.set()
        while self._timeouts and self._timeouts[0][0] <= now:
            _, _, handle = heapq.heappop(self._timeouts)
            if not handle.done:
                self.metrics["timeouts"] += 1
                self.registry.inc("frontend.timeouts", tenant=handle.tenant)
                self.obs.instant(
                    "timeout", "frontend", cat="frontend", tenant=handle.tenant
                )
                handle._fail(
                    RequestTimeoutError(
                        "client deadline expired before the request finished"
                    ),
                    "timeout",
                )
        while self._service_times and self._service_times[0] <= now:
            heapq.heappop(self._service_times)

    def _next_event_s(self) -> float | None:
        times = []
        if self._timers:
            times.append(self._timers[0][0])
        if self._service_times:
            times.append(self._service_times[0])
        while self._timeouts and self._timeouts[0][2].done:
            heapq.heappop(self._timeouts)  # stale: request already over
        if self._timeouts:
            times.append(self._timeouts[0][0])
        return min(times) if times else None

    def _publish(self) -> None:
        still_live = []
        for handle in self._live:
            if handle._publish():
                if handle.status == "shed":
                    self.metrics["shed_slo"] += 1
                    self.registry.inc(
                        "frontend.shed", tenant=handle.tenant, reason="slo"
                    )
                    self._tenants[handle.tenant].shed += 1
            else:
                still_live.append(handle)
        self._live = still_live

    def _sample_queue_depth(self) -> None:
        depth = self.queue_depth
        self.metrics["queue_depth_peak"] = max(
            self.metrics["queue_depth_peak"], depth
        )
        self.metrics["queue_depth_sum"] += depth
        self.metrics["queue_depth_samples"] += 1
        self.registry.gauge_set("frontend.queue_depth", depth)
        if self.obs.enabled and depth != self._last_depth:
            self._last_depth = depth
            self.obs.counter("frontend.queue_depth", depth, "frontend")

    async def _pump(self) -> None:
        """The event loop's engine driver: fire due timers, let clients
        run, dispatch their submissions, advance the engine one step,
        charge the clock, publish tokens — and when there is nothing to
        step, jump simulated time to the next sleeper."""
        while True:
            now = self.clock()
            self._fire_due(now)
            # Let every ready client coroutine run (submit, consume,
            # schedule sleeps) before the engine commits this step.
            for _ in range(3):
                await asyncio.sleep(0)
            now = self.clock()
            self._dispatch(now)
            self._sample_queue_depth()
            if self.target.has_work:
                if self.steps >= self.max_steps:
                    raise RuntimeError(
                        f"front-end did not drain in {self.max_steps} steps"
                    )
                step_tokens = self.target.step()
                self.steps += 1
                self.tokens_processed += step_tokens
                if not self._self_charging:
                    charge = self.step_cost(self.target.last_step)
                    if step_tokens == 0 and charge <= 0.0:
                        # A stalled step (nothing admitted, nothing
                        # decoded) must still move time, or the replay
                        # would spin without ever reaching the arrival
                        # or TTL event that unsticks it.
                        charge = self.step_cost.base_s
                    self.clock.advance(charge)
                self._publish()
                continue
            next_s = self._next_event_s()
            if next_s is not None:
                if next_s > now:
                    self.clock.jump_to(next_s)
                continue
            if self.queue_depth:
                # Queued but undispatchable with an idle engine can only
                # mean a rate-starved tenant; its service time is in the
                # heap, so this is unreachable — guard loudly anyway.
                raise RuntimeError("front-end queue stuck with no wake-up")
            if self._stopping:
                return
            self._wake.clear()
            if not (
                self.target.has_work or self._timers or self._timeouts
            ):
                await self._wake.wait()

    # ------------------------------------------------------------------
    # Drivers.
    # ------------------------------------------------------------------
    async def serve(self, *clients, drain: bool = True):
        """Run the pump alongside ``clients`` (coroutines); returns
        their results in order.

        The pump runs until every client has returned and — with
        ``drain`` (default) — the engine has no work left, so
        fire-and-forget submissions still complete.  A client exception
        cancels the run and propagates.
        """
        self._stopping = False
        self._drain = drain
        pump = asyncio.ensure_future(self._pump())
        work = asyncio.ensure_future(asyncio.gather(*clients))
        await asyncio.wait({pump, work}, return_when=asyncio.FIRST_COMPLETED)
        if pump.done() and not work.done():
            # The pump never returns while clients are pending unless it
            # crashed: surface that error, not a hang.
            work.cancel()
            try:
                await work
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            await pump  # raises
            raise RuntimeError("front-end pump exited while clients waited")
        try:
            results = await work
        except BaseException:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            raise
        if drain:
            self._stopping = True
            self._wake.set()
            await pump
        else:
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                pass
        return results

    def drive(self, *clients, drain: bool = True):
        """Synchronous convenience: ``asyncio.run`` the serve loop."""
        return asyncio.run(self.serve(*clients, drain=drain))

    # ------------------------------------------------------------------
    # Backpressure report.
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Front-end metrics: admission counts, shed/reject/timeout
        totals, queue depth, and per-tenant rate/fairness accounting.

        Built by reading the ``frontend.*`` registry series back (every
        write mirrors there), so the report and any mid-run registry
        snapshot agree exactly; the keys are unchanged from the
        pre-registry report.
        """
        value = self.registry.value
        samples = value("frontend.queue_depth_samples")
        arrivals = value("frontend.arrivals")
        shed = (
            value("frontend.shed_queue_full") + value("frontend.shed_slo")
        )
        return {
            "arrivals": arrivals,
            "accepted": value("frontend.accepted"),
            "rejected_429": value("frontend.rejected_429"),
            "shed_queue_full": value("frontend.shed_queue_full"),
            "shed_slo": value("frontend.shed_slo"),
            "shed_rate": shed / arrivals if arrivals else 0.0,
            "timeouts": value("frontend.timeouts"),
            "steps": self.steps,
            "tokens_processed": self.tokens_processed,
            "queue_depth_peak": value("frontend.queue_depth_peak"),
            "queue_depth_mean": (
                value("frontend.queue_depth_sum") / samples
                if samples
                else 0.0
            ),
            "tenants": {
                name: {
                    "weight": t.weight,
                    "rate_tokens_per_s": t.rate_tokens_per_s,
                    "submitted": t.submitted,
                    "accepted": t.accepted,
                    "rejected": t.rejected,
                    "shed": t.shed,
                    "tokens_charged": t.tokens_charged,
                    "wait_s_mean": (
                        t.wait_s_sum / t.accepted if t.accepted else 0.0
                    ),
                    "wait_s_max": t.wait_s_max,
                }
                for name, t in sorted(self._tenants.items())
            },
        }
