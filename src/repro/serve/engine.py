"""The serving engine: paged compressed KV + continuous batching.

One :class:`ServingEngine` owns a proxy model, a storage backend (Ecco
blocks or fp16), a byte-budgeted :class:`~repro.serve.pool.PagedKVPool`
and a :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`.  Each
``step()`` draws from one token budget: every running request decodes
one token, and whatever remains goes to prompt ingestion — whole-prompt
prefills by default, or page-aligned chunks interleaved with decode
steps when ``prefill_chunk_tokens`` is set (Sarathi-style chunked
prefill), so one long prompt no longer stalls the whole batch.  When
the next step's KV growth would not fit the budget, the youngest
request is preempted — its pages swap out *in compressed form* and its
decoded-segment caches stay, so re-admission costs swap traffic but
zero re-decode.  The pool's byte budget is a hard invariant: the engine
verifies it after every step and fails loudly rather than silently
exceeding it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.llm.decode import decode_step, prefill_chunk
from repro.llm.model import ProxyModel
from repro.obs import MetricsRegistry, NullRecorder, wall_clock

from .metrics import EngineMetrics, decode_step_sectors
from .pool import BudgetExceededError, PagedKVPool
from .request import Request, RequestState
from .scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from .storage import EccoKVBackend, Fp16KVBackend
from .workload import StepCostModel

__all__ = ["ServingEngine"]


class _PoolBatchKV:
    """Adapter: the running batch's RequestKVs behind the BatchKV protocol."""

    def __init__(self, requests: list[Request]):
        self.requests = requests

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        for r, request in enumerate(self.requests):
            request.kv.append_token_layer(layer, keys[r], values[r])

    def read(self, layer: int):
        keys = [request.kv.read(layer, "keys") for request in self.requests]
        values = [request.kv.read(layer, "values") for request in self.requests]
        return keys, values


class _ChunkIngestKV:
    """Adapter: one request's RequestKV behind the ChunkKV protocol."""

    def __init__(self, kv):
        self.kv = kv

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        self.kv.ingest_chunk(layer, keys, values)

    def read(self, layer: int):
        return self.kv.read(layer, "keys"), self.kv.read(layer, "values")


class ServingEngine:
    """Multi-request serving over a byte-budgeted paged KV pool."""

    def __init__(
        self,
        model: ProxyModel,
        calib=None,
        *,
        storage: str = "ecco",
        byte_budget: int,
        page_tokens: int = 8,
        max_batch_size: int = 8,
        watermark: float = 0.05,
        policy: SchedulerPolicy | str = "fcfs",
        prefill_chunk_tokens: int | None = None,
        step_token_budget: int | None = None,
        hol_bypass_limit: int = 1,
        prefix_reuse: bool = True,
        prefix_trie: bool = True,
        cache_ttl_s: float | None = None,
        split_min_tokens: int = 4,
        step_cost: StepCostModel | None = None,
        weights: dict | None = None,
        act_quant=None,
        record_reference: bool = False,
        clock: Callable[[], float] = wall_clock,
        recorder=None,
        registry: MetricsRegistry | None = None,
    ):
        self.model = model
        spec = model.spec
        if storage == "ecco":
            if calib is None:
                raise ValueError("the ecco backend needs calibration data")
            self.backend = EccoKVBackend(spec.num_layers, spec.d_model, calib)
        elif storage == "fp16":
            self.backend = Fp16KVBackend(spec.num_layers, spec.d_model)
        else:
            raise KeyError(f"unknown storage {storage!r}; known: ecco, fp16")
        #: Observability (``repro.obs``): ``recorder`` captures request
        #: lifecycle spans, engine step-phase spans and pool instants —
        #: the allocation-free :class:`NullRecorder` by default;
        #: ``registry`` is the metrics registry every counter mirrors
        #: into (a fresh one per engine unless the caller shares one).
        #: Neither touches the clock or any RNG, so a traced run is
        #: bit-identical to an untraced one.
        self.obs = recorder if recorder is not None else NullRecorder()
        registry = registry if registry is not None else MetricsRegistry()
        #: ``prefix_trie`` selects the pool's token-level radix-trie
        #: lookup (partial matches split pages at the divergence point);
        #: disable for the legacy whole-page chain-walk fallback.
        #: ``cache_ttl_s`` ages idle prefix-cache pages out of the
        #: budget (swept once per step) even under zero pressure.
        self.pool = PagedKVPool(
            byte_budget,
            page_tokens=page_tokens,
            use_trie=prefix_trie,
            ttl_s=cache_ttl_s,
            split_min_tokens=split_min_tokens,
            clock=clock,
            recorder=self.obs,
            registry=registry,
        )
        #: ``policy`` selects the scheduling decisions (admission order,
        #: preemption victim, load shedding): ``"fcfs"`` is the classic
        #: arrival-order behaviour, ``"deadline"`` is SLO-aware EDF (see
        #: ``repro.serve.scheduler``), or pass a SchedulerPolicy.
        self.scheduler = ContinuousBatchingScheduler(
            max_batch_size=max_batch_size,
            watermark=watermark,
            policy=policy,
            recorder=self.obs,
        )
        if prefill_chunk_tokens is not None:
            if prefill_chunk_tokens < 1:
                raise ValueError("prefill_chunk_tokens must be >= 1")
            # Chunk boundaries must sit on page boundaries (that is what
            # keeps chunked pages byte-identical to whole-prompt pages),
            # so round the chunk size up to a whole number of pages.
            prefill_chunk_tokens = max(
                page_tokens,
                -(-prefill_chunk_tokens // page_tokens) * page_tokens,
            )
        if step_token_budget is not None and step_token_budget < 1:
            raise ValueError("step_token_budget must be >= 1")
        if hol_bypass_limit < 0:
            raise ValueError("hol_bypass_limit must be >= 0")
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.step_token_budget = step_token_budget
        self.hol_bypass_limit = int(hol_bypass_limit)
        #: Cross-turn/cross-request prefix reuse: at admission the pool's
        #: hash chain is matched against the prompt and every resident
        #: page (including promoted conversation tails) is attached
        #: instead of re-encoded; only the unmatched suffix is forwarded.
        #: Disable to benchmark cold-start behaviour.  CAUTION when
        #: combining with ``record_reference``: an attached prefix has
        #: no raw (pre-quantization) K/V to record, so ``raw_prompt``
        #: covers only the *forwarded* suffix.  Naive whole-prompt
        #: reference audits must either disable reuse (what
        #: bench_serve_throughput/bench_workload_traces do) or rebuild
        #: the reference reuse-aware by concatenating raws across the
        #: turns that actually encoded each span (what
        #: bench_session_reuse does).
        self.prefix_reuse = bool(prefix_reuse)
        #: Optional synchronous charging: when set (with a virtual
        #: ``clock``), prefill and decode work advances the clock as it
        #: happens, so a request's own prefill cost lands in its TTFT —
        #: warm (reused-prefix) turns come out measurably faster than
        #: cold ones even on an idle engine.  Replay-side charging
        #: (``replay_trace``) remains the fused-step roofline; do not
        #: combine the two on one engine.
        self.step_cost = step_cost
        if step_cost is not None and not hasattr(clock, "advance"):
            raise ValueError(
                "step_cost needs an advanceable clock (VirtualClock); "
                "a wall clock cannot be charged simulated time"
            )
        self.metrics = EngineMetrics(registry)
        self.set_obs_track("engine")
        self._last_pool_sample = None
        self.weights = weights
        self.act_quant = act_quant
        self.record_reference = record_reference
        self.clock = clock
        self.requests: list[Request] = []
        self._next_request = 0
        self._used_ids: set[str] = set()
        #: Composition of the most recent step, for replay cost models:
        #: prompt tokens ingested, decode tokens generated, and the KV
        #: bytes decode attention read.
        self.last_step = {
            "prefill_tokens": 0,
            "decode_tokens": 0,
            "kv_read_bytes": 0.0,
        }

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry every engine/pool counter mirrors into."""
        return self.metrics.registry

    def set_obs_track(self, track: str) -> None:
        """Rename this engine's trace tracks — the cluster router calls
        this to give each replica its own rows (``replica0/decode``,
        ``replica0/pool``, ...) in the Chrome export."""
        self.obs_track = track
        #: Precomputed per-phase track names, so the hot step loop does
        #: no string formatting when tracing is disabled.
        self._phase_tracks = {
            name: f"{track}/{name}"
            for name in ("evict", "admit", "prefill", "preempt", "decode")
        }
        self.pool.track = f"{track}/pool"

    def _sample_pool_gauges(self) -> None:
        """Per-step pool occupancy: registry gauges always, Chrome
        counter samples only when tracing and only on change (a steady
        pool adds no events)."""
        pool = self.pool
        registry = self.metrics.registry
        registry.gauge_set("pool.bytes_resident", pool.bytes_resident)
        registry.gauge_set("pool.bytes_active", pool.bytes_active)
        registry.gauge_set("pool.bytes_evictable", pool.bytes_evictable)
        registry.gauge_set("pool.bytes_swapped", pool.bytes_swapped)
        if self.obs.enabled:
            sample = (
                pool.bytes_active,
                pool.bytes_evictable,
                pool.bytes_swapped,
            )
            if sample != self._last_pool_sample:
                self._last_pool_sample = sample
                self.obs.counter(
                    "pool.bytes_active", pool.bytes_active, pool.track
                )
                self.obs.counter(
                    "pool.bytes_evictable", pool.bytes_evictable, pool.track
                )
                self.obs.counter(
                    "pool.bytes_swapped", pool.bytes_swapped, pool.track
                )

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        request_id: str | None = None,
        eos_token: int | None = None,
        session_id: str | None = None,
        slo=None,
        tenant: str | None = None,
    ) -> Request:
        """Queue one request; rejects requests that can never fit.

        Caller-supplied IDs must be unique; auto-generated IDs are
        assigned only after the request passes the budget check, so a
        rejected or invalid request burns neither an ID nor a counter.
        ``session_id`` tags the request as one turn of a multi-turn
        conversation (see ``repro.serve.session``) for report
        attribution and cluster session affinity.  ``slo`` attaches
        latency objectives (``repro.serve.slo.SLO``) the deadline-aware
        policy schedules and sheds on; ``tenant`` tags the request for
        the async front-end's per-tenant accounting.
        """
        request = Request(
            request_id="",
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            eos_token=eos_token,
            session_id=session_id,
            slo=slo,
            tenant=tenant,
        )
        if request_id is not None and request_id in self._used_ids:
            raise ValueError(f"duplicate request_id {request_id!r}")
        full_bytes = (
            request.prompt_len + request.max_new_tokens
        ) * self.backend.per_token_nbytes
        if full_bytes > self.pool.byte_budget:
            raise BudgetExceededError(
                f"request needs {full_bytes} B of KV at full length but the "
                f"pool budget is {self.pool.byte_budget} B"
            )
        if request_id is None:
            while f"req-{self._next_request}" in self._used_ids:
                self._next_request += 1
            request_id = f"req-{self._next_request}"
            self._next_request += 1
        request.request_id = request_id
        self._used_ids.add(request_id)
        request.metrics.arrival_s = self.clock()
        self.requests.append(request)
        self.scheduler.submit(request)
        return request

    # ------------------------------------------------------------------
    # Scheduling helpers.
    # ------------------------------------------------------------------
    def _growth_need(self, request: Request) -> int:
        """Bytes a re-admitted request claims on its next step of work:
        one decode token, or its next prefill chunk while mid-prompt."""
        per_token = self.backend.per_token_nbytes
        if request.prefill_done:
            return per_token
        remaining = request.prompt_len - request.prefill_pos
        chunk = self.prefill_chunk_tokens or remaining
        return min(chunk, remaining) * per_token

    def _admit(self) -> int:
        """Swapped victims first, then fresh prefills; returns the
        prompt tokens ingested by whole-prompt (unchunked) prefills."""
        scheduler, pool = self.scheduler, self.pool
        per_token = self.backend.per_token_nbytes
        tokens = 0
        head_stuck = False
        # Preempted requests first: their compressed bytes swap back in.
        while scheduler.swapped and scheduler.has_batch_room:
            request = scheduler.swapped[0]
            need = request.kv.logical_nbytes + self._growth_need(request)
            if need > scheduler.admission_headroom(pool) and scheduler.num_active:
                head_stuck = True
                break
            request.kv.swap_in()
            scheduler.activate(request, "swapped")
        # Then fresh prefills.  A swapped head that cannot currently fit
        # no longer blocks the whole queue: up to ``hol_bypass_limit``
        # fresh requests may be admitted past it per step.  The blocked
        # condition is only real — and only counted — if there actually
        # is fresh work queued behind the stuck head.
        blocked = head_stuck and bool(scheduler.waiting)
        bypassed = 0
        while scheduler.waiting:
            now = self.clock()
            # The policy picks the admission candidate (FCFS: queue
            # head; deadline: earliest TTFT deadline) and may refuse it
            # outright — a request whose SLO is already blown at
            # admission is shed through the 429 path instead of burning
            # prefill work on a token nobody is waiting for.  Shedding
            # proceeds even with a full batch: it only clears backlog.
            request = scheduler.peek_waiting(now)
            if scheduler.policy.should_shed(request, now):
                scheduler.shed(request)
                self.metrics.shed_requests += 1
                continue
            if not scheduler.has_batch_room:
                break
            if head_stuck and bypassed >= self.hol_bypass_limit:
                break
            if (
                self.step_token_budget is not None
                and self.prefill_chunk_tokens is None
                and self.step_token_budget
                - len(scheduler.running)
                - tokens
                <= 0
            ):
                break
            # Unified headroom formula: the prompt plus one decode token
            # of growth — exactly what the swapped path asks for — so a
            # fresh admission is never immediately preempted for lack of
            # decode headroom.
            need = (request.prompt_len + 1) * per_token
            if need > scheduler.admission_headroom(pool) and scheduler.num_active:
                break
            if self.prefill_chunk_tokens is not None:
                self._start_chunked(request)
            else:
                tokens += self._prefill(request)
            if head_stuck:
                bypassed += 1
                self.metrics.hol_bypasses += 1
        if blocked:
            self.metrics.hol_blocked_steps += 1
        return tokens

    def _attach_prefix(self, request: Request) -> int:
        """Attach whatever resident prefix the pool holds for this
        prompt; records the per-request and engine-level reuse metrics.
        Returns the attached token count (0 on a cold start)."""
        if not self.prefix_reuse:
            return 0
        attached = request.kv.attach_cached_prefix()
        if attached:
            request.metrics.cached_tokens = attached
            request.metrics.cached_pages = len(request.kv.pages)
            request.metrics.split_tokens = request.kv.split_tokens
            self.metrics.warm_prefills += 1
            self.metrics.prefix_tokens_reused += attached
            self.metrics.prefix_pages_reused += len(request.kv.pages)
            if request.kv.split_tokens:
                self.metrics.prefix_partial_attaches += 1
                self.metrics.split_tokens_salvaged += request.kv.split_tokens
        return attached

    def _charge_prefill(self, tokens: int) -> None:
        if self.step_cost is not None and tokens:
            self.clock.advance(self.step_cost.prefill_s(tokens))

    def _prefill(self, request: Request) -> int:
        """Admit one request the unchunked way: run its prompt in one
        forward pass — the whole prompt on a cold start, only the
        unmatched suffix when a cached prefix attaches — and emit its
        first token.  Returns the prompt tokens this cost the step."""
        request.kv = self.backend.create_request(
            self.pool, request.prompt, record_raw=self.record_reference
        )
        attached = self._attach_prefix(request)
        if attached:
            # Warm start: the attached history is read straight from the
            # cache; only the suffix runs through the model (the same
            # stored-history attention path chunked prefill uses).
            request.kv.begin_chunk(attached, request.prompt_len)
            logits = prefill_chunk(
                self.model,
                request.prompt[attached:],
                attached,
                _ChunkIngestKV(request.kv),
                weights=self.weights,
                act_quant=self.act_quant,
            )
            request.kv.commit_chunk()
            last_logits = logits[-1]
        else:
            logits = self.model.forward(
                request.prompt[None, :],
                weights=self.weights,
                act_quant=self.act_quant,
                kv_quant=request.kv.prefill_hook(),
            )
            request.kv.commit_prompt()
            last_logits = logits[0, -1]
        tokens = request.prompt_len - attached
        request.prefill_pos = request.prompt_len
        request.metrics.prefill_chunks = 1
        self.metrics.prefill_forwarded_tokens += tokens
        self._charge_prefill(tokens)
        self.scheduler.activate(request, "waiting")
        self._emit_first_token(request, last_logits)
        return tokens

    def _start_chunked(self, request: Request) -> None:
        """Admit one request into the chunked-prefill queue."""
        request.kv = self.backend.create_request(
            self.pool, request.prompt, record_raw=self.record_reference
        )
        attached = self._attach_prefix(request)
        if attached:
            request.prefill_pos = attached
        else:
            request.kv.begin_ingest()
        self.scheduler.activate(request, "waiting")

    def _emit_first_token(self, request: Request, last_logits) -> None:
        first = int(np.argmax(last_logits))
        now = self.clock()
        request.generated.append(first)
        request.metrics.first_token_s = now
        request.metrics.token_s.append(now)
        self.metrics.prefills += 1
        self.metrics.registry.observe(
            "request.ttft_s", now - request.metrics.arrival_s
        )
        self.obs.instant(
            "first_token", request.request_id, cat="request", token=first
        )
        if request.finished:
            self._finish(request, now)

    def _chunk_work(self, tokens_used: int) -> int:
        """Run prefill chunks for PREFILLING requests within the step's
        token budget; returns the prompt tokens ingested."""
        scheduler, pool = self.scheduler, self.pool
        per_token = self.backend.per_token_nbytes
        page = self.pool.page_tokens
        tokens = 0
        # Oldest first — by *arrival*, not queue insertion order (swap
        # round-trips reorder the queue).  The stall policy below lets a
        # stalled request displace only younger rivals, so the oldest
        # must get first claim on headroom or two mutually-stalled
        # prefills can deadlock: a younger head stalls, breaks the loop,
        # and the older request that could preempt it never runs.
        for request in sorted(
            scheduler.prefilling, key=lambda r: r.metrics.arrival_s
        ):
            if request.state is not RequestState.PREFILLING:
                continue  # preempted by an older stalled chunk below
            allowance = None
            if self.step_token_budget is not None:
                allowance = (
                    self.step_token_budget
                    - tokens_used
                    - tokens
                    - len(scheduler.running)
                )
                if allowance <= 0:
                    break
            remaining = request.prompt_len - request.prefill_pos
            chunk = min(self.prefill_chunk_tokens, remaining)
            if allowance is not None:
                chunk = min(chunk, allowance)
            if chunk < remaining:
                # Mid-prompt chunks must end on a page boundary — except
                # for warm requests, whose attached prefix may end
                # mid-page (their tail is promoted whole at release).
                align = request.kv.chunk_align
                chunk = (chunk // align) * align
                if chunk == 0:
                    break
            # Byte headroom for the chunk, *plus* this step's decode
            # growth — otherwise a chunk could be ingested only for the
            # capacity pass moments later to swap the same request
            # straight back out.  Decoding requests are never displaced
            # for prefill work — but younger *prefilling* requests are,
            # which is what breaks the mutual-stall case where several
            # long prompts were admitted together and none could
            # otherwise finish ingesting.
            need = (chunk + len(scheduler.running)) * per_token
            stalled = False
            while not pool.can_fit_with_eviction(need):
                # Never displace a *strictly older* rival (it has more
                # sunk work); same-instant arrivals are fair game, which
                # keeps the oldest stalled request able to make room.
                rivals = [
                    r
                    for r in scheduler.prefilling
                    if r is not request
                    and r.metrics.arrival_s >= request.metrics.arrival_s
                ]
                if not rivals:
                    stalled = True
                    break
                victim = max(rivals, key=lambda r: r.metrics.arrival_s)
                victim.kv.swap_out()
                scheduler.preempt(victim)
                self.metrics.preemptions += 1
                self.obs.instant(
                    "preempt",
                    victim.request_id,
                    cat="request",
                    cause="prefill_stall",
                )
            if stalled:
                self.metrics.prefill_stalls += 1
                break
            start = request.prefill_pos
            end = start + chunk
            request.kv.begin_chunk(start, end)
            logits = prefill_chunk(
                self.model,
                request.prompt[start:end],
                start,
                _ChunkIngestKV(request.kv),
                weights=self.weights,
                act_quant=self.act_quant,
            )
            request.kv.commit_chunk()
            request.prefill_pos = end
            request.metrics.prefill_chunks += 1
            self.obs.instant(
                "prefill_chunk",
                request.request_id,
                cat="request",
                start=start,
                end=end,
            )
            self.metrics.prefill_chunks += 1
            self.metrics.chunked_prefill_tokens += chunk
            self.metrics.prefill_forwarded_tokens += chunk
            self._charge_prefill(chunk)
            tokens += chunk
            if request.prefill_done:
                self.scheduler.promote(request)
                self._emit_first_token(request, logits[-1])
        return tokens

    def _ensure_decode_capacity(self) -> None:
        """Preempt (youngest first) until this step's KV growth fits.

        Enforced down to the last running request: if even a lone
        request's one-token growth cannot fit after preempting every
        other active request and draining the prefix cache, the engine
        fails loudly instead of letting the pool exceed its budget.
        """
        scheduler, pool = self.scheduler, self.pool
        while True:
            need = len(scheduler.running) * self.backend.per_token_nbytes
            if pool.can_fit_with_eviction(need):
                return
            victim = scheduler.pick_victim(self.clock())
            if victim is None:
                raise RuntimeError(
                    f"KV byte budget cannot absorb this step's {need} B of "
                    f"decode growth even with a single active request "
                    f"({pool.bytes_active} B active of "
                    f"{pool.byte_budget} B); the budget is too small for "
                    f"the admitted request"
                )
            victim.kv.swap_out()
            scheduler.preempt(victim)
            self.metrics.preemptions += 1
            self.obs.instant(
                "preempt",
                victim.request_id,
                cat="request",
                cause="decode_growth",
            )

    def _finish(self, request: Request, now: float) -> None:
        # Releasing a request can only unpin bytes (tail promotion moves
        # private bytes into an evictable page; page releases demote to
        # the prefix cache).  If active bytes *rose*, release leaked a
        # pin somewhere — fail here, attributably, not at some later
        # budget check.
        active_before = self.pool.bytes_active
        request.kv.release()
        if self.pool.bytes_active > active_before:
            raise RuntimeError(
                f"releasing {request.request_id!r} raised active KV bytes "
                f"{active_before} -> {self.pool.bytes_active}"
            )
        self.scheduler.finish(request)
        request.metrics.finish_s = now
        self.metrics.registry.observe(
            "request.e2e_s", now - request.metrics.arrival_s
        )

    # ------------------------------------------------------------------
    # The step loop.
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One scheduler iteration; returns tokens processed this step
        (prompt tokens ingested plus decode tokens generated).

        Each phase runs under its own trace span (``cat="phase"``), so a
        recorded step renders as five rows — evict / admit / prefill /
        preempt / decode — in the Chrome export.  The capacity pass that
        used to open ``_decode`` runs as the explicit ``preempt`` phase,
        so preemption cost is visible separately from decode compute;
        the work order is unchanged.
        """
        obs, tracks = self.obs, self._phase_tracks
        # Age stale prefix-cache pages out before admission sizes its
        # headroom, so TTL-expired bytes never crowd out a new request.
        with obs.span("evict", tracks["evict"], cat="phase"):
            self.pool.expire_ttl()
        with obs.span("admit", tracks["admit"], cat="phase"):
            prefill_tokens = self._admit()
        with obs.span("prefill", tracks["prefill"], cat="phase"):
            prefill_tokens += self._chunk_work(prefill_tokens)
        with obs.span("preempt", tracks["preempt"], cat="phase"):
            if self.scheduler.running:
                self._ensure_decode_capacity()
        with obs.span("decode", tracks["decode"], cat="phase"):
            decode_tokens, kv_read = self._decode()
        self.last_step = {
            "prefill_tokens": prefill_tokens,
            "decode_tokens": decode_tokens,
            "kv_read_bytes": kv_read,
        }
        # The budget is a hard invariant; any drift fails here, loudly.
        self.pool.check_budget()
        self._sample_pool_gauges()
        return prefill_tokens + decode_tokens

    def _decode(self) -> tuple[int, float]:
        if not self.scheduler.running:
            return 0, 0.0
        batch = list(self.scheduler.running)
        # Count concurrency after the capacity pass: these requests
        # actually decode together this step.
        self.metrics.record_concurrency(len(batch))

        token_ids = np.array([r.generated[-1] for r in batch], dtype=np.int64)
        positions = np.array([r.kv.num_tokens for r in batch], dtype=np.int64)
        batch_kv = _PoolBatchKV(batch)
        logits = decode_step(
            self.model,
            token_ids,
            positions,
            batch_kv,
            weights=self.weights,
            act_quant=self.act_quant,
        )
        for request in batch:
            request.kv.commit_token(request.generated[-1])
        # Traffic is accounted after commits (so the fp16-equivalent sum
        # counts this step's token, like the compressed sum does) but
        # before finishes release any KV: attention read every request's
        # full history this step, including the ones about to finish.
        kv_read = float(sum(r.kv.logical_nbytes for r in batch))
        kv_read_fp16 = float(sum(r.kv.logical_fp16_nbytes for r in batch))
        if self.step_cost is not None:
            self.clock.advance(self.step_cost.decode_s(len(batch), kv_read))
        now = self.clock()
        for r, request in enumerate(batch):
            request.generated.append(int(np.argmax(logits[r])))
            request.metrics.token_s.append(now)
            if request.finished:
                self._finish(request, now)

        spec = self.model.spec
        self.metrics.record_decode_step(
            batch=len(batch),
            kv_read_bytes=kv_read,
            kv_read_fp16_bytes=kv_read_fp16,
            sectors=decode_step_sectors(
                spec.num_layers,
                spec.d_model,
                spec.ffn_dim,
                len(batch),
                kv_read,
            ),
        )
        return len(batch), kv_read

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work

    def run(self, max_steps: int = 100_000) -> dict:
        """Drive ``step()`` until every submitted request finishes."""
        start = self.clock()
        steps = 0
        while self.scheduler.has_work:
            if steps >= max_steps:
                raise RuntimeError(f"engine did not drain in {max_steps} steps")
            self.step()
            steps += 1
        return self.report(self.clock() - start)

    def report(self, elapsed_s: float) -> dict:
        summary = self.metrics.summary(self.requests, self.pool, elapsed_s)
        summary["storage"] = self.backend.name
        summary["per_token_nbytes"] = self.backend.per_token_nbytes
        return summary
