"""The serving engine: paged compressed KV + continuous batching.

One :class:`ServingEngine` owns a proxy model, a storage backend (Ecco
blocks or fp16), a byte-budgeted :class:`~repro.serve.pool.PagedKVPool`
and a :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`.  Each
``step()`` interleaves admission (swapped victims first, then new
prefills while the pool has headroom) with one batched decode over every
running request via :func:`repro.llm.decode_step`; when the next step's
KV growth would not fit the budget, the youngest request is preempted —
its pages swap out *in compressed form* and its decoded-segment caches
stay, so re-admission costs swap traffic but zero re-decode.
"""

from __future__ import annotations

import time

import numpy as np

from repro.llm.decode import decode_step
from repro.llm.model import ProxyModel

from .metrics import EngineMetrics, decode_step_sectors
from .pool import PagedKVPool
from .request import Request, RequestState
from .scheduler import ContinuousBatchingScheduler
from .storage import EccoKVBackend, Fp16KVBackend

__all__ = ["ServingEngine"]


class _PoolBatchKV:
    """Adapter: the running batch's RequestKVs behind the BatchKV protocol."""

    def __init__(self, requests: list[Request]):
        self.requests = requests

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        for r, request in enumerate(self.requests):
            request.kv.append_token_layer(layer, keys[r], values[r])

    def read(self, layer: int):
        keys = [request.kv.read(layer, "keys") for request in self.requests]
        values = [request.kv.read(layer, "values") for request in self.requests]
        return keys, values


class ServingEngine:
    """Multi-request serving over a byte-budgeted paged KV pool."""

    def __init__(
        self,
        model: ProxyModel,
        calib=None,
        *,
        storage: str = "ecco",
        byte_budget: int,
        page_tokens: int = 8,
        max_batch_size: int = 8,
        watermark: float = 0.05,
        weights: dict | None = None,
        act_quant=None,
        record_reference: bool = False,
        clock=time.perf_counter,
    ):
        self.model = model
        spec = model.spec
        if storage == "ecco":
            if calib is None:
                raise ValueError("the ecco backend needs calibration data")
            self.backend = EccoKVBackend(spec.num_layers, spec.d_model, calib)
        elif storage == "fp16":
            self.backend = Fp16KVBackend(spec.num_layers, spec.d_model)
        else:
            raise KeyError(f"unknown storage {storage!r}; known: ecco, fp16")
        self.pool = PagedKVPool(byte_budget, page_tokens=page_tokens)
        self.scheduler = ContinuousBatchingScheduler(
            max_batch_size=max_batch_size, watermark=watermark
        )
        self.metrics = EngineMetrics()
        self.weights = weights
        self.act_quant = act_quant
        self.record_reference = record_reference
        self.clock = clock
        self.requests: list[Request] = []
        self._next_request = 0

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        request_id: str | None = None,
        eos_token: int | None = None,
    ) -> Request:
        """Queue one request; rejects requests that can never fit."""
        if request_id is None:
            request_id = f"req-{self._next_request}"
        self._next_request += 1
        request = Request(
            request_id=request_id,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            eos_token=eos_token,
        )
        full_bytes = (
            request.prompt_len + request.max_new_tokens
        ) * self.backend.per_token_nbytes
        if full_bytes > self.pool.byte_budget:
            raise ValueError(
                f"request needs {full_bytes} B of KV at full length but the "
                f"pool budget is {self.pool.byte_budget} B"
            )
        request.metrics.arrival_s = self.clock()
        self.requests.append(request)
        self.scheduler.submit(request)
        return request

    # ------------------------------------------------------------------
    # Scheduling helpers.
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        scheduler, pool = self.scheduler, self.pool
        # Preempted requests first: their compressed bytes swap back in.
        while scheduler.swapped and scheduler.has_batch_room:
            request = scheduler.swapped[0]
            need = request.kv.logical_nbytes + self.backend.per_token_nbytes
            if need > scheduler.admission_headroom(pool) and scheduler.running:
                break
            request.kv.swap_in()
            scheduler.activate(request, "swapped")
        # Then fresh prefills.
        while (
            scheduler.waiting
            and scheduler.has_batch_room
            and not scheduler.swapped
        ):
            request = scheduler.waiting[0]
            need = request.prompt_len * self.backend.per_token_nbytes
            if need > scheduler.admission_headroom(pool) and scheduler.running:
                break
            self._prefill(request)

    def _prefill(self, request: Request) -> None:
        """Admit one request: run its prompt, emit its first token."""
        request.kv = self.backend.create_request(
            self.pool, request.prompt, record_raw=self.record_reference
        )
        logits = self.model.forward(
            request.prompt[None, :],
            weights=self.weights,
            act_quant=self.act_quant,
            kv_quant=request.kv.prefill_hook(),
        )
        request.kv.commit_prompt()
        self.scheduler.activate(request, "waiting")
        first = int(np.argmax(logits[0, -1]))
        now = self.clock()
        request.generated.append(first)
        request.metrics.first_token_s = now
        request.metrics.token_s.append(now)
        self.metrics.prefills += 1
        if request.finished:
            self._finish(request, now)

    def _ensure_decode_capacity(self) -> None:
        """Preempt (youngest first) until this step's KV growth fits."""
        scheduler, pool = self.scheduler, self.pool
        while len(scheduler.running) > 1:
            need = len(scheduler.running) * self.backend.per_token_nbytes
            if pool.can_fit_with_eviction(need):
                return
            victim = scheduler.pick_victim()
            victim.kv.swap_out()
            scheduler.preempt(victim)
            self.metrics.preemptions += 1

    def _finish(self, request: Request, now: float) -> None:
        request.kv.release()
        self.scheduler.finish(request)
        request.metrics.finish_s = now

    # ------------------------------------------------------------------
    # The step loop.
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One scheduler iteration; returns tokens generated this step."""
        self._admit()
        if not self.scheduler.running:
            return 0
        self._ensure_decode_capacity()
        batch = list(self.scheduler.running)
        # Count concurrency after the capacity pass: these requests
        # actually decode together this step.
        self.metrics.record_concurrency(len(batch))

        token_ids = np.array([r.generated[-1] for r in batch], dtype=np.int64)
        positions = np.array([r.kv.num_tokens for r in batch], dtype=np.int64)
        batch_kv = _PoolBatchKV(batch)
        logits = decode_step(
            self.model,
            token_ids,
            positions,
            batch_kv,
            weights=self.weights,
            act_quant=self.act_quant,
        )
        now = self.clock()
        for request in batch:
            request.kv.commit_token(request.generated[-1])
        # Traffic is accounted before finishes release any KV: attention
        # read every request's full history this step, including the ones
        # about to finish.
        kv_read = float(sum(r.kv.logical_nbytes for r in batch))
        kv_read_fp16 = float(sum(r.kv.logical_fp16_nbytes for r in batch))
        for r, request in enumerate(batch):
            request.generated.append(int(np.argmax(logits[r])))
            request.metrics.token_s.append(now)
            if request.finished:
                self._finish(request, now)

        spec = self.model.spec
        self.metrics.record_decode_step(
            batch=len(batch),
            kv_read_bytes=kv_read,
            kv_read_fp16_bytes=kv_read_fp16,
            sectors=decode_step_sectors(
                spec.num_layers,
                spec.d_model,
                spec.ffn_dim,
                len(batch),
                kv_read,
            ),
        )
        return len(batch)

    def run(self, max_steps: int = 100_000) -> dict:
        """Drive ``step()`` until every submitted request finishes."""
        start = self.clock()
        steps = 0
        while self.scheduler.has_work:
            if steps >= max_steps:
                raise RuntimeError(f"engine did not drain in {max_steps} steps")
            self.step()
            steps += 1
        return self.report(self.clock() - start)

    def report(self, elapsed_s: float) -> dict:
        summary = self.metrics.summary(self.requests, self.pool, elapsed_s)
        summary["storage"] = self.backend.name
        summary["per_token_nbytes"] = self.backend.per_token_nbytes
        return summary
