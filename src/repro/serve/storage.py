"""Storage backends: per-request paged KV state over the shared pool.

Two backends serve the same engine: :class:`EccoKVBackend` stores pages
as Ecco 64-byte blocks (one :class:`~repro.core.KVCacheStream` per
layer per request, so reads reuse the PR-2 decoded-segment cache and a
preempted request re-admits without re-decoding history), and
:class:`Fp16KVBackend` stores raw fp16 — the capacity baseline.

A request's KV lives in two tiers: *pages* (full ``page_tokens`` units,
pool-accounted, prefix-shared, swap units) and a *private tail* (the
most recent tokens, appended one per decode step).  When the tail fills
a page the backend coalesces it — for Ecco a pure block concatenation
via ``KVCacheStream.coalesce`` that rewrites segments without touching
a byte of payload — and promotes it into the pool, where a concurrent
request that generated the identical continuation would share it.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    KV_CONFIG,
    KVCacheCodec,
    KVCacheStream,
    split_token_segment,
)
from repro.llm.quantize import fit_kv_codec

from .pool import ROOT_CHAIN, KVPage, PagedKVPool, chain_hash

__all__ = ["EccoKVBackend", "Fp16KVBackend", "RequestKV"]


def _parse_hook_name(name: str) -> tuple[int, str]:
    """'layers.3.k_cache' -> (3, 'keys')."""
    layer = int(name.split(".")[1])
    side = "keys" if name.endswith("k_cache") else "values"
    return layer, side


def _split_page_payload(backend, payload: dict, head_tokens: int):
    """Split every layer's K/V segments of a page payload at a token
    boundary, in the ``PagedKVPool.split_page`` splitter protocol.

    Returns ``(head_payload, head_nbytes, head_fp16_nbytes,
    tail_payload, tail_nbytes, tail_fp16_nbytes)``.  Both storage
    formats split without touching payload values — Ecco slices block
    rows (per-token group padding makes each token's blocks
    self-contained), fp16 slices array rows — so the halves decode
    bit-exactly to what a fresh encode of each slice would produce and
    the byte totals are conserved exactly.
    """
    head_payload: dict = {}
    tail_payload: dict = {}
    head_nbytes = tail_nbytes = 0
    for layer, (k_seg, v_seg) in payload.items():
        k_head, k_tail = backend.split_segment(k_seg, head_tokens)
        v_head, v_tail = backend.split_segment(v_seg, head_tokens)
        head_payload[layer] = (k_head, v_head)
        tail_payload[layer] = (k_tail, v_tail)
        head_nbytes += backend.segment_nbytes(k_head)
        head_nbytes += backend.segment_nbytes(v_head)
        tail_nbytes += backend.segment_nbytes(k_tail)
        tail_nbytes += backend.segment_nbytes(v_tail)
    per_fp16 = backend.per_token_fp16_nbytes
    tail_tokens = next(
        backend.segment_tokens(pair[0]) for pair in tail_payload.values()
    )
    return (
        head_payload,
        head_nbytes,
        head_tokens * per_fp16,
        tail_payload,
        tail_nbytes,
        tail_tokens * per_fp16,
    )


class RequestKV:
    """One request's paged KV: pages + private tail + decoded reads.

    Subclasses implement the storage format; this base owns the paging
    arithmetic, the pool accounting, the page hash chain, and the
    prefill capture protocol (the object doubles as the ``kv_quant``
    hook a prefill forward pass runs through).
    """

    def __init__(
        self,
        backend,
        pool: PagedKVPool,
        prompt_ids: np.ndarray,
        record_raw: bool = False,
    ):
        self.backend = backend
        self.pool = pool
        self.page_tokens = pool.page_tokens
        self.prompt_ids = [int(t) for t in np.asarray(prompt_ids).reshape(-1)]
        self.token_ids: list[int] = []
        self.pages: list[KVPage] = []
        self.resident = True
        self._pending: dict | None = {}
        self._chunk_bounds: tuple[int, int] | None = None
        self._chunk_segments: dict[int, tuple[list, list]] = {}
        self._unpaged_nbytes = 0
        self._unpaged_fp16_nbytes = 0
        #: Warm (turn-continuation) mode: a cached prefix was attached,
        #: so the rest of the prompt ingests at arbitrary boundaries as
        #: private tail segments (promoted to a chain page at release).
        self._warm = False
        #: Prompt tokens served straight from the prefix cache.
        self.attached_tokens = 0
        #: The slice of ``attached_tokens`` salvaged by a partial-page
        #: split (zero when the match ended on a page boundary).
        self.split_tokens = 0
        self._released = False
        # Page hash chain over the prompt's full pages.
        P = self.page_tokens
        self._num_prompt_pages = len(self.prompt_ids) // P
        self._page_chains: list[str] = []
        chain = ROOT_CHAIN
        for j in range(self._num_prompt_pages):
            chain = chain_hash(chain, self.prompt_ids[j * P : (j + 1) * P])
            self._page_chains.append(chain)
        self._last_chain = chain
        # Raw (pre-quantization) K/V history for bit-exactness audits.
        self.raw_prompt: dict | None = None
        self.raw_decode: dict | None = None
        if record_raw:
            L = backend.num_layers
            self.raw_prompt = {
                layer: {"keys": None, "values": None} for layer in range(L)
            }
            self.raw_decode = {
                layer: {"keys": [], "values": []} for layer in range(L)
            }

    # ------------------------------------------------------------------
    # Paging arithmetic.
    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        return len(self.token_ids)

    @property
    def paged_tokens(self) -> int:
        return sum(page.num_tokens for page in self.pages)

    @property
    def unpaged_tokens(self) -> int:
        return self.num_tokens - self.paged_tokens

    @property
    def logical_nbytes(self) -> int:
        """Bytes this request's attention reads each step (its whole KV,
        whether or not some pages are physically shared)."""
        return sum(page.nbytes for page in self.pages) + self._unpaged_nbytes

    @property
    def logical_fp16_nbytes(self) -> int:
        return self.num_tokens * self.backend.per_token_fp16_nbytes

    @property
    def chunk_align(self) -> int:
        """Boundary granularity mid-prompt chunks must land on: page
        boundaries normally, any token once a cached prefix (which may
        end mid-page) was attached."""
        return 1 if self._warm else self.page_tokens

    # ------------------------------------------------------------------
    # Prefill: the object is the kv_quant hook of the prefill forward.
    # ------------------------------------------------------------------
    def prefill_hook(self):
        """The ``kv_quant`` callable a prefill forward pass runs through.

        For every layer's K then V it chunks the prompt KV into pages
        (reusing a shared resident page's payload instead of re-encoding
        when the prefix chain hits) plus a tail segment, and returns the
        storage roundtrip — so prefill logits see exactly the KV later
        decode steps will read.
        """
        def hook(name: str, kv: np.ndarray) -> np.ndarray:
            layer, side = _parse_hook_name(name)
            kv = np.asarray(kv, dtype=np.float32)
            if self.raw_prompt is not None:
                self.raw_prompt[layer][side] = kv.copy()
            segments, decoded = self._encode_prompt_side(layer, side, kv)
            self._pending[(layer, side)] = segments
            return decoded
        return hook

    def _acquire_prompt_page(self, j: int, payload_for) -> None:
        """Acquire prompt page ``j`` — shared on a chain hit, otherwise
        built from ``payload_for(layer) -> (k_seg, v_seg)``."""
        P = self.page_tokens
        L = self.backend.num_layers
        ids = self.prompt_ids[j * P : (j + 1) * P]

        def build():
            payload = {layer: payload_for(layer) for layer in range(L)}
            nbytes = sum(
                self.backend.segment_nbytes(seg)
                for pair in payload.values()
                for seg in pair
            )
            return payload, nbytes, P * self.backend.per_token_fp16_nbytes

        parent = self._page_chains[j - 1] if j else ROOT_CHAIN
        page, _shared = self.pool.acquire(
            self._page_chains[j], ids, build, parent=parent
        )
        self.pages.append(page)

    def _reserve_tail(self, tail_tokens: int, tail_nbytes: int) -> None:
        """Account the prompt's sub-page tail as a private reservation."""
        self._unpaged_nbytes = tail_nbytes
        self._unpaged_fp16_nbytes = (
            tail_tokens * self.backend.per_token_fp16_nbytes
        )
        self.pool.reserve_private(tail_nbytes, self._unpaged_fp16_nbytes)

    def commit_prompt(self) -> None:
        """Promote the captured prompt KV into pool pages + tail state."""
        if self._pending is None:
            raise RuntimeError("prompt already committed")
        self.token_ids = list(self.prompt_ids)
        L = self.backend.num_layers
        P = self.page_tokens
        for j in range(self._num_prompt_pages):
            self._acquire_prompt_page(
                j,
                lambda layer, j=j: (
                    self._pending[(layer, "keys")][j],
                    self._pending[(layer, "values")][j],
                ),
            )
        self._init_layer_state()
        tail_tokens = len(self.prompt_ids) - self._num_prompt_pages * P
        if tail_tokens:
            tail_nbytes = sum(
                self.backend.segment_nbytes(
                    self._pending[(layer, side)][self._num_prompt_pages]
                )
                for layer in range(L)
                for side in ("keys", "values")
            )
            self._reserve_tail(tail_tokens, tail_nbytes)
        self._pending = None

    # ------------------------------------------------------------------
    # Cross-turn reuse: attach a cached prefix instead of re-encoding.
    # ------------------------------------------------------------------
    def attach_cached_prefix(self) -> int:
        """Pin resident pages covering a prompt prefix; returns tokens.

        Asks the pool's token-level trie for the longest resident match
        (full prompt pages *and* promoted conversation tails, so turn
        N+1 of a chat finds everything turn N left behind), pins each
        page and appends its payload to the layer state by reference —
        no forward pass, no re-encode.  A *partial* match — the prompt
        diverges inside a cached page — splits that page at the
        divergence point (bit-exact, no bytes move) and attaches the
        shared head too; the salvaged tokens are reported in
        ``split_tokens``.  At least one prompt token is always left
        unmatched (something must be forwarded to produce logits).  On a
        match the request switches to warm ingestion: the remaining
        suffix arrives through ``begin_chunk``/``ingest_chunk``/
        ``commit_chunk`` at arbitrary boundaries and accumulates as the
        private tail.  Must be called before any other ingestion;
        returns 0 (leaving the request untouched) when nothing matches.
        """
        if self.token_ids or self.pages:
            raise RuntimeError("attach_cached_prefix before any ingestion")
        match = self.pool.lookup_prefix(self.prompt_ids)
        matched = list(match.pages)
        total = sum(page.num_tokens for page in matched)
        trimmed = False
        while matched and total >= len(self.prompt_ids):
            total -= matched[-1].num_tokens
            matched.pop()
            trimmed = True
        # A partial node sits immediately past the full matches, so it
        # is only attachable when none of them were trimmed away.  Cap
        # the head so at least one prompt token stays unmatched, and
        # split only when the pool allows it (the page must be cached
        # and unreferenced — splitting under a live tenant is unsound)
        # and the salvage clears the cost-aware floor: a head shorter
        # than ``split_min_tokens`` costs more in block copies and
        # per-page overhead than re-encoding it would.
        if match.partial is not None and not trimmed:
            head_tokens = min(
                match.partial_tokens, len(self.prompt_ids) - 1 - total
            )
            if head_tokens >= self.pool.split_min_tokens:
                split = self.pool.split_page(
                    match.partial,
                    head_tokens,
                    self.backend.split_page_payload,
                )
                if split is not None:
                    matched.append(split[0])
                    total += head_tokens
                    self.split_tokens = head_tokens
        if not matched:
            return 0
        self.begin_ingest()
        self._warm = True

        def refuse_build():
            raise AssertionError("matched page must be a shared hit")

        for page in matched:
            pinned, shared = self.pool.acquire(
                page.chain, page.token_ids, refuse_build, parent=page.parent
            )
            self.pages.append(pinned)
            for layer in range(self.backend.num_layers):
                k_seg, v_seg = pinned.payload[layer]
                self._append_segment(layer, k_seg, v_seg)
            self.token_ids.extend(pinned.token_ids)
        self._note_pages_committed(len(matched))
        self._last_chain = matched[-1].chain
        self.attached_tokens = total
        return total

    # ------------------------------------------------------------------
    # Chunked prefill: page-aligned partial prompt commits.
    # ------------------------------------------------------------------
    def begin_ingest(self) -> None:
        """Switch to chunk-by-chunk prompt ingestion (chunked prefill).

        The whole-prompt path captures every layer through
        :meth:`prefill_hook` and lands in one :meth:`commit_prompt`;
        this path instead ingests page-aligned chunks — one
        :meth:`begin_chunk` / per-layer :meth:`ingest_chunk` /
        :meth:`commit_chunk` cycle per chunk — so a long prompt enters
        the cache interleaved with decode steps.  Because chunk
        boundaries sit on page boundaries and the codec plans per
        token, the stored bytes are identical to the whole-prompt pass.
        """
        self._pending = None
        self._chunk_bounds = None
        self._chunk_segments = {}
        self._init_layer_state_empty()

    def begin_chunk(self, start: int, end: int) -> None:
        """Open the chunk covering prompt tokens ``[start, end)``.

        ``start`` must sit on a page boundary and equal the tokens
        already ingested; ``end`` must sit on a page boundary too unless
        it is the end of the prompt (the tail rides in the final chunk).
        A warm request (cached prefix attached) ingests at arbitrary
        boundaries instead — its prefix may end mid-page.
        """
        P = self.page_tokens
        if start != self.num_tokens:
            raise ValueError(
                f"chunk starts at {start} but {self.num_tokens} prompt "
                f"tokens are ingested"
            )
        if self._warm:
            if not start < end <= len(self.prompt_ids):
                raise ValueError(f"bad chunk bounds [{start}, {end})")
            self._chunk_bounds = (start, end)
            self._chunk_segments = {}
            return
        if start % P:
            raise ValueError(f"chunk start {start} is not page-aligned")
        if end % P and end != len(self.prompt_ids):
            raise ValueError(
                f"chunk end {end} is neither page-aligned nor the "
                f"prompt end ({len(self.prompt_ids)})"
            )
        if not start <= end <= len(self.prompt_ids):
            raise ValueError(f"bad chunk bounds [{start}, {end})")
        self._chunk_bounds = (start, end)
        self._chunk_segments = {}

    def ingest_chunk(
        self, layer: int, k_chunk: np.ndarray, v_chunk: np.ndarray
    ) -> None:
        """Store one layer's K/V rows for the open chunk.

        Splits the chunk into page segments (reusing a shared resident
        page's payload instead of re-encoding on a prefix-chain hit)
        plus a tail segment when the chunk reaches the prompt end, and
        appends them to the layer state so attention over this request
        immediately reads them back — pool accounting happens at
        :meth:`commit_chunk`.
        """
        if self._chunk_bounds is None:
            raise RuntimeError("no open chunk; call begin_chunk first")
        start, end = self._chunk_bounds
        P = self.page_tokens
        k_chunk = np.asarray(k_chunk, dtype=np.float32)
        v_chunk = np.asarray(v_chunk, dtype=np.float32)
        if self.raw_prompt is not None:
            for side, chunk in (("keys", k_chunk), ("values", v_chunk)):
                held = self.raw_prompt[layer][side]
                self.raw_prompt[layer][side] = (
                    chunk.copy()
                    if held is None
                    else np.concatenate([held, chunk], axis=0)
                )
        if self._warm:
            # Warm suffix: one segment per side, appended as tail state.
            k_seg = self._encode_segment(layer, "keys", k_chunk)
            v_seg = self._encode_segment(layer, "values", v_chunk)
            self._append_segment(layer, k_seg, v_seg)
            self._chunk_segments[layer] = ([k_seg], [v_seg])
            return
        k_segments: list = []
        v_segments: list = []
        for j in range(start // P, end // P):
            lo, hi = j * P - start, (j + 1) * P - start
            shared = self.pool.peek(self._page_chains[j])
            if shared is not None:
                k_seg, v_seg = shared.payload[layer]
            else:
                k_seg = self._encode_segment(layer, "keys", k_chunk[lo:hi])
                v_seg = self._encode_segment(layer, "values", v_chunk[lo:hi])
            k_segments.append(k_seg)
            v_segments.append(v_seg)
        tail = end - (end // P) * P
        if tail:
            k_segments.append(
                self._encode_segment(layer, "keys", k_chunk[-tail:])
            )
            v_segments.append(
                self._encode_segment(layer, "values", v_chunk[-tail:])
            )
        for k_seg, v_seg in zip(k_segments, v_segments):
            self._append_segment(layer, k_seg, v_seg)
        self._chunk_segments[layer] = (k_segments, v_segments)

    def commit_chunk(self) -> None:
        """Promote the open chunk's full pages into the pool.

        Pages become shared, ref-counted pool pages (an identical
        resident page is re-pinned instead of duplicated); a prompt
        tail stays a private reservation exactly as the whole-prompt
        path leaves it.
        """
        if self._chunk_bounds is None:
            raise RuntimeError("no open chunk to commit")
        start, end = self._chunk_bounds
        if self._warm:
            # Warm chunks never page mid-prompt: they accumulate as the
            # private tail and are promoted as one chain page at release
            # (or by the decode-time pageify once the tail fills up).
            chunk_nbytes = sum(
                self.backend.segment_nbytes(seg)
                for pair in self._chunk_segments.values()
                for segments in pair
                for seg in segments
            )
            chunk_fp16 = (end - start) * self.backend.per_token_fp16_nbytes
            self._unpaged_nbytes += chunk_nbytes
            self._unpaged_fp16_nbytes += chunk_fp16
            self.pool.reserve_private(chunk_nbytes, chunk_fp16)
            self.token_ids.extend(self.prompt_ids[start:end])
            self._chunk_bounds = None
            self._chunk_segments = {}
            return
        P = self.page_tokens
        pages = range(start // P, end // P)
        for index, j in enumerate(pages):
            self._acquire_prompt_page(
                j,
                lambda layer, index=index: (
                    self._chunk_segments[layer][0][index],
                    self._chunk_segments[layer][1][index],
                ),
            )
        tail = end - (end // P) * P
        if tail:
            tail_nbytes = sum(
                self.backend.segment_nbytes(segments[-1])
                for pair in self._chunk_segments.values()
                for segments in pair
            )
            self._reserve_tail(tail, tail_nbytes)
        self.token_ids.extend(self.prompt_ids[start:end])
        self._note_pages_committed(len(pages))
        self._chunk_bounds = None
        self._chunk_segments = {}

    # ------------------------------------------------------------------
    # Decode appends.
    # ------------------------------------------------------------------
    def append_token_layer(
        self, layer: int, k_row: np.ndarray, v_row: np.ndarray
    ) -> None:
        """Append one decode token's K/V rows for one layer."""
        if self.raw_decode is not None:
            self.raw_decode[layer]["keys"].append(
                np.asarray(k_row, dtype=np.float32).copy()
            )
            self.raw_decode[layer]["values"].append(
                np.asarray(v_row, dtype=np.float32).copy()
            )
        delta_nbytes, delta_fp16 = self._append_layer(layer, k_row, v_row)
        self._unpaged_nbytes += delta_nbytes
        self._unpaged_fp16_nbytes += delta_fp16
        self.pool.reserve_private(delta_nbytes, delta_fp16)

    def commit_token(self, token_id: int) -> None:
        """Finish one decode token (all layers appended); page if full."""
        self.token_ids.append(int(token_id))
        if self.unpaged_tokens >= self.page_tokens:
            self._pageify()

    def _pageify(self) -> None:
        """Coalesce the full tail into a page and promote it to the pool."""
        start = self.paged_tokens
        ids = self.token_ids[start:]
        payload = self._collect_page_payload(start)
        parent = self._last_chain
        chain = chain_hash(parent, ids)
        nbytes = self._unpaged_nbytes
        fp16_nbytes = self._unpaged_fp16_nbytes
        self.pool.free_private(nbytes, fp16_nbytes)
        # Promotion moves no payload bytes (the tail was already written
        # and the coalesce is pure bookkeeping), so it is not a write.
        page, _shared = self.pool.acquire(
            chain, ids, lambda: (payload, nbytes, fp16_nbytes),
            count_write=False, parent=parent,
        )
        self.pages.append(page)
        self._last_chain = chain
        self._unpaged_nbytes = 0
        self._unpaged_fp16_nbytes = 0

    # ------------------------------------------------------------------
    # Preemption and teardown.
    # ------------------------------------------------------------------
    def swap_out(self) -> None:
        """Swap this request's KV out of the budget, in compressed form.

        Only the bytes actually leave: decoded-segment caches (and the
        streams themselves) are host-side state and survive untouched,
        so re-admission decodes nothing old.
        """
        if self._released:
            raise RuntimeError("request KV already released")
        if not self.resident:
            raise RuntimeError("already swapped out")
        for page in self.pages:
            self.pool.swap_out(page)
        self.pool.swap_private_out(
            self._unpaged_nbytes, self._unpaged_fp16_nbytes
        )
        self.resident = False

    def swap_in(self) -> None:
        if self.resident:
            raise RuntimeError("already resident")
        # swap_in may substitute a bit-identical page another tenant
        # rebuilt while we were out; track whichever copy now pins us.
        self.pages = [self.pool.swap_in(page) for page in self.pages]
        self.pool.swap_private_in(
            self._unpaged_nbytes, self._unpaged_fp16_nbytes
        )
        self.resident = True

    def release(self) -> None:
        """Drop every pool reference (request finished).

        The final partial page — the prompt's unpaged tail plus whatever
        decode tokens had not filled a page yet — is not discarded: it
        is promoted into a chain-addressable page first (a pure
        bookkeeping move, the bytes were already written), so a
        follow-up turn whose prompt extends this conversation hits the
        *entire* history instead of missing on everything past the last
        page boundary.
        """
        if self._released:
            raise RuntimeError("request KV already released (double free)")
        if not self.resident:
            raise RuntimeError("release while swapped out")
        if self.unpaged_tokens > 0:
            self._pageify()
        for page in self.pages:
            self.pool.release(page)
        self.pages = []
        self._released = True

    # ------------------------------------------------------------------
    # Storage-format hooks.
    # ------------------------------------------------------------------
    def _encode_prompt_side(self, layer, side, kv):
        raise NotImplementedError

    def _init_layer_state(self):
        raise NotImplementedError

    def _init_layer_state_empty(self):
        """Create empty per-layer state for chunk-by-chunk ingestion."""
        raise NotImplementedError

    def _encode_segment(self, layer, side, rows):
        """Encode a (tokens, dim) slice into one storage segment."""
        raise NotImplementedError

    def _append_segment(self, layer, k_seg, v_seg):
        """Append one encoded K/V segment pair to the layer state."""
        raise NotImplementedError

    def _note_pages_committed(self, num_pages):
        """Chunked-commit bookkeeping hook (fp16 tracks paged chunks)."""

    def _append_layer(self, layer, k_row, v_row):
        raise NotImplementedError

    def _collect_page_payload(self, start):
        raise NotImplementedError

    def read(self, layer: int, side: str) -> np.ndarray:
        raise NotImplementedError

    @property
    def decoded_token_counters(self) -> dict:
        """Total block-decode work across layers (zeros for fp16)."""
        return {"keys": 0, "values": 0}


class EccoRequestKV(RequestKV):
    """Ecco-compressed paged KV: one KVCacheStream per layer."""

    def __init__(self, backend, pool, prompt_ids, record_raw=False):
        super().__init__(backend, pool, prompt_ids, record_raw)
        self.streams: list[KVCacheStream] | None = None

    def _codec(self, layer: int, side: str) -> KVCacheCodec:
        key_codec, value_codec = self.backend.codecs[layer]
        return key_codec if side == "keys" else value_codec

    def _encode_prompt_side(self, layer, side, kv):
        P = self.page_tokens
        codec = self._codec(layer, side)
        pair_index = 0 if side == "keys" else 1
        segments = []
        for j, chain in enumerate(self._page_chains):
            chunk = kv[j * P : (j + 1) * P]
            shared = self.pool.peek(chain)
            if shared is not None:
                segments.append(shared.payload[layer][pair_index])
            else:
                segments.append(codec.encode_tokens(chunk))
        tail = kv[self._num_prompt_pages * P :]
        if tail.shape[0]:
            segments.append(codec.encode_tokens(tail))
        return segments, codec.decode_all(segments).astype(np.float32)

    def _init_layer_state(self):
        self._init_layer_state_empty()
        for layer, stream in enumerate(self.streams):
            keys = self._pending[(layer, "keys")]
            values = self._pending[(layer, "values")]
            for k_seg, v_seg in zip(keys, values):
                stream.append_compressed(k_seg, v_seg)

    def _init_layer_state_empty(self):
        self.streams = [
            KVCacheStream(key_codec=key_codec, value_codec=value_codec)
            for key_codec, value_codec in self.backend.codecs
        ]

    def _encode_segment(self, layer, side, rows):
        return self._codec(layer, side).encode_tokens(rows)

    def _append_segment(self, layer, k_seg, v_seg):
        self.streams[layer].append_compressed(k_seg, v_seg)

    def _append_layer(self, layer, k_row, v_row):
        stream = self.streams[layer]
        before = stream.compressed_nbytes
        stream.append(k_row, v_row)
        delta = stream.compressed_nbytes - before
        fp16 = (np.asarray(k_row).size + np.asarray(v_row).size) * 2
        return delta, fp16

    def _collect_page_payload(self, start):
        return {
            layer: stream.coalesce(start)
            for layer, stream in enumerate(self.streams)
        }

    def read(self, layer, side):
        stream = self.streams[layer]
        return stream.read_keys() if side == "keys" else stream.read_values()

    @property
    def decoded_token_counters(self):
        out = {"keys": 0, "values": 0}
        for stream in self.streams or []:
            out["keys"] += stream.decoded_tokens["keys"]
            out["values"] += stream.decoded_tokens["values"]
        return out


class Fp16RequestKV(RequestKV):
    """Raw fp16 paged KV — the capacity baseline."""

    def __init__(self, backend, pool, prompt_ids, record_raw=False):
        super().__init__(backend, pool, prompt_ids, record_raw)
        self._chunks: list[dict] | None = None
        self._paged_chunk_count = 0
        #: Incrementally grown float32 read caches, mirroring the ecco
        #: stream's decoded-segment cache: each read copies only the rows
        #: appended since the previous one, not the whole history.
        self._read_cache: list[dict] | None = None

    def _encode_prompt_side(self, layer, side, kv):
        P = self.page_tokens
        pair_index = 0 if side == "keys" else 1
        segments = []
        for j, chain in enumerate(self._page_chains):
            shared = self.pool.peek(chain)
            if shared is not None:
                segments.append(shared.payload[layer][pair_index])
            else:
                segments.append(kv[j * P : (j + 1) * P].astype(np.float16))
        tail = kv[self._num_prompt_pages * P :]
        if tail.shape[0]:
            segments.append(tail.astype(np.float16))
        decoded = np.concatenate(segments, axis=0).astype(np.float32)
        return segments, decoded

    def _init_layer_state(self):
        self._chunks = []
        for layer in range(self.backend.num_layers):
            self._chunks.append(
                {
                    "keys": list(self._pending[(layer, "keys")]),
                    "values": list(self._pending[(layer, "values")]),
                }
            )
        self._paged_chunk_count = self._num_prompt_pages
        self._read_cache = [
            {"keys": None, "values": None}
            for _ in range(self.backend.num_layers)
        ]

    def _init_layer_state_empty(self):
        self._chunks = [
            {"keys": [], "values": []}
            for _ in range(self.backend.num_layers)
        ]
        self._paged_chunk_count = 0
        self._read_cache = [
            {"keys": None, "values": None}
            for _ in range(self.backend.num_layers)
        ]

    def _encode_segment(self, layer, side, rows):
        return np.asarray(rows).astype(np.float16)

    def _append_segment(self, layer, k_seg, v_seg):
        self._chunks[layer]["keys"].append(k_seg)
        self._chunks[layer]["values"].append(v_seg)

    def _note_pages_committed(self, num_pages):
        self._paged_chunk_count += num_pages

    def _append_layer(self, layer, k_row, v_row):
        k16 = np.asarray(k_row, dtype=np.float16).reshape(1, -1)
        v16 = np.asarray(v_row, dtype=np.float16).reshape(1, -1)
        self._chunks[layer]["keys"].append(k16)
        self._chunks[layer]["values"].append(v16)
        nbytes = k16.nbytes + v16.nbytes
        return nbytes, nbytes

    def _collect_page_payload(self, start):
        n = self._paged_chunk_count
        payload = {}
        for layer, chunks in enumerate(self._chunks):
            merged_k = np.concatenate(chunks["keys"][n:], axis=0)
            merged_v = np.concatenate(chunks["values"][n:], axis=0)
            chunks["keys"][n:] = [merged_k]
            chunks["values"][n:] = [merged_v]
            payload[layer] = (merged_k, merged_v)
        self._paged_chunk_count = n + 1
        return payload

    def read(self, layer, side):
        chunks = self._chunks[layer][side]
        cache = self._read_cache[layer][side]
        total = sum(chunk.shape[0] for chunk in chunks)
        cached = 0 if cache is None else cache.shape[0]
        if cached == total:
            return cache
        # Fresh rows are the trailing ones; chunk rewrites (pageify) merge
        # whole chunks without changing content, so walking back by row
        # count always recovers exactly the unseen suffix.
        need = total - cached
        fresh = []
        for chunk in reversed(chunks):
            fresh.append(chunk)
            need -= chunk.shape[0]
            if need <= 0:
                break
        fresh.reverse()
        fresh_rows = np.concatenate(fresh, axis=0).astype(np.float32)
        if need < 0:
            fresh_rows = fresh_rows[-(total - cached):]
        cache = (
            fresh_rows
            if cache is None
            else np.concatenate([cache, fresh_rows], axis=0)
        )
        cache.flags.writeable = False
        self._read_cache[layer][side] = cache
        return cache


class EccoKVBackend:
    """Per-layer Ecco KV codecs calibrated once per engine."""

    name = "ecco"
    request_cls = EccoRequestKV

    def __init__(self, num_layers: int, d_model: int, calib):
        self.num_layers = int(num_layers)
        self.d_model = int(d_model)
        self.codecs: list[tuple[KVCacheCodec, KVCacheCodec]] = []
        for layer in range(self.num_layers):
            pair = []
            for side in ("k_cache", "v_cache"):
                sample = calib.kv_samples.get(f"layers.{layer}.{side}")
                if sample is None:
                    raise ValueError(
                        f"calibration has no KV sample for layer {layer} "
                        f"{side}; run repro.llm.calibrate first"
                    )
                # The shared eval-layer recipe: serving codecs byte-match
                # the ecco-stream evaluation hook's by construction.
                pair.append(fit_kv_codec(sample))
            self.codecs.append(tuple(pair))
        groups_per_token = -(-self.d_model // KV_CONFIG.group_size)
        self._side_nbytes = groups_per_token * KV_CONFIG.block_bytes

    @property
    def per_token_nbytes(self) -> int:
        """Deterministic compressed bytes per token (K+V, all layers)."""
        return self.num_layers * 2 * self._side_nbytes

    @property
    def per_token_fp16_nbytes(self) -> int:
        return self.num_layers * 2 * self.d_model * 2

    @staticmethod
    def segment_nbytes(segment) -> int:
        return int(segment.nbytes)

    @staticmethod
    def segment_tokens(segment) -> int:
        return int(segment.token_shape[0])

    @staticmethod
    def split_segment(segment, head_tokens: int):
        """Split one compressed segment at a token boundary — a pure
        block-row slice, bit-exact vs fresh encodes of both halves."""
        return split_token_segment(segment, head_tokens)

    def split_page_payload(self, payload: dict, head_tokens: int):
        return _split_page_payload(self, payload, head_tokens)

    def create_request(self, pool, prompt_ids, record_raw=False):
        return EccoRequestKV(self, pool, prompt_ids, record_raw)


class Fp16KVBackend:
    """Raw fp16 KV storage — the capacity/traffic baseline."""

    name = "fp16"
    request_cls = Fp16RequestKV

    def __init__(self, num_layers: int, d_model: int, calib=None):
        self.num_layers = int(num_layers)
        self.d_model = int(d_model)

    @property
    def per_token_nbytes(self) -> int:
        return self.num_layers * 2 * self.d_model * 2

    @property
    def per_token_fp16_nbytes(self) -> int:
        return self.per_token_nbytes

    @staticmethod
    def segment_nbytes(segment) -> int:
        return int(segment.nbytes)

    @staticmethod
    def segment_tokens(segment) -> int:
        return int(np.asarray(segment).shape[0])

    @staticmethod
    def split_segment(segment, head_tokens: int):
        seg = np.asarray(segment)
        # Copies, not views: evicting one half must free its bytes.
        return (
            np.ascontiguousarray(seg[:head_tokens]),
            np.ascontiguousarray(seg[head_tokens:]),
        )

    def split_page_payload(self, payload: dict, head_tokens: int):
        return _split_page_payload(self, payload, head_tokens)

    def create_request(self, pool, prompt_ids, record_raw=False):
        return Fp16RequestKV(self, pool, prompt_ids, record_raw)
