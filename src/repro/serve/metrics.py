"""Serving metrics: request latencies, occupancy, modeled HBM traffic.

The wall-clock numbers (TTFT, inter-token latency, tokens/s) come from
the engine's software execution; the *bandwidth* numbers come from the
``repro.memsys`` sector-level GEMM model, extended here to a
multi-tenant decode step: every layer's seven projection GEMMs batched
over the running requests, plus the KV-cache read stream whose size is
whatever the pool actually holds — compressed blocks for the Ecco pool,
raw fp16 for the baseline.  That is the accounting that turns the
pool's capacity win into a modeled traffic win.
"""

from __future__ import annotations

import numpy as np

from repro.memsys import A100, GPUParams, gemm_traffic
from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

from .slo import slo_attainment

__all__ = [
    "EngineMetrics",
    "decode_step_sectors",
    "latency_percentiles",
    "summarize_turns",
    "ttft_split",
]


#: The tail percentiles every latency family reports.  Mean/max hide
#: tail behaviour, and SLO work is all about tails: p99 is where a
#: retry storm or a head-of-line stall actually shows up.
PERCENTILES = (50, 95, 99)


def latency_percentiles(values, prefix: str) -> dict:
    """Flat ``{prefix}_p50/p95/p99`` keys for one latency family.

    ``None`` values when the family is empty, so report consumers (and
    the bench regression gate) can rely on the keys existing.
    """
    out: dict[str, float | None] = {}
    if values:
        arr = np.asarray(values, dtype=np.float64)
        for p in PERCENTILES:
            out[f"{prefix}_p{p}"] = float(np.percentile(arr, p))
    else:
        for p in PERCENTILES:
            out[f"{prefix}_p{p}"] = None
    return out


def ttft_split(requests) -> tuple[list[float], list[float], list[float]]:
    """(all, warm, cold) TTFTs of ``requests`` — warm turns are the ones
    that attached a cached prefix at admission.  One definition, shared
    by the engine summary and the cluster report."""
    ttfts, warm, cold = [], [], []
    for request in requests:
        ttft = request.metrics.ttft_s
        if ttft is None:
            continue
        ttfts.append(ttft)
        (warm if request.metrics.cached_tokens > 0 else cold).append(ttft)
    return ttfts, warm, cold


def summarize_turns(turn_reports: list[dict]) -> dict:
    """Aggregate per-turn reuse records (``Session.turn_reports``).

    The cross-turn reuse acceptance numbers in one place: how many turns
    started warm, how many prompt tokens the prefix cache served vs how
    many were re-encoded, and mean TTFT for warm turns vs cold starts.
    """
    turns = list(turn_reports)
    warm = [t for t in turns if t["cached_tokens"] > 0]
    cold = [t for t in turns if t["cached_tokens"] == 0]

    def _mean_ttft(group):
        vals = [t["ttft_s"] for t in group if t["ttft_s"] is not None]
        return float(np.mean(vals)) if vals else None

    prompt_tokens = sum(t["prompt_tokens"] for t in turns)
    reused = sum(t["cached_tokens"] for t in turns)
    return {
        "turns": len(turns),
        "warm_turns": len(warm),
        "cold_turns": len(cold),
        "prompt_tokens": prompt_tokens,
        "prefix_tokens_reused": reused,
        "prompt_tokens_reencoded": prompt_tokens - reused,
        "prefix_pages_hit": sum(t["cached_pages"] for t in turns),
        "split_tokens_salvaged": sum(
            t.get("split_tokens", 0) for t in turns
        ),
        "reuse_fraction": reused / prompt_tokens if prompt_tokens else 0.0,
        "ttft_s_mean_warm": _mean_ttft(warm),
        "ttft_s_mean_cold": _mean_ttft(cold),
    }


def decode_step_sectors(
    num_layers: int,
    d_model: int,
    ffn_dim: int,
    batch: int,
    kv_read_bytes: float,
    weight_bits: float = 16.0,
    act_bits: float = 16.0,
    gpu: GPUParams = A100,
) -> float:
    """Modeled 32-byte sectors one continuous-batching decode step moves.

    Per layer: the four attention projections (d x d) and the three
    SwiGLU projections (two d->ffn, one ffn->d), each an ``(batch, k, n)``
    GEMM through :func:`repro.memsys.gemm_traffic`; plus the KV stream —
    ``kv_read_bytes`` is the sum over running requests of the bytes their
    attention reads back (the pool's storage format decides how many).
    """
    gemms = [
        (batch, d_model, d_model),  # wq
        (batch, d_model, d_model),  # wk
        (batch, d_model, d_model),  # wv
        (batch, d_model, d_model),  # wo
        (batch, d_model, ffn_dim),  # wg
        (batch, d_model, ffn_dim),  # wu
        (batch, ffn_dim, d_model),  # wd
    ]
    sectors = 0.0
    for m, k, n in gemms:
        sectors += gemm_traffic(
            m, k, n, weight_bits, act_bits=act_bits, gpu=gpu
        ).total_sectors
    sectors *= num_layers
    sectors += float(np.ceil(kv_read_bytes / gpu.sector_bytes))
    return float(sectors)


#: The engine counter families ``EngineMetrics`` exposes as attributes,
#: with the zero each starts from (ints stay ints in the registry, so
#: report values keep their types).  Every one is backed by an
#: ``engine.<name>`` registry counter.
_ENGINE_COUNTERS: dict[str, int | float] = {
    "prefills": 0,
    "decode_steps": 0,
    "preemptions": 0,
    # Tokens emitted by decode steps (prefill first-tokens not included).
    "decode_tokens": 0,
    # Chunked-prefill work: chunks processed and prompt tokens ingested
    # through them (whole-prompt prefills are not counted here).
    "prefill_chunks": 0,
    "chunked_prefill_tokens": 0,
    # Steps where a chunk was ready but stalled on pool headroom.
    "prefill_stalls": 0,
    # Cross-turn/cross-request prefix reuse: admissions that attached a
    # cached prefix, and the tokens/pages served straight from the
    # cache instead of being re-encoded.
    "warm_prefills": 0,
    "prefix_tokens_reused": 0,
    "prefix_pages_reused": 0,
    # Warm admissions whose match ended *inside* a cached page and
    # attached a split-off head, and the tokens those splits salvaged
    # (a subset of ``prefix_tokens_reused``) — the chain-walk lookup
    # would have re-encoded every one of them.
    "prefix_partial_attaches": 0,
    "split_tokens_salvaged": 0,
    # Prompt tokens that actually ran through a prefill forward pass
    # (whole-prompt, warm-suffix and chunked alike) — with
    # ``prefix_tokens_reused`` this decomposes every admitted prompt
    # into reused vs re-encoded tokens.
    "prefill_forwarded_tokens": 0,
    # Steps where the swapped queue's head could not re-admit and was
    # blocking fresh admissions (the head-of-line condition), and fresh
    # requests admitted past it under the bounded bypass.
    "hol_blocked_steps": 0,
    "hol_bypasses": 0,
    # Requests refused at admission by the scheduling policy (SLO
    # already blown) — the load-shedding 429 path.  Budget rejections
    # at submit are *not* counted here; they never reach the queue.
    "shed_requests": 0,
    "peak_concurrency": 0,
    "modeled_sectors": 0.0,
    "modeled_kv_read_bytes": 0.0,
    "modeled_kv_read_fp16_bytes": 0.0,
}

#: Decode batch-size histogram edges (requests per step).
BATCH_OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class EngineMetrics:
    """Aggregate counters one engine run accumulates.

    Rebuilt on top of :class:`repro.obs.MetricsRegistry`: every counter
    attribute reads and writes an ``engine.<name>`` registry series, so
    a mid-run registry snapshot and the end-of-run :meth:`summary` are
    views of the same storage and can never disagree.  The attribute
    API (``metrics.prefills += 1``) is unchanged — call sites did not
    move.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        object.__setattr__(
            self,
            "registry",
            registry if registry is not None else MetricsRegistry(),
        )
        object.__setattr__(self, "batch_occupancy", [])
        for name, zero in _ENGINE_COUNTERS.items():
            key = f"engine.{name}"
            if self.registry.value(key, None) is None:
                self.registry.counter_set(key, zero)
        self.registry.define_histogram(
            "engine.batch_occupancy", BATCH_OCCUPANCY_BUCKETS
        )
        self.registry.define_histogram(
            "request.ttft_s", DEFAULT_LATENCY_BUCKETS
        )
        self.registry.define_histogram(
            "request.e2e_s", DEFAULT_LATENCY_BUCKETS
        )

    def __getattr__(self, name: str):
        # Only missing attributes land here: the counter families.
        if name in _ENGINE_COUNTERS:
            return self.registry.value(f"engine.{name}")
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in _ENGINE_COUNTERS:
            self.registry.counter_set(f"engine.{name}", value)
        else:
            object.__setattr__(self, name, value)

    def record_concurrency(self, running: int) -> None:
        self.peak_concurrency = max(self.peak_concurrency, running)

    def record_decode_step(
        self,
        batch: int,
        kv_read_bytes: float,
        kv_read_fp16_bytes: float,
        sectors: float,
    ) -> None:
        self.decode_steps += 1
        self.batch_occupancy.append(batch)
        self.registry.observe("engine.batch_occupancy", batch)
        self.decode_tokens += batch
        self.modeled_kv_read_bytes += kv_read_bytes
        self.modeled_kv_read_fp16_bytes += kv_read_fp16_bytes
        self.modeled_sectors += sectors

    def summary(self, requests: list, pool, elapsed_s: float) -> dict:
        """The serving report: latencies, throughput, capacity, traffic.

        Robust to degenerate runs: ``elapsed_s == 0`` reports a zero
        token rate instead of a divide-by-epsilon absurdity, and
        requests with no recorded first token (still queued, shed,
        preempted mid-prefill) are excluded from every latency family
        (``ttft_split`` and ``slo_attainment`` skip them) rather than
        poisoning the means.
        """
        finished = [r for r in requests if r.metrics.finish_s is not None]
        ttfts, warm_ttfts, cold_ttfts = ttft_split(requests)
        e2e = [r.metrics.e2e_s for r in finished]
        inter = [
            gap for r in requests for gap in r.metrics.inter_token_s
        ]
        generated = sum(len(r.generated) for r in requests)
        out = {
            "requests": len(requests),
            "finished": len(finished),
            "elapsed_s": elapsed_s,
            "tokens_generated": generated,
            "tokens_per_s": generated / elapsed_s if elapsed_s > 0 else 0.0,
            "ttft_s_mean": float(np.mean(ttfts)) if ttfts else None,
            "ttft_s_max": float(np.max(ttfts)) if ttfts else None,
            "ttft_s_mean_warm": (
                float(np.mean(warm_ttfts)) if warm_ttfts else None
            ),
            "ttft_s_mean_cold": (
                float(np.mean(cold_ttfts)) if cold_ttfts else None
            ),
            "e2e_s_mean": float(np.mean(e2e)) if e2e else None,
            "inter_token_s_mean": float(np.mean(inter)) if inter else None,
            **latency_percentiles(ttfts, "ttft_s"),
            **latency_percentiles(inter, "inter_token_s"),
            **latency_percentiles(e2e, "e2e_s"),
            **slo_attainment(requests),
            "shed_requests": self.shed_requests,
            "prefills": self.prefills,
            "decode_steps": self.decode_steps,
            "decode_tokens": self.decode_tokens,
            "prefill_chunks": self.prefill_chunks,
            "chunked_prefill_tokens": self.chunked_prefill_tokens,
            "prefill_stalls": self.prefill_stalls,
            "warm_prefills": self.warm_prefills,
            "prefix_tokens_reused": self.prefix_tokens_reused,
            "prefix_pages_reused": self.prefix_pages_reused,
            "prefix_partial_attaches": self.prefix_partial_attaches,
            "split_tokens_salvaged": self.split_tokens_salvaged,
            "prefill_forwarded_tokens": self.prefill_forwarded_tokens,
            "hol_blocked_steps": self.hol_blocked_steps,
            "hol_bypasses": self.hol_bypasses,
            "preemptions": self.preemptions,
            "peak_concurrency": self.peak_concurrency,
            "mean_batch_occupancy": (
                float(np.mean(self.batch_occupancy))
                if self.batch_occupancy
                else 0.0
            ),
            "modeled_kv_read_bytes": self.modeled_kv_read_bytes,
            "modeled_kv_read_fp16_bytes": self.modeled_kv_read_fp16_bytes,
            "modeled_sectors": self.modeled_sectors,
            "pool": pool.snapshot(),
        }
        return out
