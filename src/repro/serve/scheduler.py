"""Continuous-batching scheduling policy.

FCFS admission with a watermark of headroom reserved for decode growth,
preempted requests re-admitted before new ones (vLLM's recompute-free
ordering — cheap here because victims swap out in compressed form and
keep their decoded caches), and youngest-first victim selection so the
requests that have consumed the least work are the ones displaced.

Two queues hold admitted requests: ``running`` (prompt fully ingested,
decoding one token per step) and ``prefilling`` (admitted, prompt being
ingested in page-aligned chunks interleaved with decode steps — the
Sarathi-style chunked-prefill path).  Both count against
``max_batch_size``; a request moves from ``prefilling`` to ``running``
the step its final chunk lands and its first token is emitted.

One head-of-line refinement over plain FCFS: a swapped request whose
re-admission cannot currently fit no longer freezes the whole fresh
queue — the engine may admit a bounded number of fresh requests past it
per step (``hol_bypass_limit``), counting every blocked step so the
policy cost is visible in the metrics.
"""

from __future__ import annotations

from collections import deque

from .pool import PagedKVPool
from .request import Request, RequestState

__all__ = ["ContinuousBatchingScheduler"]


class ContinuousBatchingScheduler:
    """Queues + policy; the engine executes the transitions it picks."""

    def __init__(self, max_batch_size: int = 8, watermark: float = 0.05):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not 0.0 <= watermark < 1.0:
            raise ValueError("watermark must be in [0, 1)")
        self.max_batch_size = int(max_batch_size)
        self.watermark = float(watermark)
        self.waiting: deque[Request] = deque()
        self.prefilling: list[Request] = []
        self.running: list[Request] = []
        self.swapped: deque[Request] = deque()

    @property
    def has_work(self) -> bool:
        return bool(
            self.waiting or self.prefilling or self.running or self.swapped
        )

    @property
    def num_active(self) -> int:
        """Requests holding resident KV (decoding or mid-prefill)."""
        return len(self.running) + len(self.prefilling)

    @property
    def has_batch_room(self) -> bool:
        return self.num_active < self.max_batch_size

    def submit(self, request: Request) -> None:
        request.state = RequestState.WAITING
        self.waiting.append(request)

    def admission_headroom(self, pool: PagedKVPool) -> int:
        """Bytes a new admission may claim, keeping a watermark of the
        budget free for the running batch's per-step decode growth.
        Prefix-cache pages are reclaimable, so only *active* bytes count
        against the ceiling."""
        ceiling = int(pool.byte_budget * (1.0 - self.watermark))
        return ceiling - pool.bytes_active

    def activate(self, request: Request, source: str) -> None:
        """Move a request from ``waiting``/``swapped`` into the batch.

        A request whose prompt is not fully ingested yet lands in
        ``prefilling``; one with a complete prompt lands in ``running``.
        """
        queue = self.waiting if source == "waiting" else self.swapped
        queue.remove(request)
        if request.prefill_done:
            request.state = RequestState.RUNNING
            self.running.append(request)
        else:
            request.state = RequestState.PREFILLING
            self.prefilling.append(request)

    def promote(self, request: Request) -> None:
        """Move a request whose final prefill chunk landed into decode."""
        self.prefilling.remove(request)
        request.state = RequestState.RUNNING
        self.running.append(request)

    def preempt(self, request: Request) -> None:
        if request in self.running:
            self.running.remove(request)
        else:
            self.prefilling.remove(request)
        request.state = RequestState.SWAPPED
        request.metrics.preemptions += 1
        # Oldest-first re-admission: victims are the youngest, so plain
        # append keeps the swapped queue arrival-ordered.
        self.swapped.append(request)

    def finish(self, request: Request) -> None:
        self.running.remove(request)
        request.state = RequestState.FINISHED

    def pick_victim(self) -> Request | None:
        """The youngest-arrival preemptible request, or ``None``.

        Mid-prefill requests are displaced before decoding ones (they
        have the least sunk work and their re-admission resumes at the
        chunk boundary); the last active request is never a victim —
        the engine must either run it or fail loudly.
        """
        if self.num_active <= 1:
            return None
        pool = self.prefilling or self.running
        return max(pool, key=lambda r: r.metrics.arrival_s)
