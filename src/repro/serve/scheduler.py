"""Continuous-batching scheduling: queues + pluggable policy.

:class:`ContinuousBatchingScheduler` owns the request queues and the
mechanics of moving requests between them; *which* request is admitted
next, *which* active request a preemption displaces, and *whether* a
queued request should be shed instead of served are delegated to a
:class:`SchedulerPolicy`:

* :class:`FCFSPolicy` (the default) is the original behaviour —
  arrival-order admission, youngest-first victim selection, never shed.
* :class:`DeadlinePolicy` is SLO-aware — EDF admission (earliest TTFT
  deadline first), preempt the active request with the *most* slack
  (see :func:`repro.serve.slo.slack_s`), and shed a queued request
  whose TTFT deadline already passed before any prefill work was sunk
  into it (the engine surfaces the shed through the same 429 path a
  budget rejection takes).

Two queues hold admitted requests: ``running`` (prompt fully ingested,
decoding one token per step) and ``prefilling`` (admitted, prompt being
ingested in page-aligned chunks interleaved with decode steps — the
Sarathi-style chunked-prefill path).  Both count against
``max_batch_size``; a request moves from ``prefilling`` to ``running``
the step its final chunk lands and its first token is emitted.
Preempted requests re-admit before new ones (vLLM's recompute-free
ordering — cheap here because victims swap out in compressed form and
keep their decoded caches); the swapped queue stays arrival-ordered
under every policy, because a victim's re-admission cost is swap
traffic, not deadline slack.

One head-of-line refinement over strict queue order: a swapped request
whose re-admission cannot currently fit no longer freezes the whole
fresh queue — the engine may admit a bounded number of fresh requests
past it per step (``hol_bypass_limit``), counting every blocked step so
the policy cost is visible in the metrics.
"""

from __future__ import annotations

from collections import deque

from repro.obs import NullRecorder

from .pool import PagedKVPool
from .request import Request, RequestState
from .slo import SLO, next_deadline_s, slack_s

__all__ = [
    "ContinuousBatchingScheduler",
    "DeadlinePolicy",
    "FCFSPolicy",
    "SchedulerPolicy",
    "make_policy",
]


class SchedulerPolicy:
    """The decision surface of the continuous-batching scheduler.

    The scheduler (and through it the engine) calls these three hooks;
    everything else — queue mechanics, headroom math, the budget
    invariant — is policy-independent.  Implementations must be pure
    decisions over the requests they are handed: the scheduler commits
    the transitions.
    """

    name = "base"

    def select_next(self, waiting, now: float) -> Request:
        """The waiting request to consider admitting next.

        ``waiting`` is non-empty and in arrival order; ``now`` is the
        engine clock.
        """
        raise NotImplementedError

    def pick_victim(self, candidates, now: float) -> Request:
        """The active request to preempt; ``candidates`` is non-empty.

        The engine displaces mid-prefill requests before decoding ones
        (least sunk work, chunk-boundary resume), so ``candidates`` is
        whichever of those two groups is up for preemption.
        """
        raise NotImplementedError

    def should_shed(self, request: Request, now: float) -> bool:
        """True to refuse ``request`` at admission instead of serving it
        (the engine reports it through the 429 shed path)."""
        return False


class FCFSPolicy(SchedulerPolicy):
    """Arrival-order admission, youngest-first preemption, never shed.

    This is the scheduler's original hard-coded behaviour, now one
    policy among several.
    """

    name = "fcfs"

    def select_next(self, waiting, now: float) -> Request:
        return waiting[0]

    def pick_victim(self, candidates, now: float) -> Request:
        return max(candidates, key=lambda r: r.metrics.arrival_s)


class DeadlinePolicy(SchedulerPolicy):
    """SLO-aware scheduling: EDF admission, most-slack preemption,
    shed-when-already-late.

    ``default_slo`` applies to requests submitted without one (so a
    whole engine can run under a blanket objective); requests without
    any applicable deadline sort last for admission and first for
    preemption — no objective means infinite slack.  ``shed_grace_s``
    tolerates a deadline overshoot before shedding: ``0.0`` sheds the
    moment the TTFT deadline passes, which is the honest default — a
    token the SLO already missed is not worth the prefill it costs
    under overload.
    """

    name = "deadline"

    def __init__(self, default_slo: SLO | None = None, shed_grace_s: float = 0.0):
        if shed_grace_s < 0:
            raise ValueError("shed_grace_s must be >= 0")
        self.default_slo = default_slo
        self.shed_grace_s = float(shed_grace_s)

    def _deadline(self, request: Request) -> float:
        if request.slo is None and self.default_slo is not None:
            return (
                request.metrics.arrival_s + self.default_slo.ttft_s
                if self.default_slo.ttft_s is not None
                else float("inf")
            )
        return next_deadline_s(request)

    def select_next(self, waiting, now: float) -> Request:
        return min(
            waiting, key=lambda r: (self._deadline(r), r.metrics.arrival_s)
        )

    def should_shed(self, request: Request, now: float) -> bool:
        deadline = self._deadline(request)
        return deadline != float("inf") and now > deadline + self.shed_grace_s

    def pick_victim(self, candidates, now: float) -> Request:
        def _slack(request: Request) -> float:
            if request.slo is None and self.default_slo is not None:
                return self._deadline(request) - now
            return slack_s(request, now)

        # Most slack first; ties fall back to youngest-first (FCFS's
        # choice), so SLO-less traffic keeps the old behaviour.
        return max(
            candidates, key=lambda r: (_slack(r), r.metrics.arrival_s)
        )


_POLICIES = {"fcfs": FCFSPolicy, "deadline": DeadlinePolicy}


def make_policy(policy) -> SchedulerPolicy:
    """Resolve a policy argument: an instance passes through, a name
    (``"fcfs"``/``"deadline"``) constructs the default-configured one."""
    if isinstance(policy, SchedulerPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICIES[policy]()
        except KeyError:
            raise KeyError(
                f"unknown scheduling policy {policy!r}; "
                f"known: {sorted(_POLICIES)}"
            ) from None
    raise TypeError(
        f"policy must be a SchedulerPolicy or a name, got {type(policy)!r}"
    )


class ContinuousBatchingScheduler:
    """Queues + transition mechanics; the policy picks, the engine
    executes."""

    def __init__(
        self,
        max_batch_size: int = 8,
        watermark: float = 0.05,
        policy: SchedulerPolicy | str | None = None,
        recorder=None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not 0.0 <= watermark < 1.0:
            raise ValueError("watermark must be in [0, 1)")
        self.max_batch_size = int(max_batch_size)
        self.watermark = float(watermark)
        self.policy = make_policy(policy if policy is not None else "fcfs")
        #: Every state transition below records a request lifecycle span
        #: (``repro.obs``) — the scheduler is the single choke point all
        #: queue moves pass through, so instrumenting here covers the
        #: engine's whole submit/admit/preempt/finish surface.
        self.obs = recorder if recorder is not None else NullRecorder()
        self.waiting: deque[Request] = deque()
        self.prefilling: list[Request] = []
        self.running: list[Request] = []
        self.swapped: deque[Request] = deque()

    def _record_state(self, request: Request, **args) -> None:
        self.obs.request_state(
            request.request_id, request.state.value, **args
        )

    @property
    def has_work(self) -> bool:
        return bool(
            self.waiting or self.prefilling or self.running or self.swapped
        )

    @property
    def num_active(self) -> int:
        """Requests holding resident KV (decoding or mid-prefill)."""
        return len(self.running) + len(self.prefilling)

    @property
    def has_batch_room(self) -> bool:
        return self.num_active < self.max_batch_size

    def submit(self, request: Request) -> None:
        request.state = RequestState.WAITING
        self.waiting.append(request)
        self._record_state(request)

    def admission_headroom(self, pool: PagedKVPool) -> int:
        """Bytes a new admission may claim, keeping a watermark of the
        budget free for the running batch's per-step decode growth.
        Prefix-cache pages are reclaimable, so only *active* bytes count
        against the ceiling."""
        ceiling = int(pool.byte_budget * (1.0 - self.watermark))
        return ceiling - pool.bytes_active

    def peek_waiting(self, now: float) -> Request:
        """The policy's next admission candidate (queue unchanged)."""
        return self.policy.select_next(self.waiting, now)

    def shed(self, request: Request) -> None:
        """Drop a waiting request the policy refused to serve: no KV was
        ever allocated, so shedding is pure queue removal."""
        self.waiting.remove(request)
        request.state = RequestState.SHED
        self._record_state(request, reason="slo")

    def activate(self, request: Request, source: str) -> None:
        """Move a request from ``waiting``/``swapped`` into the batch.

        A request whose prompt is not fully ingested yet lands in
        ``prefilling``; one with a complete prompt lands in ``running``.
        """
        queue = self.waiting if source == "waiting" else self.swapped
        queue.remove(request)
        if request.prefill_done:
            request.state = RequestState.RUNNING
            self.running.append(request)
        else:
            request.state = RequestState.PREFILLING
            self.prefilling.append(request)
        self._record_state(request, source=source)

    def promote(self, request: Request) -> None:
        """Move a request whose final prefill chunk landed into decode."""
        self.prefilling.remove(request)
        request.state = RequestState.RUNNING
        self.running.append(request)
        self._record_state(request)

    def preempt(self, request: Request) -> None:
        if request in self.running:
            self.running.remove(request)
        else:
            self.prefilling.remove(request)
        request.state = RequestState.SWAPPED
        request.metrics.preemptions += 1
        # Oldest-first re-admission: keep the swapped queue
        # arrival-ordered regardless of which policy picked the victim.
        index = len(self.swapped)
        while index and (
            self.swapped[index - 1].metrics.arrival_s
            > request.metrics.arrival_s
        ):
            index -= 1
        self.swapped.insert(index, request)
        self._record_state(request)

    def finish(self, request: Request) -> None:
        self.running.remove(request)
        request.state = RequestState.FINISHED
        self._record_state(request)

    def pick_victim(self, now: float = 0.0) -> Request | None:
        """The policy's preemption choice, or ``None``.

        Mid-prefill requests are displaced before decoding ones (they
        have the least sunk work and their re-admission resumes at the
        chunk boundary); the last active request is never a victim —
        the engine must either run it or fail loudly.
        """
        if self.num_active <= 1:
            return None
        pool = self.prefilling or self.running
        return self.policy.pick_victim(pool, now)
