"""Continuous-batching scheduling policy.

FCFS admission with a watermark of headroom reserved for decode growth,
preempted requests re-admitted before new ones (vLLM's recompute-free
ordering — cheap here because victims swap out in compressed form and
keep their decoded caches), and youngest-first victim selection so the
requests that have consumed the least work are the ones displaced.
"""

from __future__ import annotations

from collections import deque

from .pool import PagedKVPool
from .request import Request, RequestState

__all__ = ["ContinuousBatchingScheduler"]


class ContinuousBatchingScheduler:
    """Queues + policy; the engine executes the transitions it picks."""

    def __init__(self, max_batch_size: int = 8, watermark: float = 0.05):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if not 0.0 <= watermark < 1.0:
            raise ValueError("watermark must be in [0, 1)")
        self.max_batch_size = int(max_batch_size)
        self.watermark = float(watermark)
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.swapped: deque[Request] = deque()

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running or self.swapped)

    @property
    def has_batch_room(self) -> bool:
        return len(self.running) < self.max_batch_size

    def submit(self, request: Request) -> None:
        request.state = RequestState.WAITING
        self.waiting.append(request)

    def admission_headroom(self, pool: PagedKVPool) -> int:
        """Bytes a new admission may claim, keeping a watermark of the
        budget free for the running batch's per-step decode growth.
        Prefix-cache pages are reclaimable, so only *active* bytes count
        against the ceiling."""
        ceiling = int(pool.byte_budget * (1.0 - self.watermark))
        return ceiling - pool.bytes_active

    def activate(self, request: Request, source: str) -> None:
        """Move a request from ``waiting``/``swapped`` into the batch."""
        queue = self.waiting if source == "waiting" else self.swapped
        queue.remove(request)
        request.state = RequestState.RUNNING
        self.running.append(request)

    def preempt(self, request: Request) -> None:
        self.running.remove(request)
        request.state = RequestState.SWAPPED
        request.metrics.preemptions += 1
        # Oldest-first re-admission: victims are the youngest, so plain
        # append keeps the swapped queue arrival-ordered.
        self.swapped.append(request)

    def finish(self, request: Request) -> None:
        self.running.remove(request)
        request.state = RequestState.FINISHED

    def pick_victim(self) -> Request:
        """The youngest-arrival running request (least sunk work)."""
        if not self.running:
            raise RuntimeError("no running request to preempt")
        return max(self.running, key=lambda r: r.metrics.arrival_s)
