"""Serving layer: paged compressed-KV pool + continuous-batching engine.

Turns the codec layers below into a multi-tenant serving system: Ecco's
capacity win becomes admitted-requests-per-byte-budget, and its
bandwidth win becomes modeled KV-read traffic per decode step.  On top
of the single engine sit trace-driven workloads (``repro.serve.workload``
— seeded Poisson/bursty/diurnal arrivals over chat/RAG/agent scenario
mixes, replayed on a virtual clock), a multi-replica front-end
(``repro.serve.cluster`` — prefix-affinity + least-active-bytes routing
with aggregated metrics), and multi-turn sessions
(``repro.serve.session`` — turn N+1 submits the whole conversation and
the pool's prefix cache serves the shared history without re-encoding a
token).
"""

from .cluster import ClusterRouter
from .engine import ServingEngine
from .metrics import EngineMetrics, decode_step_sectors, summarize_turns
from .pool import BudgetExceededError, KVPage, PagedKVPool, chain_hash
from .request import Request, RequestMetrics, RequestState
from .scheduler import ContinuousBatchingScheduler
from .session import Session, replay_sessions
from .storage import EccoKVBackend, Fp16KVBackend, RequestKV
from .trie import PrefixMatch, PrefixTrie, common_prefix_len
from .workload import (
    SessionTrace,
    SessionTurn,
    SessionWorkloadConfig,
    StepCostModel,
    TraceRequest,
    VirtualClock,
    WorkloadConfig,
    bursty_arrivals,
    diurnal_arrivals,
    generate_sessions,
    generate_trace,
    poisson_arrivals,
    replay_trace,
)

__all__ = [
    "BudgetExceededError",
    "ClusterRouter",
    "ContinuousBatchingScheduler",
    "EccoKVBackend",
    "EngineMetrics",
    "Fp16KVBackend",
    "KVPage",
    "PagedKVPool",
    "PrefixMatch",
    "PrefixTrie",
    "Request",
    "RequestKV",
    "RequestMetrics",
    "RequestState",
    "ServingEngine",
    "Session",
    "SessionTrace",
    "SessionTurn",
    "SessionWorkloadConfig",
    "StepCostModel",
    "TraceRequest",
    "VirtualClock",
    "WorkloadConfig",
    "bursty_arrivals",
    "chain_hash",
    "common_prefix_len",
    "decode_step_sectors",
    "diurnal_arrivals",
    "generate_sessions",
    "generate_trace",
    "poisson_arrivals",
    "replay_sessions",
    "replay_trace",
    "summarize_turns",
]
